//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmarking surface this workspace's `harness = false`
//! bench targets use: `criterion_group!`/`criterion_main!`, `Criterion`,
//! `BenchmarkId`, benchmark groups with `bench_with_input`, `Bencher::iter`
//! and `black_box`.
//!
//! Measurement is a simple wall-clock mean over a fixed time budget — there
//! is no statistical analysis, warm-up modeling or HTML report.  Passing
//! `--test` (as `cargo bench -- --test` does) runs every benchmark body
//! exactly once, which is what CI's bench smoke job relies on.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendered through `Display`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a benchmarked parameter.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    measure_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            measure_budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Builds a driver configured from the process arguments; recognizes the
    /// `--test` flag `cargo bench -- --test` forwards and ignores the rest
    /// (e.g. the `--bench` cargo appends for `harness = false` targets).
    #[must_use]
    pub fn configured_from_args() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
            ..Criterion::default()
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    fn run_one<F>(&mut self, id: &str, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            measure_budget: self.measure_budget,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            _ if self.test_mode => println!("test {id} ... ok"),
            Some(mean) => println!("{id:<50} time: {}", format_duration(mean)),
            None => println!("{id:<50} (no measurement)"),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is time-budgeted here.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Runs an unparameterized benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, &mut f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Drives the timed routine of one benchmark.
pub struct Bencher {
    test_mode: bool,
    measure_budget: Duration,
    report: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, or runs it exactly once in `--test` mode.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up: also provides a first cost estimate.
        let warmup_start = Instant::now();
        black_box(routine());
        let first = warmup_start.elapsed().max(Duration::from_nanos(1));

        let target_iters = (self.measure_budget.as_nanos() / first.as_nanos()).clamp(1, 100_000);
        let start = Instant::now();
        for _ in 0..target_iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.report = Some(elapsed / u32::try_from(target_iters).unwrap_or(u32::MAX));
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns/iter")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs/iter", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms/iter", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s/iter", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares the `main` function running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::configured_from_args();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_id_formats_like_criterion() {
        assert_eq!(
            BenchmarkId::new("misp_1x8", "galgel").to_string(),
            "misp_1x8/galgel"
        );
    }

    #[test]
    fn bencher_runs_routine() {
        let mut c = Criterion {
            test_mode: false,
            measure_budget: Duration::from_millis(1),
        };
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs >= 2);
    }

    #[test]
    fn test_mode_runs_exactly_once() {
        let mut c = Criterion {
            test_mode: true,
            measure_budget: Duration::from_millis(1),
        };
        let mut group_runs = 0u32;
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .bench_with_input(BenchmarkId::new("f", 1), &3u32, |b, input| {
                b.iter(|| {
                    group_runs += 1;
                    black_box(*input)
                })
            });
        group.finish();
        assert_eq!(group_runs, 1);
    }
}
