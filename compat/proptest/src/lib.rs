//! Offline stand-in for the `proptest` crate.
//!
//! Provides the strategy combinators and macros this workspace's property
//! tests use: `proptest!`, `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`,
//! `Just`, `any`, ranges as strategies, tuple strategies, `prop_map` and
//! `collection::vec`.
//!
//! Deliberate simplifications versus real proptest:
//!
//! - Values are drawn from a **deterministic** splitmix64 stream (override
//!   the seed with `PROPTEST_SEED`), so failures reproduce exactly in CI.
//! - There is no shrinking: a failing case panics with the generated input's
//!   `Debug` representation instead of a minimized one.
//! - `prop_assert!` maps to `assert!` (panic) rather than an error return.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner {
    /// Deterministic pseudo-random stream (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the deterministic generator used by `proptest!`, seeded
        /// from `PROPTEST_SEED` when set.
        #[must_use]
        pub fn deterministic() -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x9E37_79B9_7F4A_7C15);
            TestRng { state: seed }
        }

        /// Returns the next value of the stream.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Returns a float uniformly distributed in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

use test_runner::TestRng;

/// Runner configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Object-safe form of [`Strategy`] used by [`BoxedStrategy`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<V> {
    inner: Box<dyn DynStrategy<V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec`s with lengths drawn from `len` and elements
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// A strategy choosing uniformly between type-erased alternatives; built by
/// [`prop_oneof!`].
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union of the given non-empty list of strategies.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let index = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[index].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.abs_diff(self.start) as u64;
                let offset = rng.next_u64() % span;
                (self.start as i64).wrapping_add(offset as i64) as $ty
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.next_unit_f64() * (self.end - self.start);
        // Rounding can land exactly on `end`; keep the range half-open.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (rng.next_unit_f64() as f32) * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary {
    /// Draws an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_unit_f64()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);

/// Declares property tests.  Each function runs its body once per generated
/// case; the generated input is printed on panic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $( $(#[$meta:meta])* fn $name:ident($arg:ident in $strategy:expr) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                let strategy = $strategy;
                for case in 0..config.cases {
                    let $arg = $crate::Strategy::generate(&strategy, &mut rng);
                    let case_debug = format!("{:?}", $arg);
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {}/{} failed for input: {}",
                            case + 1,
                            config.cases,
                            case_debug
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Chooses uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// The subset of the proptest API meant for glob import.
pub mod prelude {
    pub use crate::test_runner::TestRng;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic();
        for _ in 0..1000 {
            let v = Strategy::generate(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
            let f = Strategy::generate(&(0.0f64..0.3), &mut rng);
            assert!((0.0..0.3).contains(&f));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let strategy = (1u64..100, any::<bool>()).prop_map(|(n, b)| (n * 2, b));
        let mut a = TestRng::deterministic();
        let mut b = TestRng::deterministic();
        for _ in 0..100 {
            assert_eq!(strategy.generate(&mut a), strategy.generate(&mut b));
        }
    }

    #[test]
    fn oneof_draws_every_alternative() {
        let strategy = prop_oneof![Just(1u8), Just(2u8), (3u8..5).prop_map(|v| v)];
        let mut rng = TestRng::deterministic();
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[strategy.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && (seen[3] || seen[4]));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn proptest_macro_runs(v in 0u32..10) {
            prop_assert!(v < 10);
            prop_assert_eq!(v, v);
        }
    }
}
