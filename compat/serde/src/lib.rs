//! Offline stand-in for the `serde` crate.
//!
//! The container this workspace builds in has no access to a crate registry,
//! so this crate (together with its siblings `serde_derive` and `serde_json`
//! under `compat/`) provides exactly the serialization surface the MISP
//! workspace uses: the `Serialize`/`Deserialize` traits, derive macros for
//! plain structs and enums, and a JSON value tree.
//!
//! Design notes and deliberate deviations from real serde:
//!
//! - Serialization goes through an owned [`value::Value`] tree instead of
//!   serde's visitor architecture.  `Serialize::to_value` /
//!   `Deserialize::from_value` replace `serialize`/`deserialize`.
//! - Maps serialize as arrays of `[key, value]` pairs, which round-trips any
//!   serializable key type without the string-key restriction.
//! - Externally-tagged enum representation matches serde's default: unit
//!   variants as `"Name"`, newtype variants as `{"Name": value}`, tuple
//!   variants as `{"Name": [..]}` and struct variants as `{"Name": {..}}`.
//! - Newtype structs serialize transparently (serde's default), which also
//!   covers every `#[serde(transparent)]` use in this workspace.
//!
//! To switch to real serde, point the `serde`, `serde_json` and the dev-only
//! `proptest`/`criterion` entries of `[workspace.dependencies]` at crates.io.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::rc::Rc;
use std::sync::Arc;

pub mod value;

pub use value::{Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Error produced by serialization or deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn custom<T: fmt::Display>(message: T) -> Self {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into the serde-compatible value tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from the serde-compatible value tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Support items used by the generated code of `serde_derive`.  Not part of
/// the public API surface mirrored from real serde.
pub mod __private {
    use super::{Error, Value};

    /// Looks up a required field of an object value.
    pub fn field<'a>(value: &'a Value, key: &str) -> Result<&'a Value, Error> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(format!("missing field `{key}`"))),
            other => Err(Error::custom(format!(
                "expected object with field `{key}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Looks up an optional field of an object value, yielding `Null` when
    /// the field is absent.  Used for `skip_serializing_if` fields, which
    /// round-trip through omission rather than an explicit `null`.
    pub fn field_or_null<'a>(value: &'a Value, key: &str) -> Result<&'a Value, Error> {
        static NULL: Value = Value::Null;
        match value {
            Value::Object(fields) => Ok(fields
                .iter()
                .find(|(k, _)| k == key)
                .map_or(&NULL, |(_, v)| v)),
            other => Err(Error::custom(format!(
                "expected object with field `{key}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Checks that an array value has exactly `len` elements and returns them.
    pub fn tuple(value: &Value, len: usize) -> Result<&[Value], Error> {
        match value {
            Value::Array(items) if items.len() == len => Ok(items),
            Value::Array(items) => Err(Error::custom(format!(
                "expected array of length {len}, found length {}",
                items.len()
            ))),
            other => Err(Error::custom(format!(
                "expected array of length {len}, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Number(Number::UInt(u64::from(*self)))
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value.as_u64()?;
                <$ty>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Number(Number::UInt(*self as u64))
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let n = value.as_u64()?;
        usize::try_from(n).map_err(|_| Error::custom(format!("{n} out of range for usize")))
    }
}

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v < 0 {
                    Value::Number(Number::Int(v))
                } else {
                    Value::Number(Number::UInt(v as u64))
                }
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value.as_i64()?;
                <$ty>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let n = value.as_i64()?;
        isize::try_from(n).map_err(|_| Error::custom(format!("{n} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.as_f64()? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected char, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Rc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

fn seq_to_value<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>) -> Value {
    Value::Array(items.map(Serialize::to_value).collect())
}

fn value_to_seq<T: Deserialize>(value: &Value) -> Result<Vec<T>, Error> {
    match value {
        Value::Array(items) => items.iter().map(T::from_value).collect(),
        other => Err(Error::custom(format!(
            "expected array, found {}",
            other.kind()
        ))),
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value_to_seq::<T>(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, found length {len}")))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value_to_seq(value)
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value_to_seq(value)
            .map(Vec::into_iter)
            .map(VecDeque::from_iter)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value_to_seq(value)
            .map(Vec::into_iter)
            .map(BTreeSet::from_iter)
    }
}

impl<T: Serialize, S: BuildHasher> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Deserialize + Eq + Hash, S: BuildHasher + Default> Deserialize for HashSet<T, S> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value_to_seq(value)
            .map(Vec::into_iter)
            .map(HashSet::from_iter)
    }
}

fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    Value::Array(
        entries
            .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
            .collect(),
    )
}

fn value_to_map<K: Deserialize, V: Deserialize>(value: &Value) -> Result<Vec<(K, V)>, Error> {
    match value {
        Value::Array(items) => items
            .iter()
            .map(|item| {
                let pair = __private::tuple(item, 2)?;
                Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
            })
            .collect(),
        other => Err(Error::custom(format!(
            "expected array of [key, value] pairs, found {}",
            other.kind()
        ))),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value_to_map(value)
            .map(Vec::into_iter)
            .map(BTreeMap::from_iter)
    }
}

impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S: BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        value_to_map(value)
            .map(Vec::into_iter)
            .map(HashMap::from_iter)
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(Error::custom(format!(
                "expected null, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_tuple {
    ($len:literal => $($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = __private::tuple(value, $len)?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(1 => A: 0);
impl_tuple!(2 => A: 0, B: 1);
impl_tuple!(3 => A: 0, B: 1, C: 2);
impl_tuple!(4 => A: 0, B: 1, C: 2, D: 3);
impl_tuple!(5 => A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple!(6 => A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple!(7 => A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple!(8 => A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
