//! The owned value tree this serde stand-in serializes through.

use crate::Error;

/// A JSON-compatible number.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
}

/// A JSON-compatible value.  Objects preserve insertion order so serialized
/// output is deterministic and mirrors field declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered key/value mapping.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short description of the value's kind, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Looks up a key in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Interprets the value as a `u64`.
    pub fn as_u64(&self) -> Result<u64, Error> {
        match self {
            Value::Number(Number::UInt(n)) => Ok(*n),
            Value::Number(Number::Int(n)) if *n >= 0 => Ok(*n as u64),
            Value::Number(Number::Float(f))
                if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 =>
            {
                Ok(*f as u64)
            }
            other => Err(Error::custom(format!(
                "expected unsigned integer, found {}",
                other.kind()
            ))),
        }
    }

    /// Interprets the value as an `i64`.
    pub fn as_i64(&self) -> Result<i64, Error> {
        match self {
            Value::Number(Number::Int(n)) => Ok(*n),
            Value::Number(Number::UInt(n)) => {
                i64::try_from(*n).map_err(|_| Error::custom(format!("{n} out of range for i64")))
            }
            Value::Number(Number::Float(f)) if f.fract() == 0.0 => Ok(*f as i64),
            other => Err(Error::custom(format!(
                "expected integer, found {}",
                other.kind()
            ))),
        }
    }

    /// Interprets the value as an `f64` (any number qualifies).
    pub fn as_f64(&self) -> Result<f64, Error> {
        match self {
            Value::Number(Number::Float(f)) => Ok(*f),
            Value::Number(Number::UInt(n)) => Ok(*n as f64),
            Value::Number(Number::Int(n)) => Ok(*n as f64),
            other => Err(Error::custom(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

// A `Value` serializes and deserializes as itself, so callers can parse
// arbitrary JSON into the value tree (`serde_json::from_str::<Value>`) the
// way real serde_json allows.
impl crate::Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl crate::Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
