//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes the MISP workspace actually contains: non-generic structs (named,
//! tuple and unit) and non-generic enums whose variants are unit, tuple or
//! struct-like.  Two `#[serde(...)]` attributes are honoured:
//! `skip_serializing_if = "path"` on named fields (the field is omitted from
//! the object when the predicate holds, and treated as `null` when absent on
//! deserialization) and `#[serde(transparent)]` on newtype structs, which
//! already serialize transparently here (as in real serde).  All other
//! `#[serde(...)]` attributes are accepted and ignored.
//!
//! The input token stream is parsed by hand (no `syn`/`quote` in an offline
//! container) and the generated impl is produced as a string, then reparsed
//! by the compiler.  Unsupported shapes (generic types, unions) produce a
//! `compile_error!` naming the limitation rather than silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field together with the serde attributes this stand-in honours.
struct Field {
    name: String,
    /// Predicate path from `#[serde(skip_serializing_if = "path")]`, if any.
    skip_serializing_if: Option<String>,
}

/// Fields of a struct or enum variant.
enum Fields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

enum Body {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Input {
    name: String,
    body: Body,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    let code = match parse(input) {
        Ok(parsed) => gen(&parsed),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

// ---------------------------------------------------------------------------
// Parsing

fn parse(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attributes_and_visibility(&tokens, &mut pos);

    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    pos += 1;

    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    pos += 1;

    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive stand-in: generic type `{name}` is not supported"
        ));
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unexpected struct body: {other:?}")),
            };
            Ok(Input {
                name,
                body: Body::Struct(fields),
            })
        }
        "enum" => {
            let body = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())?
                }
                other => return Err(format!("unexpected enum body: {other:?}")),
            };
            Ok(Input {
                name,
                body: Body::Enum(body),
            })
        }
        other => Err(format!(
            "serde_derive stand-in: `{other}` items are not supported"
        )),
    }
}

fn skip_attributes_and_visibility(tokens: &[TokenTree], pos: &mut usize) {
    let _ = consume_attributes_and_visibility(tokens, pos);
}

/// Skips attributes and visibility like [`skip_attributes_and_visibility`],
/// additionally returning the predicate path of any
/// `#[serde(skip_serializing_if = "path")]` attribute encountered.
fn consume_attributes_and_visibility(tokens: &[TokenTree], pos: &mut usize) -> Option<String> {
    let mut skip_if = None;
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                    if let Some(predicate) = parse_skip_serializing_if(g.stream()) {
                        skip_if = Some(predicate);
                    }
                    *pos += 1;
                }
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                *pos += 1;
                if matches!(
                    tokens.get(*pos),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *pos += 1;
                }
            }
            _ => return skip_if,
        }
    }
}

/// Extracts the predicate path from the body of a
/// `serde(skip_serializing_if = "path")` attribute, if this is one.
fn parse_skip_serializing_if(stream: TokenStream) -> Option<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(ident)) if ident.to_string() == "serde" => {}
        _ => return None,
    }
    let inner: Vec<TokenTree> = match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            g.stream().into_iter().collect()
        }
        _ => return None,
    };
    for (index, token) in inner.iter().enumerate() {
        let TokenTree::Ident(ident) = token else {
            continue;
        };
        if ident.to_string() != "skip_serializing_if" {
            continue;
        }
        if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
            (inner.get(index + 1), inner.get(index + 2))
        {
            if eq.as_char() == '=' {
                return Some(lit.to_string().trim_matches('"').to_string());
            }
        }
    }
    None
}

/// Parses `field: Type, ...` returning field names.  Types are skipped by
/// scanning to the next comma that is not nested inside angle brackets.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let skip_serializing_if = consume_attributes_and_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(ident) => ident.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_type(&tokens, &mut pos);
        fields.push(Field {
            name,
            skip_serializing_if,
        });
    }
    Ok(fields)
}

/// Advances past a type, stopping after the field-separating comma (or at
/// end of stream).  Tracks `<`/`>` nesting so commas inside generics don't
/// terminate the scan.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(token) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    *pos += 1;
                    return;
                }
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0usize;
    let mut trailing_comma = false;
    for token in &tokens {
        trailing_comma = false;
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(ident) => ident.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        pos += 1;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the separating comma.
        while pos < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[pos] {
                if p.as_char() == ',' {
                    pos += 1;
                    break;
                }
            }
            pos += 1;
        }
        variants.push((name, fields));
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation

const HEADER: &str =
    "#[automatically_derived]\n#[allow(warnings, clippy::all, clippy::pedantic)]\n";

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::Struct(fields) => ser_struct_body(name, fields),
        Body::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|(variant, fields)| ser_variant_arm(name, variant, fields))
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "{HEADER}impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}"
    )
}

fn ser_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => "::serde::value::Value::Null".to_string(),
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
        }
        Fields::Named(fields) => {
            let _ = name;
            ser_named_fields(fields, |f| format!("&self.{f}"))
        }
    }
}

/// Builds the object-construction expression of a named-field struct or
/// variant.  `ref_of` maps a field name to the expression yielding a
/// reference to it (`&self.f` for structs, the match binding for variants).
/// Fields carrying `skip_serializing_if` are pushed conditionally.
fn ser_named_fields(fields: &[Field], ref_of: impl Fn(&str) -> String) -> String {
    let mut body = String::from(
        "{ let mut __fields: ::std::vec::Vec<(::std::string::String, \
         ::serde::value::Value)> = ::std::vec::Vec::new(); ",
    );
    for field in fields {
        let name = &field.name;
        let reference = ref_of(name);
        let push = format!(
            "__fields.push(({name:?}.to_string(), ::serde::Serialize::to_value({reference})));"
        );
        match &field.skip_serializing_if {
            Some(predicate) => {
                body.push_str(&format!("if !{predicate}({reference}) {{ {push} }} "));
            }
            None => {
                body.push_str(&push);
                body.push(' ');
            }
        }
    }
    body.push_str("::serde::value::Value::Object(__fields) }");
    body
}

fn ser_variant_arm(name: &str, variant: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!(
            "{name}::{variant} => ::serde::value::Value::String({variant:?}.to_string()),\n"
        ),
        Fields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let inner = if *n == 1 {
                "::serde::Serialize::to_value(__f0)".to_string()
            } else {
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "{name}::{variant}({}) => ::serde::value::Value::Object(vec![({variant:?}.to_string(), {inner})]),\n",
                binds.join(", ")
            )
        }
        Fields::Named(fields) => {
            let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
            let inner = ser_named_fields(fields, |f| f.to_string());
            format!(
                "{name}::{variant} {{ {} }} => ::serde::value::Value::Object(vec![({variant:?}.to_string(), {inner})]),\n",
                binds.join(", ")
            )
        }
    }
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::Struct(fields) => de_struct_body(name, fields),
        Body::Enum(variants) => de_enum_body(name, variants),
    };
    format!(
        "{HEADER}impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__value: &::serde::value::Value) -> ::core::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

fn de_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!("{{ let _ = __value; Ok({name}) }}"),
        Fields::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(__value)?))"),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "{{ let __items = ::serde::__private::tuple(__value, {n})?; Ok({name}({})) }}",
                items.join(", ")
            )
        }
        Fields::Named(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| de_named_field(f, "__value"))
                .collect();
            format!("Ok({name} {{ {} }})", items.join(", "))
        }
    }
}

/// Builds the `field: from_value(..)?` initializer of one named field.
/// Fields carrying `skip_serializing_if` read as `null` when absent, so a
/// document that omitted them round-trips.
fn de_named_field(field: &Field, source: &str) -> String {
    let name = &field.name;
    let lookup = if field.skip_serializing_if.is_some() {
        "field_or_null"
    } else {
        "field"
    };
    format!(
        "{name}: ::serde::Deserialize::from_value(::serde::__private::{lookup}({source}, {name:?})?)?"
    )
}

fn de_enum_body(name: &str, variants: &[(String, Fields)]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|(_, fields)| matches!(fields, Fields::Unit))
        .map(|(variant, _)| format!("{variant:?} => Ok({name}::{variant}),\n"))
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter(|(_, fields)| !matches!(fields, Fields::Unit))
        .map(|(variant, fields)| de_variant_arm(name, variant, fields))
        .collect();
    format!(
        "match __value {{\n\
         ::serde::value::Value::String(__s) => match __s.as_str() {{\n\
         {unit_arms}\
         __other => Err(::serde::Error::custom(format!(\"unknown {name} variant `{{__other}}`\"))),\n\
         }},\n\
         ::serde::value::Value::Object(__fields) if __fields.len() == 1 => {{\n\
         let (__tag, __inner) = &__fields[0];\n\
         match __tag.as_str() {{\n\
         {tagged_arms}\
         __other => Err(::serde::Error::custom(format!(\"unknown {name} variant `{{__other}}`\"))),\n\
         }}\n\
         }},\n\
         __other => Err(::serde::Error::custom(format!(\"expected {name} variant, found {{}}\", __other.kind()))),\n\
         }}"
    )
}

fn de_variant_arm(name: &str, variant: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => unreachable!("unit variants handled in the string arm"),
        Fields::Tuple(1) => format!(
            "{variant:?} => Ok({name}::{variant}(::serde::Deserialize::from_value(__inner)?)),\n"
        ),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "{variant:?} => {{ let __items = ::serde::__private::tuple(__inner, {n})?; Ok({name}::{variant}({})) }},\n",
                items.join(", ")
            )
        }
        Fields::Named(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| de_named_field(f, "__inner"))
                .collect();
            format!(
                "{variant:?} => Ok({name}::{variant} {{ {} }}),\n",
                items.join(", ")
            )
        }
    }
}
