//! Offline stand-in for the `serde_json` crate.
//!
//! Emits and parses JSON through the [`serde`] stand-in's owned value tree.
//! Supports everything this workspace serializes; see the `serde` crate's
//! documentation for the (few, deliberate) representation differences from
//! real serde_json — most notably, maps emit as arrays of `[key, value]`
//! pairs rather than string-keyed objects.

#![forbid(unsafe_code)]

use serde::{Deserialize, Number, Serialize};

pub use serde::Error;
pub use serde::Value;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Incremental writer of line-delimited JSON (JSONL / NDJSON).
///
/// Serializes one value per [`write`](LineWriter::write) call, terminated by
/// a single `\n`, directly into the underlying [`std::io::Write`] — the
/// document is never buffered as a whole, so a stream of millions of records
/// costs only the largest single line.  The internal line buffer is reused
/// across calls; after the warm-up line, steady-state writes allocate only
/// when a line outgrows every previous one.
///
/// ```
/// let mut out = Vec::new();
/// let mut w = serde_json::LineWriter::new(&mut out);
/// w.write(&1u32).unwrap();
/// w.write(&vec![2u32, 3]).unwrap();
/// assert_eq!(out, b"1\n[2,3]\n");
/// ```
#[derive(Debug)]
pub struct LineWriter<W: std::io::Write> {
    writer: W,
    buf: String,
}

impl<W: std::io::Write> LineWriter<W> {
    /// Wraps `writer` for line-delimited output.
    pub fn new(writer: W) -> Self {
        LineWriter {
            writer,
            buf: String::new(),
        }
    }

    /// Serializes `value` compactly and writes it as one `\n`-terminated
    /// line.
    ///
    /// # Errors
    ///
    /// Returns serialization failures (e.g. non-finite floats) and I/O errors
    /// from the underlying writer, both as [`Error`].
    pub fn write<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.buf.clear();
        write_value(&mut self.buf, &value.to_value(), None, 0)?;
        self.buf.push('\n');
        self.writer
            .write_all(self.buf.as_bytes())
            .map_err(|e| Error::custom(format!("I/O error writing JSONL line: {e}")))
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer as [`Error`].
    pub fn flush(&mut self) -> Result<(), Error> {
        self.writer
            .flush()
            .map_err(|e| Error::custom(format!("I/O error flushing JSONL writer: {e}")))
    }

    /// Unwraps the underlying writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        input: s,
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Emission

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n)?,
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) -> Result<(), Error> {
    match n {
        Number::UInt(v) => out.push_str(&v.to_string()),
        Number::Int(v) => out.push_str(&v.to_string()),
        Number::Float(f) => {
            if !f.is_finite() {
                return Err(Error::custom("JSON cannot represent NaN or infinity"));
            }
            if f == f.trunc() && f.abs() < 1e15 {
                // Keep a fractional part so the value reads back as a float.
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&format!("{f}"));
            }
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing

/// Maximum nesting depth accepted by the parser (matches real serde_json's
/// recursion limit), so malformed input returns `Err` instead of blowing the
/// stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            None => Err(Error::custom("unexpected end of JSON input")),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::custom(format!(
                "unexpected character `{}` at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::custom(format!(
                "recursion limit exceeded at offset {}",
                self.pos
            )));
        }
        Ok(())
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.enter()?;
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: a low surrogate must follow.
                                if !(self.eat_literal("\\u")) {
                                    return Err(Error::custom("unpaired surrogate"));
                                }
                                let second = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid unicode escape"))?,
                            );
                            continue;
                        }
                        other => {
                            return Err(Error::custom(format!("invalid escape: {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // `pos` only ever advances by whole characters, so it is
                    // a char boundary of the original &str and the next char
                    // can be decoded without revalidating the tail.
                    let c = self.input[self.pos..]
                        .chars()
                        .next()
                        .ok_or_else(|| Error::custom("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::custom("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::custom("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::UInt(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
    }

    #[test]
    fn round_trips_containers() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);

        let mut m = std::collections::BTreeMap::new();
        m.insert(3u32, "x".to_string());
        let json = to_string(&m).unwrap();
        assert_eq!(json, "[[3,\"x\"]]");
        let back: std::collections::BTreeMap<u32, String> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pretty_prints_with_two_space_indent() {
        let v = vec![vec![1u32], vec![]];
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "[\n  [\n    1\n  ],\n  []\n]"
        );
    }

    #[test]
    fn line_writer_streams_one_compact_line_per_value() {
        let mut out = Vec::new();
        let mut w = LineWriter::new(&mut out);
        w.write(&42u64).unwrap();
        w.write("a\nb").unwrap();
        w.write(&vec![1u32, 2]).unwrap();
        w.flush().unwrap();
        assert_eq!(out, b"42\n\"a\\nb\"\n[1,2]\n");
    }

    #[test]
    fn line_writer_reports_serialization_and_io_errors() {
        struct Full;
        impl std::io::Write for Full {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut w = LineWriter::new(Full);
        assert!(w.write(&f64::NAN).unwrap_err().to_string().contains("NaN"));
        assert!(w
            .write(&1u32)
            .unwrap_err()
            .to_string()
            .contains("disk full"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(100_000);
        let err = from_str::<Vec<u32>>(&deep).unwrap_err();
        assert!(err.to_string().contains("recursion limit"));
    }

    #[test]
    fn long_strings_parse_quickly() {
        let body: String = "x".repeat(1_000_000);
        let json = format!("\"{body}\"");
        let start = std::time::Instant::now();
        assert_eq!(from_str::<String>(&json).unwrap(), body);
        assert!(start.elapsed() < std::time::Duration::from_secs(2));
    }
}
