//! Engine wall-clock trajectory bench: times the full `fig4` sweep on one
//! thread with the macro-step fast path enabled (the default) and with it
//! force-disabled (the event-per-operation reference loop), plus the
//! `fleet_service` sweep (the conservatively-synchronized multi-machine
//! path), and *appends* the measurements to `BENCH_engine.json` at the
//! repository root so the repo carries a machine-readable perf trajectory
//! from PR to PR.
//!
//! Regenerate with:
//!
//! ```text
//! MISP_BENCH_PR=<short-pr-slug> cargo bench -p misp-bench --bench engine
//! ```
//!
//! Schema v2: `entries[]` accumulates across PRs, each entry tagged with the
//! `pr` slug that measured it (`MISP_BENCH_PR`, default `"dev"`).  Re-running
//! under the same slug replaces that slug's entries, so regeneration is
//! idempotent.  After writing, the bench *fails* if the fresh `macro-step`
//! ops/sec regressed more than 10% below the best previously committed entry
//! on the same grid — set `MISP_BENCH_GATE=off` to bypass when measuring on
//! an incomparable machine.
//!
//! CI's `bench-trajectory` job runs the same target with `-- --test` (one
//! measured iteration per configuration) and uploads the emitted document as
//! an artifact next to the sweep-smoke results.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use misp_core::{FleetTopology, LoadBalancerPolicy};
use misp_harness::{
    grids, run_grid, run_grid_with_artifacts, GridSpec, RunKind, SweepOptions, VerifyMode,
};
use misp_sim::QueueProfile;
use misp_workloads::{catalog, scenario, Machine, Run};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Instant;

/// One measured configuration of the grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchEntry {
    /// Short slug of the PR that measured this entry.
    pr: String,
    /// The measured grid.
    grid: String,
    /// `"macro-step"` (batching on) or `"event-per-op"` (batching off).
    config: String,
    /// Total simulated operations executed by one sweep of the grid.
    total_ops: u64,
    /// Wall-clock milliseconds of one single-threaded sweep of the grid
    /// (best of the measured iterations).
    wall_ms: f64,
    /// Simulated operations retired per wall-clock second at that speed.
    ops_per_sec: f64,
    /// Largest simultaneous event-queue occupancy seen across the sweep's
    /// radix heaps.  `None` in entries measured before self-profiling landed.
    #[serde(skip_serializing_if = "Option::is_none")]
    heap_max_len: Option<u64>,
    /// Total bucket redistributions performed by the sweep's radix heaps.
    #[serde(skip_serializing_if = "Option::is_none")]
    heap_redistributions: Option<u64>,
    /// Total superseded-slot replacements absorbed by the sweep's radix
    /// heaps.
    #[serde(skip_serializing_if = "Option::is_none")]
    heap_supersessions: Option<u64>,
}

/// The `BENCH_engine.json` document (schema v2).
#[derive(Debug, Serialize, Deserialize)]
struct BenchDoc {
    schema_version: u32,
    /// Per-PR measurements, append-only (oldest first).
    entries: Vec<BenchEntry>,
    /// Latest `event-per-op` wall-clock divided by latest `macro-step`
    /// wall-clock.
    speedup_macro_step: f64,
    /// Wall-clock of the pre-macro-step seed engine on the same grid and
    /// machine, when known (passed via `MISP_BENCH_SEED_MS`; the seed
    /// predates this bench, so it cannot be regenerated from the current
    /// tree).  `null` in CI-regenerated documents.
    reference_seed_wall_ms: Option<f64>,
    /// `reference_seed_wall_ms` divided by the latest macro-step wall-clock.
    speedup_vs_seed: Option<f64>,
}

/// Schema v1 (one PR per document, no `pr` tags), read for migration only.
#[derive(Debug, Deserialize)]
struct BenchEntryV1 {
    grid: String,
    config: String,
    wall_ms: f64,
    ops_per_sec: f64,
}

/// Schema v1 document shape; see [`BenchEntryV1`].
#[derive(Debug, Deserialize)]
#[allow(dead_code)]
struct BenchDocV1 {
    schema_version: u32,
    total_ops: u64,
    entries: Vec<BenchEntryV1>,
    speedup_macro_step: f64,
    reference_seed_wall_ms: Option<f64>,
    speedup_vs_seed: Option<f64>,
}

/// Loads previously committed entries (plus the seed reference), migrating a
/// v1 document by tagging its entries with the PR that committed them.
fn load_prior(path: &PathBuf) -> (Vec<BenchEntry>, Option<f64>) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return (Vec::new(), None);
    };
    if let Ok(doc) = serde_json::from_str::<BenchDoc>(&text) {
        if doc.schema_version == 2 {
            return (doc.entries, doc.reference_seed_wall_ms);
        }
    }
    if let Ok(doc) = serde_json::from_str::<BenchDocV1>(&text) {
        let entries = doc
            .entries
            .into_iter()
            .map(|e| BenchEntry {
                pr: "macro-step-hot-loop".to_string(),
                grid: e.grid,
                config: e.config,
                total_ops: doc.total_ops,
                wall_ms: e.wall_ms,
                ops_per_sec: e.ops_per_sec,
                heap_max_len: None,
                heap_redistributions: None,
                heap_supersessions: None,
            })
            .collect();
        return (entries, doc.reference_seed_wall_ms);
    }
    panic!("BENCH_engine.json exists but matches neither schema v1 nor v2");
}

/// The fig4 grid with the macro-step fast path force-disabled on every
/// simulation point.
fn fig4_event_per_op() -> GridSpec {
    let mut grid = grids::fig4();
    for run in &mut grid.runs {
        if let RunKind::Sim(sim) = &mut run.kind {
            sim.batch = false;
        }
    }
    grid
}

/// Counts the simulated operations of one fig4 sweep by re-running its
/// workload × machine matrix directly (the sweep results intentionally do
/// not carry op counts).
fn fig4_total_ops() -> u64 {
    let config = misp_harness::experiment_config();
    let topo = misp_core::MispTopology::uniprocessor(7).expect("1 OMS + 7 AMS");
    let mut total = 0u64;
    for w in catalog::all() {
        for machine in [
            Machine::Serial,
            Machine::Misp(topo.clone()),
            Machine::smp(8),
        ] {
            let report = Run::workload(&w)
                .machine(machine)
                .config(config)
                .execute()
                .expect("fig4 machine run");
            total += report
                .stats
                .per_sequencer
                .iter()
                .map(|s| s.ops)
                .sum::<u64>();
        }
    }
    total
}

/// Counts the simulated operations of one fleet_service sweep by re-running
/// its (fleet size × policy × load × machine) matrix through the direct
/// fleet runner, mirroring `grids::fleet_service`.
fn fleet_service_total_ops() -> u64 {
    let config = misp_harness::experiment_config();
    let topo = misp_core::MispTopology::uniprocessor(7).expect("1 OMS + 7 AMS");
    let mut points: Vec<(usize, LoadBalancerPolicy, u32)> = Vec::new();
    for machines in grids::fleet_machine_points() {
        for policy in LoadBalancerPolicy::all() {
            points.push((machines, policy, 60));
        }
    }
    points.push((16, LoadBalancerPolicy::RoundRobin, 90));

    let mut total = 0u64;
    for (machines, policy, load) in points {
        let s = scenario::by_name("poisson")
            .expect("catalog scenario")
            .with_offered_load(load);
        let fleet = FleetTopology::new(machines, policy).expect("valid fleet");
        for machine in [Machine::Misp(topo.clone()), Machine::smp(8)] {
            let report = Run::scenario(&s)
                .machine(machine)
                .config(config)
                .seed(grids::SERVICE_SEED)
                .execute_fleet(&fleet)
                .expect("fleet_service point runs");
            total += report
                .reports
                .iter()
                .flat_map(|r| r.stats.per_sequencer.iter())
                .map(|s| s.ops)
                .sum::<u64>();
        }
    }
    total
}

/// Aggregates the radix-heap self-profile over one single-threaded sweep of
/// `grid`: max occupancy, bucket redistributions, and superseded-slot
/// replacements summed across every simulation point.  Runs outside the
/// timed iterations so harvesting never skews the wall-clock numbers.
fn heap_profile(grid: &GridSpec) -> QueueProfile {
    let options = SweepOptions {
        threads: 1,
        verify: VerifyMode::Off,
    };
    let (_, artifacts) = run_grid_with_artifacts(grid, &options).expect("fig4 sweeps cleanly");
    let mut total = QueueProfile::default();
    for profile in artifacts.iter().filter_map(|a| a.queue.as_ref()) {
        total.absorb(profile);
    }
    total
}

/// Times one single-threaded sweep of `grid`, best of `iters` runs.
// Wall-clock timing is allowed here (clippy.toml + lint.toml): this is the
// bench harness measuring host runtime around whole deterministic runs.
#[allow(clippy::disallowed_methods)]
fn time_grid(grid: &GridSpec, iters: usize) -> f64 {
    let options = SweepOptions {
        threads: 1,
        verify: VerifyMode::Off,
    };
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        black_box(run_grid(grid, &options).expect("fig4 sweeps cleanly"));
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn emit_trajectory(test_mode: bool) {
    let iters = if test_mode { 1 } else { 12 };
    let pr = std::env::var("MISP_BENCH_PR").unwrap_or_else(|_| "dev".to_string());
    let batched = grids::fig4();
    let reference = fig4_event_per_op();
    let fleet_grid = grids::fleet_service();
    let on_ms = time_grid(&batched, iters);
    let off_ms = time_grid(&reference, iters);
    let fleet_ms = time_grid(&fleet_grid, iters);
    let total_ops = fig4_total_ops();
    let fleet_ops = fleet_service_total_ops();
    let entry = |grid: &str, config: &str, ops: u64, wall_ms: f64, heap: QueueProfile| BenchEntry {
        pr: pr.clone(),
        grid: grid.to_string(),
        config: config.to_string(),
        total_ops: ops,
        wall_ms: (wall_ms * 1000.0).round() / 1000.0,
        ops_per_sec: (ops as f64 / (wall_ms / 1e3)).round(),
        heap_max_len: Some(heap.max_len),
        heap_redistributions: Some(heap.redistributions),
        heap_supersessions: Some(heap.supersessions),
    };

    // crates/bench/ -> repository root.
    let out: PathBuf = [env!("CARGO_MANIFEST_DIR"), "..", "..", "BENCH_engine.json"]
        .iter()
        .collect();
    let (prior, prior_seed) = load_prior(&out);

    // Best previously committed macro-step throughput on this grid — the
    // regression baseline.  Entries from the current slug are excluded (a
    // re-run replaces them below).
    let best_committed = prior
        .iter()
        .filter(|e| e.pr != pr && e.grid == "fig4" && e.config == "macro-step")
        .map(|e| e.ops_per_sec)
        .fold(f64::NAN, f64::max);

    let seed_ms = std::env::var("MISP_BENCH_SEED_MS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .or(prior_seed);
    let mut entries: Vec<BenchEntry> = prior.into_iter().filter(|e| e.pr != pr).collect();
    let fresh = entry(
        "fig4",
        "macro-step",
        total_ops,
        on_ms,
        heap_profile(&batched),
    );
    let fresh_ops_per_sec = fresh.ops_per_sec;
    entries.push(fresh);
    entries.push(entry(
        "fig4",
        "event-per-op",
        total_ops,
        off_ms,
        heap_profile(&reference),
    ));
    // The fleet case rides along for trajectory visibility; the regression
    // gate below stays anchored on the fig4 macro-step entry.
    entries.push(entry(
        "fleet_service",
        "fleet",
        fleet_ops,
        fleet_ms,
        heap_profile(&fleet_grid),
    ));
    let doc = BenchDoc {
        schema_version: 2,
        entries,
        speedup_macro_step: ((off_ms / on_ms) * 100.0).round() / 100.0,
        reference_seed_wall_ms: seed_ms,
        speedup_vs_seed: seed_ms.map(|s| ((s / on_ms) * 100.0).round() / 100.0),
    };
    let mut json = serde_json::to_string_pretty(&doc).expect("serializable");
    json.push('\n');
    std::fs::write(&out, &json).expect("write BENCH_engine.json");
    println!(
        "BENCH_engine.json [{pr}]: macro-step {on_ms:.2} ms, event-per-op {off_ms:.2} ms \
         ({:.2}x), {total_ops} simulated ops; fleet_service {fleet_ms:.2} ms, \
         {fleet_ops} ops -> {}",
        off_ms / on_ms,
        out.display()
    );

    // Regression gate: written-then-checked so the artifact always carries
    // the offending measurement.
    let gate_off = std::env::var("MISP_BENCH_GATE").is_ok_and(|v| v == "off");
    if !gate_off && best_committed.is_finite() && fresh_ops_per_sec < 0.9 * best_committed {
        panic!(
            "engine throughput regression: {fresh_ops_per_sec:.0} ops/sec is more than 10% \
             below the best committed macro-step entry ({best_committed:.0} ops/sec); \
             set MISP_BENCH_GATE=off to bypass on an incomparable machine"
        );
    }
}

fn bench_engine(c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    emit_trajectory(test_mode);
    // Also surface the sweep through the regular criterion output so the
    // bench-smoke job exercises the timed path.
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.bench_function("fig4_sweep_macro_step", |b| {
        let grid = grids::fig4();
        let options = SweepOptions {
            threads: 1,
            verify: VerifyMode::Off,
        };
        b.iter(|| {
            black_box(
                run_grid(&grid, &options)
                    .expect("fig4 sweeps cleanly")
                    .run_count,
            )
        });
    });
    group.bench_function("fleet_service_sweep", |b| {
        let grid = grids::fleet_service();
        let options = SweepOptions {
            threads: 1,
            verify: VerifyMode::Off,
        };
        b.iter(|| {
            black_box(
                run_grid(&grid, &options)
                    .expect("fleet_service sweeps cleanly")
                    .run_count,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
