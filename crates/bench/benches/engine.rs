//! Engine wall-clock trajectory bench: times the full `fig4` sweep on one
//! thread with the macro-step fast path enabled (the default) and with it
//! force-disabled (the event-per-operation reference loop), and emits
//! `BENCH_engine.json` at the repository root so the repo carries a
//! machine-readable perf trajectory from PR to PR.
//!
//! Regenerate with:
//!
//! ```text
//! cargo bench -p misp-bench --bench engine
//! ```
//!
//! CI's `bench-trajectory` job runs the same target with `-- --test` (one
//! measured iteration per configuration) and uploads the emitted document as
//! an artifact next to the sweep-smoke results.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use misp_harness::{grids, run_grid, GridSpec, RunKind, SweepOptions, VerifyMode};
use misp_workloads::{catalog, Machine, Run};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

/// One measured configuration of the grid.
#[derive(Debug, Serialize)]
struct BenchEntry {
    /// The measured grid.
    grid: String,
    /// `"macro-step"` (batching on) or `"event-per-op"` (batching off).
    config: String,
    /// Wall-clock milliseconds of one single-threaded sweep of the grid
    /// (best of the measured iterations).
    wall_ms: f64,
    /// Simulated operations retired per wall-clock second at that speed.
    ops_per_sec: f64,
}

/// The `BENCH_engine.json` document.
#[derive(Debug, Serialize)]
struct BenchDoc {
    schema_version: u32,
    /// Total simulated operations executed by one sweep of the grid.
    total_ops: u64,
    entries: Vec<BenchEntry>,
    /// `event-per-op` wall-clock divided by `macro-step` wall-clock.
    speedup_macro_step: f64,
    /// Wall-clock of the pre-macro-step seed engine on the same grid and
    /// machine, when known (passed via `MISP_BENCH_SEED_MS`; the seed
    /// predates this bench, so it cannot be regenerated from the current
    /// tree).  `null` in CI-regenerated documents.
    reference_seed_wall_ms: Option<f64>,
    /// `reference_seed_wall_ms` divided by the macro-step wall-clock.
    speedup_vs_seed: Option<f64>,
}

/// The fig4 grid with the macro-step fast path force-disabled on every
/// simulation point.
fn fig4_event_per_op() -> GridSpec {
    let mut grid = grids::fig4();
    for run in &mut grid.runs {
        if let RunKind::Sim(sim) = &mut run.kind {
            sim.batch = false;
        }
    }
    grid
}

/// Counts the simulated operations of one fig4 sweep by re-running its
/// workload × machine matrix directly (the sweep results intentionally do
/// not carry op counts).
fn fig4_total_ops() -> u64 {
    let config = misp_harness::experiment_config();
    let topo = misp_core::MispTopology::uniprocessor(7).expect("1 OMS + 7 AMS");
    let mut total = 0u64;
    for w in catalog::all() {
        for machine in [
            Machine::Serial,
            Machine::Misp(topo.clone()),
            Machine::smp(8),
        ] {
            let report = Run::workload(&w)
                .machine(machine)
                .config(config)
                .execute()
                .expect("fig4 machine run");
            total += report
                .stats
                .per_sequencer
                .iter()
                .map(|s| s.ops)
                .sum::<u64>();
        }
    }
    total
}

/// Times one single-threaded sweep of `grid`, best of `iters` runs.
fn time_grid(grid: &GridSpec, iters: usize) -> f64 {
    let options = SweepOptions {
        threads: 1,
        verify: VerifyMode::Off,
    };
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        black_box(run_grid(grid, &options).expect("fig4 sweeps cleanly"));
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn emit_trajectory(test_mode: bool) {
    let iters = if test_mode { 1 } else { 12 };
    let batched = grids::fig4();
    let reference = fig4_event_per_op();
    let on_ms = time_grid(&batched, iters);
    let off_ms = time_grid(&reference, iters);
    let total_ops = fig4_total_ops();
    let entry = |config: &str, wall_ms: f64| BenchEntry {
        grid: "fig4".to_string(),
        config: config.to_string(),
        wall_ms: (wall_ms * 1000.0).round() / 1000.0,
        ops_per_sec: (total_ops as f64 / (wall_ms / 1e3)).round(),
    };
    let seed_ms = std::env::var("MISP_BENCH_SEED_MS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());
    let doc = BenchDoc {
        schema_version: 1,
        total_ops,
        entries: vec![entry("macro-step", on_ms), entry("event-per-op", off_ms)],
        speedup_macro_step: ((off_ms / on_ms) * 100.0).round() / 100.0,
        reference_seed_wall_ms: seed_ms,
        speedup_vs_seed: seed_ms.map(|s| ((s / on_ms) * 100.0).round() / 100.0),
    };
    let mut json = serde_json::to_string_pretty(&doc).expect("serializable");
    json.push('\n');

    // crates/bench/ -> repository root.
    let out: PathBuf = [env!("CARGO_MANIFEST_DIR"), "..", "..", "BENCH_engine.json"]
        .iter()
        .collect();
    std::fs::write(&out, &json).expect("write BENCH_engine.json");
    println!(
        "BENCH_engine.json: macro-step {on_ms:.2} ms, event-per-op {off_ms:.2} ms \
         ({:.2}x), {total_ops} simulated ops -> {}",
        off_ms / on_ms,
        out.display()
    );
}

fn bench_engine(c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    emit_trajectory(test_mode);
    // Also surface the sweep through the regular criterion output so the
    // bench-smoke job exercises the timed path.
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.bench_function("fig4_sweep_macro_step", |b| {
        let grid = grids::fig4();
        let options = SweepOptions {
            threads: 1,
            verify: VerifyMode::Off,
        };
        b.iter(|| {
            black_box(
                run_grid(&grid, &options)
                    .expect("fig4 sweeps cleanly")
                    .run_count,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
