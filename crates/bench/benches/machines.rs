//! Criterion benchmarks of whole-machine simulations: how long it takes the
//! simulator to run a representative workload on the MISP machine, the SMP
//! baseline and a single sequencer.  These are the building blocks every
//! table/figure harness composes, so their cost determines how quickly the
//! full evaluation regenerates.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use misp_core::MispTopology;
use misp_os::TimerConfig;
use misp_sim::SimConfig;
use misp_types::Cycles;
use misp_workloads::{catalog, Machine, Run};

fn small_config() -> SimConfig {
    SimConfig {
        timer: TimerConfig::new(Cycles::new(3_000_000), 10),
        ..SimConfig::default()
    }
}

fn bench_machines(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine_simulation");
    group.sample_size(10);

    for name in ["dense_mvm", "sparse_mvm", "galgel"] {
        let workload = catalog::by_name(name).expect("workload exists");
        group.bench_with_input(BenchmarkId::new("misp_1x8", name), &workload, |b, w| {
            let topo = MispTopology::uniprocessor(7).unwrap();
            b.iter(|| {
                black_box(
                    Run::workload(w)
                        .topology(topo.clone())
                        .config(small_config())
                        .execute()
                        .unwrap()
                        .total_cycles,
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("smp_8", name), &workload, |b, w| {
            b.iter(|| {
                black_box(
                    Run::workload(w)
                        .machine(Machine::smp(8))
                        .config(small_config())
                        .execute()
                        .unwrap()
                        .total_cycles,
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("serial_1p", name), &workload, |b, w| {
            b.iter(|| {
                black_box(
                    Run::workload(w)
                        .config(small_config())
                        .execute()
                        .unwrap()
                        .total_cycles,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_machines);
criterion_main!(benches);
