//! Criterion micro-benchmarks of the MISP architecture's core mechanisms:
//! the signaling fabric, the trigger/response registry, the analytic overhead
//! model, ShredLib's work queue and synchronization objects, and the
//! instruction-stream cursor.  These quantify the *simulator's* costs (they
//! are what make the table/figure harnesses fast), complementing the
//! experiment binaries that regenerate the paper's results.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use misp_core::{OverheadModel, SignalFabric, SignalKind};
use misp_isa::{OwnedCursor, ProgramBuilder};
use misp_types::{CostModel, Cycles, LockId, SequencerId, ShredId, VirtAddr};
use shredlib::{SchedulingPolicy, SyncTable, WorkQueue};
use std::sync::Arc;

fn bench_signal_fabric(c: &mut Criterion) {
    c.bench_function("signal_fabric_send", |b| {
        let mut fabric = SignalFabric::new(CostModel::default());
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(fabric.send(
                SequencerId::new(1),
                SequencerId::new(0),
                SignalKind::ProxyRequest,
                Cycles::new(t),
            ))
        });
    });
    c.bench_function("signal_fabric_broadcast_7", |b| {
        let mut fabric = SignalFabric::new(CostModel::default());
        let targets: Vec<SequencerId> = (1..8).map(SequencerId::new).collect();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(fabric.broadcast(
                SequencerId::new(0),
                &targets,
                SignalKind::Suspend,
                Cycles::new(t),
            ))
        });
    });
}

fn bench_overhead_model(c: &mut Criterion) {
    c.bench_function("overhead_model_equations", |b| {
        let model = OverheadModel::new(CostModel::default());
        b.iter(|| {
            let s = model.serialize(black_box(Cycles::new(8_000)));
            let e = model.proxy_egress();
            let i = model.proxy_ingress(black_box(Cycles::new(8_000)));
            black_box((s, e, i))
        });
    });
    c.bench_function("overhead_model_fraction", |b| {
        let model = OverheadModel::new(CostModel::default());
        b.iter(|| {
            black_box(model.overhead_fraction(
                black_box(150_000),
                black_box(350_000),
                Cycles::new(5_000_000_000),
            ))
        });
    });
}

fn bench_work_queue(c: &mut Criterion) {
    c.bench_function("work_queue_push_pop_fifo", |b| {
        let mut q = WorkQueue::new(SchedulingPolicy::Fifo);
        let mut i = 0u32;
        b.iter(|| {
            i += 1;
            q.push(ShredId::new(i));
            black_box(q.pop())
        });
    });
    c.bench_function("work_queue_push_pop_lifo", |b| {
        let mut q = WorkQueue::new(SchedulingPolicy::Lifo);
        let mut i = 0u32;
        b.iter(|| {
            i += 1;
            q.push(ShredId::new(i));
            black_box(q.pop())
        });
    });
}

fn bench_sync_table(c: &mut Criterion) {
    c.bench_function("sync_mutex_uncontended", |b| {
        let mut t = SyncTable::new();
        let m = LockId::new(0);
        let s = ShredId::new(0);
        b.iter(|| {
            t.mutex_lock(m, s).unwrap();
            black_box(t.mutex_unlock(m, s).unwrap())
        });
    });
    c.bench_function("sync_barrier_cycle_8", |b| {
        let mut t = SyncTable::new();
        let bar = LockId::new(1);
        t.create_barrier(bar, 8);
        b.iter(|| {
            for i in 0..8u32 {
                black_box(t.barrier_wait(bar, ShredId::new(i)).unwrap());
            }
        });
    });
}

fn bench_program_cursor(c: &mut Criterion) {
    c.bench_function("program_cursor_1k_ops", |b| {
        let program = Arc::new(
            ProgramBuilder::new("bench")
                .repeat(250, |body| {
                    body.compute(Cycles::new(100))
                        .load(VirtAddr::new(0x1000))
                        .compute(Cycles::new(50))
                        .store(VirtAddr::new(0x2000))
                })
                .build(),
        );
        b.iter(|| {
            let mut cursor = OwnedCursor::new(Arc::clone(&program));
            let mut count = 0u32;
            loop {
                let op = cursor.next_op();
                count += 1;
                if matches!(op, misp_isa::Op::Halt) {
                    break;
                }
            }
            black_box(count)
        });
    });
}

criterion_group!(
    benches,
    bench_signal_fabric,
    bench_overhead_model,
    bench_work_queue,
    bench_sync_table,
    bench_program_cursor
);
criterion_main!(benches);
