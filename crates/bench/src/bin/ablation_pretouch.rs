//! Ablation A2 — page pre-touch: Section 5.3 observes that compulsory page
//! faults cause the majority of proxy-execution events and suggests that the
//! OMS could probe each page during the serial region, eliminating them.  The
//! `ablation_pretouch` grid implements that optimization and measures how
//! many proxy events it removes and what it does to end-to-end time.
//!
//! Regenerate with `cargo run --release -p misp-bench --bin ablation_pretouch`.

#![forbid(unsafe_code)]

use misp_bench::{format_table, sim_metrics, write_json};
use misp_harness::{grids, run_grid, SweepOptions};
use misp_workloads::catalog;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    workload: String,
    base_ams_page_faults: u64,
    pretouch_ams_page_faults: u64,
    base_proxy_executions: u64,
    pretouch_proxy_executions: u64,
    base_cycles: u64,
    pretouch_cycles: u64,
    cycle_delta_percent: f64,
}

fn main() {
    let results =
        run_grid(&grids::ablation_pretouch(), &SweepOptions::from_env()).expect("ablation sweep");
    let mut rows = Vec::new();

    for workload in catalog::all() {
        let name = workload.name();
        let base = sim_metrics(&results, &format!("{name}/base"));
        let pre = sim_metrics(&results, &format!("{name}/pretouch"));
        rows.push(Row {
            workload: name.to_string(),
            base_ams_page_faults: base.ams_page_faults,
            pretouch_ams_page_faults: pre.ams_page_faults,
            base_proxy_executions: base.proxy_executions,
            pretouch_proxy_executions: pre.proxy_executions,
            base_cycles: base.total_cycles,
            pretouch_cycles: pre.total_cycles,
            cycle_delta_percent: (pre.total_cycles as f64 / base.total_cycles as f64 - 1.0) * 100.0,
        });
    }

    println!("Ablation A2 - Page pre-touch in the serial region (Section 5.3 optimization)");
    println!();
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.base_ams_page_faults.to_string(),
                r.pretouch_ams_page_faults.to_string(),
                r.base_proxy_executions.to_string(),
                r.pretouch_proxy_executions.to_string(),
                format!("{:+.3}%", r.cycle_delta_percent),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "workload",
                "AMS PF (base)",
                "AMS PF (pretouch)",
                "proxy (base)",
                "proxy (pretouch)",
                "runtime delta"
            ],
            &table_rows
        )
    );
    let removed: u64 = rows
        .iter()
        .map(|r| r.base_proxy_executions - r.pretouch_proxy_executions.min(r.base_proxy_executions))
        .sum();
    println!(
        "pre-touching removes {removed} proxy-execution events across the suite; runtime moves \
         by well under a percent either way, confirming the paper's observation that the faults \
         are cheap but optimizable."
    );

    if let Some(path) = write_json("ablation_pretouch", &rows) {
        println!("\nresults written to {}", path.display());
    }
}
