//! Ablation A1 — ring-transition policy: the paper's simple suspend-all-AMS
//! policy versus the "more aggressive" speculative alternative sketched in
//! Section 2.3, in which AMSs continue through the OMS's Ring 0 episodes.
//!
//! The paper argues (and Figure 4/5 confirm) that the simple policy costs very
//! little; the `ablation_ring0` grid quantifies exactly how much performance
//! the extra hardware complexity of the speculative design would buy.
//!
//! Regenerate with `cargo run --release -p misp-bench --bin ablation_ring0`.

#![forbid(unsafe_code)]

use misp_bench::{format_table, sim_metrics, write_json};
use misp_harness::{grids, run_grid, SweepOptions};
use misp_workloads::catalog;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    workload: String,
    suspend_all_cycles: u64,
    speculative_cycles: u64,
    speculative_gain_percent: f64,
}

fn main() {
    let results =
        run_grid(&grids::ablation_ring0(), &SweepOptions::from_env()).expect("ablation sweep");
    let mut rows = Vec::new();
    for workload in catalog::all() {
        let name = workload.name();
        let suspend = sim_metrics(&results, &format!("{name}/suspend"));
        let speculative = sim_metrics(&results, &format!("{name}/speculative"));
        rows.push(Row {
            workload: name.to_string(),
            suspend_all_cycles: suspend.total_cycles,
            speculative_cycles: speculative.total_cycles,
            speculative_gain_percent: (speculative.speedup_vs_baseline.expect("baseline resolved")
                - 1.0)
                * 100.0,
        });
    }

    println!("Ablation A1 - Ring-transition policy: suspend-all AMSs (paper prototype) vs.");
    println!("speculative continue-through-Ring-0 (the aggressive microarchitecture of Sec. 2.3)");
    println!();
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.suspend_all_cycles.to_string(),
                r.speculative_cycles.to_string(),
                format!("{:+.3}%", r.speculative_gain_percent),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "workload",
                "suspend-all (cycles)",
                "speculative (cycles)",
                "speculative gain"
            ],
            &table_rows
        )
    );
    let avg: f64 = rows.iter().map(|r| r.speculative_gain_percent).sum::<f64>() / rows.len() as f64;
    println!(
        "average gain from the speculative design: {avg:.3}% — consistent with the paper's \
         conclusion that the simple suspend-all policy is sufficient."
    );

    if let Some(path) = write_json("ablation_ring0", &rows) {
        println!("\nresults written to {}", path.display());
    }
}
