//! Figure 4 — MISP performance: speedup over single-sequencer execution for
//! MISP (1 OMS + 7 AMS) and an 8-core SMP, across all 16 workloads.
//!
//! The runs come from the `fig4` grid of the sweep harness (parallel across
//! OS threads; set `MISP_SWEEP_THREADS` to pin the fan-out); this binary only
//! formats the aggregated records.
//!
//! Regenerate with `cargo run --release -p misp-bench --bin fig4`.

#![forbid(unsafe_code)]

use misp_bench::{format_table, sim_metrics, write_json};
use misp_harness::{grids, run_grid, SweepOptions};
use misp_workloads::catalog;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    workload: String,
    suite: String,
    serial_cycles: u64,
    misp_cycles: u64,
    smp_cycles: u64,
    misp_speedup: f64,
    smp_speedup: f64,
    misp_vs_smp_percent: f64,
}

fn main() {
    let results = run_grid(&grids::fig4(), &SweepOptions::from_env()).expect("fig4 sweep");
    let mut rows = Vec::new();

    for workload in catalog::all() {
        let name = workload.name();
        let serial = sim_metrics(&results, &format!("{name}/serial"));
        let misp = sim_metrics(&results, &format!("{name}/misp"));
        let smp = sim_metrics(&results, &format!("{name}/smp"));
        let misp_speedup = misp.speedup_vs_baseline.expect("baseline resolved");
        let smp_speedup = smp.speedup_vs_baseline.expect("baseline resolved");
        rows.push(Row {
            workload: name.to_string(),
            suite: workload.suite().label().to_string(),
            serial_cycles: serial.total_cycles,
            misp_cycles: misp.total_cycles,
            smp_cycles: smp.total_cycles,
            misp_speedup,
            smp_speedup,
            misp_vs_smp_percent: (misp_speedup / smp_speedup - 1.0) * 100.0,
        });
    }

    println!("Figure 4 - MISP Performance: 1 OMS + 7 AMS (speedup vs. 1P performance)");
    println!();
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.suite.clone(),
                format!("{:.2}", r.misp_speedup),
                format!("{:.2}", r.smp_speedup),
                format!("{:+.2}%", r.misp_vs_smp_percent),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "workload",
                "suite",
                "MISP speedup",
                "SMP speedup",
                "MISP vs SMP"
            ],
            &table_rows
        )
    );

    let rms: Vec<&Row> = rows.iter().filter(|r| r.suite == "RMS").collect();
    let spec: Vec<&Row> = rows.iter().filter(|r| r.suite == "SPEComp").collect();
    let avg = |rs: &[&Row]| -> f64 {
        rs.iter().map(|r| r.misp_vs_smp_percent).sum::<f64>() / rs.len().max(1) as f64
    };
    println!(
        "RMS workloads:     MISP runs {:+.2}% vs SMP on average (paper: -1.5%)",
        avg(&rms)
    );
    println!(
        "SPEComp workloads: MISP runs {:+.2}% vs SMP on average (paper: +1.9%)",
        avg(&spec)
    );

    if let Some(path) = write_json("fig4", &rows) {
        println!("\nresults written to {}", path.display());
    }
}
