//! Figure 4 — MISP performance: speedup over single-sequencer execution for
//! MISP (1 OMS + 7 AMS) and an 8-core SMP, across all 16 workloads.
//!
//! Regenerate with `cargo run --release -p misp-bench --bin fig4`.

use misp_bench::{experiment_config, format_table, speedup, write_json, SEQUENCERS, WORKERS};
use misp_core::MispTopology;
use misp_workloads::{catalog, runner};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    workload: String,
    suite: String,
    serial_cycles: u64,
    misp_cycles: u64,
    smp_cycles: u64,
    misp_speedup: f64,
    smp_speedup: f64,
    misp_vs_smp_percent: f64,
}

fn main() {
    let config = experiment_config();
    let topology = MispTopology::uniprocessor(SEQUENCERS - 1).expect("valid topology");
    let mut rows = Vec::new();

    for workload in catalog::all() {
        let serial = runner::run_serial(&workload, config, WORKERS).expect("serial run");
        let misp = runner::run_on_misp(&workload, &topology, config, WORKERS).expect("MISP run");
        let smp = runner::run_on_smp(&workload, SEQUENCERS, config, WORKERS).expect("SMP run");
        let misp_speedup = speedup(serial.total_cycles, misp.total_cycles);
        let smp_speedup = speedup(serial.total_cycles, smp.total_cycles);
        rows.push(Row {
            workload: workload.name().to_string(),
            suite: workload.suite().label().to_string(),
            serial_cycles: serial.total_cycles.as_u64(),
            misp_cycles: misp.total_cycles.as_u64(),
            smp_cycles: smp.total_cycles.as_u64(),
            misp_speedup,
            smp_speedup,
            misp_vs_smp_percent: (misp_speedup / smp_speedup - 1.0) * 100.0,
        });
    }

    println!("Figure 4 - MISP Performance: 1 OMS + 7 AMS (speedup vs. 1P performance)");
    println!();
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.suite.clone(),
                format!("{:.2}", r.misp_speedup),
                format!("{:.2}", r.smp_speedup),
                format!("{:+.2}%", r.misp_vs_smp_percent),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "workload",
                "suite",
                "MISP speedup",
                "SMP speedup",
                "MISP vs SMP"
            ],
            &table_rows
        )
    );

    let rms: Vec<&Row> = rows.iter().filter(|r| r.suite == "RMS").collect();
    let spec: Vec<&Row> = rows.iter().filter(|r| r.suite == "SPEComp").collect();
    let avg = |rs: &[&Row]| -> f64 {
        rs.iter().map(|r| r.misp_vs_smp_percent).sum::<f64>() / rs.len().max(1) as f64
    };
    println!(
        "RMS workloads:     MISP runs {:+.2}% vs SMP on average (paper: -1.5%)",
        avg(&rms)
    );
    println!(
        "SPEComp workloads: MISP runs {:+.2}% vs SMP on average (paper: +1.9%)",
        avg(&spec)
    );

    if let Some(path) = write_json("fig4", &rows) {
        println!("\nresults written to {}", path.display());
    }
}
