//! Figure 5 — Sensitivity to signal cost: the overhead each signal-latency
//! design point (500, 1000, 5000 cycles) adds relative to an ideal zero-cost
//! signaling implementation.
//!
//! Two methods are reported: (a) *measured* — the `fig5` grid re-simulates
//! the workload at each signal cost and compares against the ideal-signal
//! run, and (b) *analytic* — the paper's Equations 1–3 applied to the
//! serializing-event counts of the ideal run, which is how the paper itself
//! derives Figure 5.
//!
//! Regenerate with `cargo run --release -p misp-bench --bin fig5`.

#![forbid(unsafe_code)]

use misp_bench::{format_table, sim_metrics, write_json};
use misp_core::OverheadModel;
use misp_harness::{grids, run_grid, SweepOptions};
use misp_types::{Cycles, SignalCost};
use misp_workloads::catalog;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    workload: String,
    measured_500: f64,
    measured_1000: f64,
    measured_5000: f64,
    analytic_500: f64,
    analytic_1000: f64,
    analytic_5000: f64,
}

fn main() {
    let results = run_grid(&grids::fig5(), &SweepOptions::from_env()).expect("fig5 sweep");
    let mut rows = Vec::new();

    for workload in catalog::all() {
        let name = workload.name();
        let ideal = sim_metrics(&results, &format!("{name}/ideal"));
        let ideal_cycles = Cycles::new(ideal.total_cycles);
        // Events that serialize: OMS-originated events and AMS proxy events.
        let oms_events = ideal.oms_syscalls
            + ideal.oms_page_faults
            + ideal.oms_timer
            + ideal.oms_other_interrupts;
        let ams_events = ideal.ams_syscalls + ideal.ams_page_faults;

        let mut measured = [0.0f64; 3];
        let mut analytic = [0.0f64; 3];
        for (i, cost) in SignalCost::figure5_points().iter().enumerate() {
            let run = sim_metrics(&results, &format!("{name}/sig{}", cost.cycles().as_u64()));
            measured[i] = (run.total_cycles as f64 / ideal.total_cycles as f64 - 1.0) * 100.0;
            let model = OverheadModel::new(misp_types::CostModel::builder().signal(*cost).build());
            analytic[i] = model.overhead_fraction(oms_events, ams_events, ideal_cycles) * 100.0;
        }

        rows.push(Row {
            workload: name.to_string(),
            measured_500: measured[0],
            measured_1000: measured[1],
            measured_5000: measured[2],
            analytic_500: analytic[0],
            analytic_1000: analytic[1],
            analytic_5000: analytic[2],
        });
    }

    println!("Figure 5 - Sensitivity to Signal Cost (% overhead over ideal zero-cost signaling)");
    println!();
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                format!("{:.3}%", r.measured_500),
                format!("{:.3}%", r.measured_1000),
                format!("{:.3}%", r.measured_5000),
                format!("{:.3}%", r.analytic_5000),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "workload",
                "500 cyc",
                "1000 cyc",
                "5000 cyc",
                "5000 cyc (Eq. 1-3)"
            ],
            &table_rows
        )
    );

    let avg_5000: f64 = rows.iter().map(|r| r.measured_5000).sum::<f64>() / rows.len() as f64;
    let worst = rows
        .iter()
        .max_by(|a, b| a.measured_5000.total_cmp(&b.measured_5000))
        .expect("non-empty");
    println!(
        "5000-cycle signaling costs {avg_5000:.2}% on average and {:.2}% in the worst case ({}) \
         (paper: 0.15% average, 0.65% worst case)",
        worst.measured_5000, worst.workload
    );

    if let Some(path) = write_json("fig5", &rows) {
        println!("\nresults written to {}", path.display());
    }
}
