//! Figure 6 — MISP MP configurations: the machine partitionings evaluated in
//! the multiprocessor study (4×2, 2×4, 1×8 and the uneven 1×4+4), validated
//! structurally and printed from the `fig6` grid's topology records.
//!
//! Regenerate with `cargo run --release -p misp-bench --bin fig6`.

#![forbid(unsafe_code)]

use misp_bench::{format_table, write_json};
use misp_harness::{grids, run_grid, SweepOptions};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    configuration: String,
    description: String,
    processors: u64,
    total_sequencers: u64,
    oms_count: u64,
    ams_count: u64,
    per_processor_ams: Vec<u64>,
}

fn main() {
    let results = run_grid(&grids::fig6(), &SweepOptions::from_env()).expect("fig6 sweep");
    let rows: Vec<Row> = results
        .records
        .iter()
        .map(|record| {
            let topo = record
                .topology
                .as_ref()
                .expect("fig6 records are topologies");
            Row {
                configuration: record.id.clone(),
                description: topo.description.clone(),
                processors: topo.processors,
                total_sequencers: topo.total_sequencers,
                oms_count: topo.oms_count,
                ams_count: topo.ams_count,
                per_processor_ams: topo.per_processor_ams.clone(),
            }
        })
        .collect();

    // Structural invariants the figure depicts: every configuration uses the
    // same eight sequencers, and the OS sees exactly the OMSs.
    for row in &rows {
        assert_eq!(
            row.total_sequencers, 8,
            "{} must use 8 sequencers",
            row.configuration
        );
        assert_eq!(
            row.oms_count + row.ams_count,
            8,
            "{} partitions OMSs and AMSs exactly",
            row.configuration
        );
    }

    println!("Figure 6 - MISP MP Configurations (8 sequencers partitioned into MISP processors)");
    println!();
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.configuration.clone(),
                r.description.clone(),
                r.processors.to_string(),
                r.oms_count.to_string(),
                r.ams_count.to_string(),
                format!("{:?}", r.per_processor_ams),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "config",
                "shape",
                "MISP processors",
                "OS-visible CPUs",
                "AMSs",
                "AMS per processor"
            ],
            &table_rows
        )
    );

    if let Some(path) = write_json("fig6", &rows) {
        println!("results written to {}", path.display());
    }
}
