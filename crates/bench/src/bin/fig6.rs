//! Figure 6 — MISP MP configurations: the machine partitionings evaluated in
//! the multiprocessor study (4×2, 2×4, 1×8 and the uneven 1×4+4), validated
//! structurally and printed.
//!
//! Regenerate with `cargo run --release -p misp-bench --bin fig6`.

use misp_bench::{format_table, write_json};
use misp_core::MispTopology;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    configuration: String,
    description: String,
    processors: usize,
    total_sequencers: usize,
    oms_count: usize,
    ams_count: usize,
    per_processor_ams: Vec<usize>,
}

fn describe(name: &str, topo: &MispTopology) -> Row {
    Row {
        configuration: name.to_string(),
        description: topo.describe(),
        processors: topo.processors().len(),
        total_sequencers: topo.total_sequencers(),
        oms_count: topo.all_oms().len(),
        ams_count: topo.total_ams(),
        per_processor_ams: topo.processors().iter().map(|p| p.ams().len()).collect(),
    }
}

fn main() {
    let configs = vec![
        ("4x2", MispTopology::config_4x2()),
        ("2x4", MispTopology::config_2x4()),
        ("1x8", MispTopology::config_1x8()),
        ("1x4+4", MispTopology::config_uneven(3, 4)),
        ("1x7+1", MispTopology::config_uneven(6, 1)),
        ("1x6+2", MispTopology::config_uneven(5, 2)),
        ("1x5+3", MispTopology::config_uneven(4, 3)),
    ];

    let rows: Vec<Row> = configs.iter().map(|(n, t)| describe(n, t)).collect();

    // Structural invariants the figure depicts: every configuration uses the
    // same eight sequencers, and the OS sees exactly the OMSs.
    for (name, topo) in &configs {
        assert_eq!(topo.total_sequencers(), 8, "{name} must use 8 sequencers");
        assert_eq!(
            topo.all_oms().len() + topo.total_ams(),
            8,
            "{name} partitions OMSs and AMSs exactly"
        );
    }

    println!("Figure 6 - MISP MP Configurations (8 sequencers partitioned into MISP processors)");
    println!();
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.configuration.clone(),
                r.description.clone(),
                r.processors.to_string(),
                r.oms_count.to_string(),
                r.ams_count.to_string(),
                format!("{:?}", r.per_processor_ams),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "config",
                "shape",
                "MISP processors",
                "OS-visible CPUs",
                "AMSs",
                "AMS per processor"
            ],
            &table_rows
        )
    );

    if let Some(path) = write_json("fig6", &rows) {
        println!("results written to {}", path.display());
    }
}
