//! Figure 7 — MISP MP performance: throughput of the shredded RayTracer as
//! single-threaded competitor processes are added to the system, across MISP
//! MP configurations, the SMP baseline and the "ideal" partitioning.
//!
//! Every series is normalized to the unloaded 1×8 configuration, so the
//! figure reads as "what fraction of the machine's dedicated-RayTracer
//! throughput remains at this load".
//!
//! Regenerate with `cargo run --release -p misp-bench --bin fig7`.

use misp_bench::{experiment_config, format_table, write_json};
use misp_core::{MispMachine, MispTopology};
use misp_isa::ProgramLibrary;
use misp_sim::SimConfig;
use misp_smp::SmpMachine;
use misp_types::Cycles;
use misp_workloads::{catalog, competitor};
use serde::Serialize;

/// RayTracer is decomposed into many more shreds than sequencers so the work
/// queue can balance load when some sequencers run slower (the paper's
/// RayTracer is a task-queue renderer).
const RAYTRACER_SHREDS: usize = 64;
/// Competitor processes run long enough to outlast the measured RayTracer.
const COMPETITOR_CYCLES: u64 = 12_000_000_000;
const MAX_LOAD: usize = 4;

fn raytracer_on_misp(topology: &MispTopology, competitors: usize, config: SimConfig) -> Cycles {
    let workload = catalog::by_name("RayTracer").expect("catalog contains RayTracer");
    let mut library = ProgramLibrary::new();
    let scheduler = workload.build(&mut library, RAYTRACER_SHREDS);
    let competitor_programs: Vec<_> = (0..competitors)
        .map(|i| competitor::competitor_program(&mut library, i, COMPETITOR_CYCLES))
        .collect();

    let mut machine = MispMachine::new(topology.clone(), config, library);
    let ray = machine.add_process("RayTracer", Box::new(scheduler), Some(0));
    for proc_idx in 1..topology.processors().len() {
        // The shredded application spans every MISP processor with one OS
        // thread each, except in the uneven configurations where the extra
        // processors are plain single-sequencer CPUs reserved for other work.
        if !topology.processors()[proc_idx].ams().is_empty() {
            machine.add_thread(ray, Some(proc_idx));
        }
    }
    for program in competitor_programs {
        machine.add_process(
            "competitor",
            Box::new(competitor::competitor_runtime(program)),
            None,
        );
    }
    machine.set_measured(vec![ray]);
    machine.run().expect("MISP MP run").total_cycles
}

fn raytracer_on_smp(cores: usize, competitors: usize, config: SimConfig) -> Cycles {
    let workload = catalog::by_name("RayTracer").expect("catalog contains RayTracer");
    let mut library = ProgramLibrary::new();
    let scheduler = workload.build(&mut library, RAYTRACER_SHREDS);
    let competitor_programs: Vec<_> = (0..competitors)
        .map(|i| competitor::competitor_program(&mut library, i, COMPETITOR_CYCLES))
        .collect();

    let mut machine = SmpMachine::new(cores, config, library);
    let ray = machine.add_process("RayTracer", Box::new(scheduler), Some(0));
    for core in 1..cores {
        machine.add_thread(ray, Some(core));
    }
    for program in competitor_programs {
        machine.add_process(
            "competitor",
            Box::new(competitor::competitor_runtime(program)),
            None,
        );
    }
    machine.set_measured(vec![ray]);
    machine.run().expect("SMP run").total_cycles
}

#[derive(Debug, Serialize)]
struct Series {
    configuration: String,
    /// Normalized throughput at load 0, 1, 2, 3, 4.
    speedup_vs_unloaded: Vec<f64>,
}

fn main() {
    let config = experiment_config();
    let baseline = raytracer_on_misp(&MispTopology::config_1x8(), 0, config);
    println!(
        "Figure 7 - MISP MP Performance (RayTracer, normalized to the unloaded 1x8 run: {} cycles)",
        baseline.as_u64()
    );
    println!();

    let mut series = Vec::new();

    // Ideal: at load k the machine is repartitioned so the k competitors each
    // get a dedicated single-sequencer processor.
    let ideal: Vec<f64> = (0..=MAX_LOAD)
        .map(|load| {
            let topo = MispTopology::config_uneven(7 - load, load);
            baseline.as_f64() / raytracer_on_misp(&topo, load, config).as_f64()
        })
        .collect();
    series.push(Series {
        configuration: "ideal".to_string(),
        speedup_vs_unloaded: ideal,
    });

    let smp: Vec<f64> = (0..=MAX_LOAD)
        .map(|load| baseline.as_f64() / raytracer_on_smp(8, load, config).as_f64())
        .collect();
    series.push(Series {
        configuration: "smp".to_string(),
        speedup_vs_unloaded: smp,
    });

    let fixed_configs = vec![
        ("4x2", MispTopology::config_4x2()),
        ("2x4", MispTopology::config_2x4()),
        ("1x8", MispTopology::config_1x8()),
        ("1x7+1", MispTopology::config_uneven(6, 1)),
        ("1x6+2", MispTopology::config_uneven(5, 2)),
        ("1x5+3", MispTopology::config_uneven(4, 3)),
        ("1x4+4", MispTopology::config_uneven(3, 4)),
    ];
    for (name, topo) in fixed_configs {
        let values: Vec<f64> = (0..=MAX_LOAD)
            .map(|load| baseline.as_f64() / raytracer_on_misp(&topo, load, config).as_f64())
            .collect();
        series.push(Series {
            configuration: name.to_string(),
            speedup_vs_unloaded: values,
        });
    }

    let table_rows: Vec<Vec<String>> = series
        .iter()
        .map(|s| {
            let mut row = vec![s.configuration.clone()];
            row.extend(s.speedup_vs_unloaded.iter().map(|v| format!("{v:.3}")));
            row
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["config", "load 0", "load 1", "load 2", "load 3", "load 4"],
            &table_rows
        )
    );
    println!("expected shape (paper): 1x8 degrades nearly linearly; adding MISP processors");
    println!("(4x2, 2x4) improves scaling; the ideal partitioning tracks (8-load)/8; SMP");
    println!("degrades most gracefully because the OS balances threads across all cores.");

    if let Some(path) = write_json("fig7", &series) {
        println!("\nresults written to {}", path.display());
    }
}
