//! Figure 7 — MISP MP performance: throughput of the shredded RayTracer as
//! single-threaded competitor processes are added to the system, across MISP
//! MP configurations, the SMP baseline and the "ideal" partitioning.
//!
//! Every series is normalized to the unloaded 1×8 configuration, so the
//! figure reads as "what fraction of the machine's dedicated-RayTracer
//! throughput remains at this load".  The normalization is exactly the
//! `speedup_vs_baseline` the `fig7` grid's records carry (every point
//! references the `1x8/load0` run).
//!
//! Regenerate with `cargo run --release -p misp-bench --bin fig7`.

#![forbid(unsafe_code)]

use misp_bench::{format_table, sim_metrics, write_json};
use misp_harness::{grids, run_grid, SweepOptions};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Series {
    configuration: String,
    /// Normalized throughput at load 0, 1, 2, 3, 4.
    speedup_vs_unloaded: Vec<f64>,
}

fn main() {
    let results = run_grid(&grids::fig7(), &SweepOptions::from_env()).expect("fig7 sweep");
    let baseline = sim_metrics(&results, "1x8/load0");
    println!(
        "Figure 7 - MISP MP Performance (RayTracer, normalized to the unloaded 1x8 run: {} cycles)",
        baseline.total_cycles
    );
    println!();

    let configurations = [
        "ideal", "smp", "4x2", "2x4", "1x8", "1x7+1", "1x6+2", "1x5+3", "1x4+4",
    ];
    let series: Vec<Series> = configurations
        .iter()
        .map(|config| {
            let values: Vec<f64> = (0..=grids::MAX_LOAD)
                .map(|load| {
                    let point = sim_metrics(&results, &format!("{config}/load{load}"));
                    point.speedup_vs_baseline.unwrap_or_else(|| {
                        assert_eq!(
                            point.total_cycles, baseline.total_cycles,
                            "only the baseline itself lacks a normalization"
                        );
                        1.0
                    })
                })
                .collect();
            Series {
                configuration: (*config).to_string(),
                speedup_vs_unloaded: values,
            }
        })
        .collect();

    let table_rows: Vec<Vec<String>> = series
        .iter()
        .map(|s| {
            let mut row = vec![s.configuration.clone()];
            row.extend(s.speedup_vs_unloaded.iter().map(|v| format!("{v:.3}")));
            row
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["config", "load 0", "load 1", "load 2", "load 3", "load 4"],
            &table_rows
        )
    );
    println!("expected shape (paper): 1x8 degrades nearly linearly; adding MISP processors");
    println!("(4x2, 2x4) improves scaling; the ideal partitioning tracks (8-load)/8; SMP");
    println!("degrades most gracefully because the OS balances threads across all cores.");

    if let Some(path) = write_json("fig7", &series) {
        println!("\nresults written to {}", path.display());
    }
}
