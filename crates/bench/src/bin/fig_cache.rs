//! Cache sensitivity — the locality-variant workloads (streaming, blocked,
//! shared-hot-set) with the cache hierarchy enabled, swept over shared-L2
//! capacity on the MISP uniprocessor and the SMP baseline.
//!
//! This figure has no counterpart in the paper: the paper charges a flat
//! cost per memory touch.  The sweep shows what that flat model hides —
//! capacity misses scaling with L2 size under streaming, near-zero misses
//! under blocking, and the architectural contrast on the shared hot set:
//! one MISP processor resolves its sharing inside the shared L2 while the
//! SMP baseline pays coherence misses across per-core caches.
//!
//! Regenerate with `cargo run --release -p misp-bench --bin fig_cache`.

#![forbid(unsafe_code)]

use misp_bench::{format_table, sim_metrics, write_json};
use misp_harness::{grids, run_grid, SweepOptions};
use misp_workloads::catalog;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    workload: String,
    machine: String,
    l2: String,
    total_cycles: u64,
    l1_hits: u64,
    l2_hits: u64,
    compulsory_misses: u64,
    capacity_misses: u64,
    coherence_misses: u64,
    invalidations: u64,
    slowdown_vs_largest_l2: f64,
}

fn main() {
    let results =
        run_grid(&grids::cache_sensitivity(), &SweepOptions::from_env()).expect("cache sweep");

    let mut rows = Vec::new();
    for workload in catalog::cache_variants() {
        let name = workload.name();
        for machine in ["misp", "smp"] {
            for (l2, _, _) in grids::cache_l2_points() {
                let m = sim_metrics(&results, &format!("{name}/{machine}/{l2}"));
                let cache = m.cache.as_ref().expect("cache grid models the cache");
                rows.push(Row {
                    workload: name.to_string(),
                    machine: machine.to_string(),
                    l2: l2.to_string(),
                    total_cycles: m.total_cycles,
                    l1_hits: cache.l1_hits,
                    l2_hits: cache.l2_hits,
                    compulsory_misses: cache.compulsory_misses,
                    capacity_misses: cache.capacity_misses,
                    coherence_misses: cache.coherence_misses,
                    invalidations: cache.invalidations,
                    // The largest L2 is the group baseline, so the recorded
                    // speedup (≤ 1) inverts into the slowdown smaller L2s
                    // inflict.
                    slowdown_vs_largest_l2: m.speedup_vs_baseline.map_or(1.0, |s| 1.0 / s),
                });
            }
        }
    }

    println!("Cache sensitivity - locality variants x shared-L2 capacity (cache model enabled)");
    println!();
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.machine.clone(),
                r.l2.clone(),
                r.total_cycles.to_string(),
                r.l1_hits.to_string(),
                r.l2_hits.to_string(),
                r.capacity_misses.to_string(),
                r.coherence_misses.to_string(),
                r.invalidations.to_string(),
                format!("{:.4}", r.slowdown_vs_largest_l2),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "workload", "machine", "L2", "cycles", "L1 hits", "L2 hits", "cap miss",
                "coh miss", "invals", "slowdown",
            ],
            &table_rows
        )
    );

    if let Some(path) = write_json("fig_cache", &rows) {
        eprintln!("rows written to {}", path.display());
    }
}
