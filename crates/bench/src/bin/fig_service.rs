//! Service scenarios — open-loop request serving on the MISP uniprocessor
//! and the SMP baseline: latency percentiles and sustained throughput
//! against offered load, arrival-process variants, and pool shapes.
//!
//! This figure has no counterpart in the paper, which measures closed-loop
//! workload runtimes only.  The sweep drives the same machines with a seeded
//! open-loop customer stream (latency is measured from *scheduled* arrival,
//! so a backed-up queue cannot hide service time) and replays the identical
//! stream on every paired run via common random numbers.
//!
//! Regenerate with `cargo run --release -p misp-bench --bin fig_service`.

#![forbid(unsafe_code)]

use misp_bench::{format_table, write_json};
use misp_harness::{grids, run_grid, SweepOptions};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    id: String,
    scenario: String,
    offered_load: u32,
    machine: String,
    admitted: u64,
    completed: u64,
    dropped: u64,
    latency_p50: u64,
    latency_p95: u64,
    latency_p99: u64,
    latency_p999: u64,
    latency_mean: f64,
    max_outstanding: u64,
    throughput_per_gcycle: f64,
    speedup_vs_baseline: Option<f64>,
}

fn main() {
    let results =
        run_grid(&grids::service_load(), &SweepOptions::from_env()).expect("service sweep");

    let mut rows = Vec::new();
    for record in &results.records {
        let sim = record.sim.as_ref().expect("service grid is all-sim");
        let service = sim.service.as_ref().expect("scenario runs carry service");
        rows.push(Row {
            id: record.id.clone(),
            scenario: record.scenario.clone().expect("scenario name recorded"),
            offered_load: record.offered_load.expect("offered load recorded"),
            machine: record.machine.clone().unwrap_or_default(),
            admitted: service.admitted,
            completed: service.completed,
            dropped: service.dropped,
            latency_p50: service.latency_p50,
            latency_p95: service.latency_p95,
            latency_p99: service.latency_p99,
            latency_p999: service.latency_p999,
            latency_mean: service.latency_mean,
            max_outstanding: service.max_outstanding,
            throughput_per_gcycle: service.throughput_per_gcycle,
            speedup_vs_baseline: sim.speedup_vs_baseline,
        });
    }

    println!("Service scenarios - open-loop latency percentiles and throughput");
    println!();
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.id.clone(),
                r.machine.clone(),
                r.admitted.to_string(),
                r.dropped.to_string(),
                r.latency_p50.to_string(),
                r.latency_p95.to_string(),
                r.latency_p99.to_string(),
                r.latency_p999.to_string(),
                format!("{:.0}", r.latency_mean),
                format!("{:.2}", r.throughput_per_gcycle),
                r.speedup_vs_baseline
                    .map_or_else(|| "-".to_string(), |s| format!("{s:.3}")),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "run", "machine", "adm", "drop", "p50", "p95", "p99", "p99.9", "mean", "req/Gcyc",
                "vs base",
            ],
            &table_rows
        )
    );

    if let Some(path) = write_json("fig_service", &rows) {
        eprintln!("rows written to {}", path.display());
    }
}
