//! Table 1 — Serializing events: for each workload, the number of privileged
//! events that serialize the MISP processor, split into OMS-originated
//! (syscalls, page faults, timer, other interrupts) and AMS-originated
//! (syscalls, page faults — i.e. proxy executions), read from the `table1`
//! grid's records.
//!
//! Regenerate with `cargo run --release -p misp-bench --bin table1`.

#![forbid(unsafe_code)]

use misp_bench::{format_table, sim_metrics, write_json};
use misp_harness::{grids, run_grid, SweepOptions};
use misp_workloads::catalog;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    workload: String,
    suite: String,
    oms_syscalls: u64,
    oms_page_faults: u64,
    oms_timer: u64,
    oms_interrupts: u64,
    ams_syscalls: u64,
    ams_page_faults: u64,
    proxy_executions: u64,
    serializations: u64,
}

fn main() {
    let results = run_grid(&grids::table1(), &SweepOptions::from_env()).expect("table1 sweep");
    let mut rows = Vec::new();

    for workload in catalog::all() {
        let name = workload.name();
        let s = sim_metrics(&results, &format!("{name}/misp"));
        rows.push(Row {
            workload: name.to_string(),
            suite: workload.suite().label().to_string(),
            oms_syscalls: s.oms_syscalls,
            oms_page_faults: s.oms_page_faults,
            oms_timer: s.oms_timer,
            oms_interrupts: s.oms_other_interrupts,
            ams_syscalls: s.ams_syscalls,
            ams_page_faults: s.ams_page_faults,
            proxy_executions: s.proxy_executions,
            serializations: s.serializations,
        });
    }

    println!("Table 1 - Serializing Events (MISP, 1 OMS + 7 AMS)");
    println!("(absolute counts are scaled down ~100x vs. the paper's full-length runs;");
    println!(" the per-workload shape - which categories dominate - is the reproduced result)");
    println!();
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.oms_syscalls.to_string(),
                r.oms_page_faults.to_string(),
                r.oms_timer.to_string(),
                r.oms_interrupts.to_string(),
                r.ams_syscalls.to_string(),
                r.ams_page_faults.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "workload",
                "OMS SysCall",
                "OMS PF",
                "OMS Timer",
                "OMS Interrupt",
                "AMS SysCall",
                "AMS PF",
            ],
            &table_rows
        )
    );

    let pf_dominated = rows
        .iter()
        .filter(|r| r.ams_page_faults >= r.ams_syscalls)
        .count();
    println!(
        "{} of {} workloads have page faults as the dominant AMS proxy cause (paper: all but galgel among those with AMS events)",
        pf_dominated,
        rows.len()
    );

    if let Some(path) = write_json("table1", &rows) {
        println!("\nresults written to {}", path.display());
    }
}
