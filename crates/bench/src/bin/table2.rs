//! Table 2 — Applications ported to the MISP architecture.
//!
//! The paper reports human porting effort in days, which cannot be
//! re-measured; what *can* be reproduced is the mechanism that made the effort
//! small: ShredLib's thread-to-shred API mapping.  The `table2` grid analyses
//! the threading-API surface each Table 2 application uses and reports how
//! much of it the compatibility layer translates mechanically (include one
//! header and recompile) versus how much needs structural attention — which
//! is exactly the distinction the paper draws (only the Open Dynamics Engine
//! required restructuring).
//!
//! Regenerate with `cargo run --release -p misp-bench --bin table2`.

#![forbid(unsafe_code)]

use misp_bench::{format_table, write_json};
use misp_harness::{grids, run_grid, SweepOptions};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    application: String,
    description: String,
    api_calls_analysed: u64,
    mechanical: u64,
    structural: u64,
    unmapped: u64,
    mechanical_percent: f64,
    paper_effort_days: f64,
    paper_structural_changes: bool,
}

fn main() {
    let results = run_grid(&grids::table2(), &SweepOptions::from_env()).expect("table2 sweep");
    let rows: Vec<Row> = results
        .records
        .iter()
        .map(|record| {
            let port = record.port.as_ref().expect("table2 records are analyses");
            Row {
                application: record.id.clone(),
                description: port.description.clone(),
                api_calls_analysed: port.api_calls,
                mechanical: port.mechanical,
                structural: port.structural,
                unmapped: port.unmapped,
                mechanical_percent: port.mechanical_percent,
                paper_effort_days: port.paper_effort_days,
                paper_structural_changes: port.paper_structural_changes,
            }
        })
        .collect();

    println!("Table 2 - Applications Ported to the MISP Architecture");
    println!("(porting-days cannot be re-measured; the reproduced quantity is the coverage of");
    println!(" each application's threading-API surface by ShredLib's thread-to-shred mapping)");
    println!();
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.application.clone(),
                r.api_calls_analysed.to_string(),
                r.mechanical.to_string(),
                r.structural.to_string(),
                format!("{:.0}%", r.mechanical_percent),
                format!("{}", r.paper_effort_days),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "application",
                "API calls",
                "mechanical",
                "needs attention",
                "mechanical %",
                "paper days"
            ],
            &table_rows
        )
    );

    // The correlation the paper's Table 2 demonstrates: applications whose API
    // surface maps mechanically ported in days or less; the one structural
    // port (Open Dynamics Engine) is the one whose API surface includes calls
    // the mapping flags as needing attention.
    let flagged: Vec<&Row> = rows.iter().filter(|r| r.structural > 0).collect();
    println!(
        "{} of {} applications have API uses flagged as non-mechanical; the paper reports \
         structural changes for exactly one application (Open Dynamics Engine).",
        flagged.len(),
        rows.len()
    );

    if let Some(path) = write_json("table2", &rows) {
        println!("\nresults written to {}", path.display());
    }
}
