//! Table 2 — Applications ported to the MISP architecture.
//!
//! The paper reports human porting effort in days, which cannot be
//! re-measured; what *can* be reproduced is the mechanism that made the effort
//! small: ShredLib's thread-to-shred API mapping.  For each Table 2
//! application this harness analyses the threading-API surface the application
//! uses and reports how much of it the compatibility layer translates
//! mechanically (include one header and recompile) versus how much needs
//! structural attention — which is exactly the distinction the paper draws
//! (only the Open Dynamics Engine required restructuring).
//!
//! Regenerate with `cargo run --release -p misp-bench --bin table2`.

use misp_bench::{format_table, write_json};
use misp_workloads::catalog;
use serde::Serialize;
use shredlib::compat;

#[derive(Debug, Serialize)]
struct Row {
    application: String,
    description: String,
    api_calls_analysed: usize,
    mechanical: usize,
    structural: usize,
    unmapped: usize,
    mechanical_percent: f64,
    paper_effort_days: f64,
    paper_structural_changes: bool,
}

fn main() {
    let mut rows = Vec::new();
    for app in catalog::table2_applications() {
        let report = compat::coverage(app.functions.iter().copied());
        rows.push(Row {
            application: app.name.to_string(),
            description: app.description.to_string(),
            api_calls_analysed: report.total(),
            mechanical: report.mechanical.len(),
            structural: report.structural.len(),
            unmapped: report.unmapped.len(),
            mechanical_percent: report.mechanical_fraction() * 100.0,
            paper_effort_days: app.paper_days,
            paper_structural_changes: app.structural_changes,
        });
    }

    println!("Table 2 - Applications Ported to the MISP Architecture");
    println!("(porting-days cannot be re-measured; the reproduced quantity is the coverage of");
    println!(" each application's threading-API surface by ShredLib's thread-to-shred mapping)");
    println!();
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.application.clone(),
                r.api_calls_analysed.to_string(),
                r.mechanical.to_string(),
                r.structural.to_string(),
                format!("{:.0}%", r.mechanical_percent),
                format!("{}", r.paper_effort_days),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "application",
                "API calls",
                "mechanical",
                "needs attention",
                "mechanical %",
                "paper days"
            ],
            &table_rows
        )
    );

    // The correlation the paper's Table 2 demonstrates: applications whose API
    // surface maps mechanically ported in days or less; the one structural
    // port (Open Dynamics Engine) is the one whose API surface includes calls
    // the mapping flags as needing attention.
    let flagged: Vec<&Row> = rows.iter().filter(|r| r.structural > 0).collect();
    println!(
        "{} of {} applications have API uses flagged as non-mechanical; the paper reports \
         structural changes for exactly one application (Open Dynamics Engine).",
        flagged.len(),
        rows.len()
    );

    if let Some(path) = write_json("table2", &rows) {
        println!("\nresults written to {}", path.display());
    }
}
