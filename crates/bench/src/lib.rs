//! Shared infrastructure for the experiment formatter binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the MISP
//! paper (see DESIGN.md's experiment index).  Since the sweep harness took
//! over all run orchestration, a binary is just a grid declaration (from
//! [`misp_harness::grids`]) plus a formatter; this library provides the
//! formatting pieces — text tables and JSON result emission into the
//! repository's `results/` directory — and re-exports the harness's shared
//! experiment configuration so downstream code keeps a single import path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;
use std::path::PathBuf;

pub use misp_harness::grids::{SEQUENCERS, WORKERS};
pub use misp_harness::{config_with_signal, experiment_config};

/// Formats a text table with a header row, column alignment and a separator.
#[must_use]
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:<width$}", h, width = widths[i]))
        .collect();
    out.push_str(&header_line.join("  "));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
    }
    out
}

/// Writes `value` as pretty JSON to `results/<name>.json` (relative to the
/// workspace root if run from there, otherwise the current directory) and
/// returns the path written.  Failures are reported but not fatal — the
/// textual output on stdout is the primary artifact.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> Option<PathBuf> {
    let dir = PathBuf::from("results");
    if std::fs::create_dir_all(&dir).is_err() {
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => match std::fs::write(&path, json) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: could not write {}: {e}", path.display());
                None
            }
        },
        Err(e) => {
            eprintln!("warning: could not serialize {name}: {e}");
            None
        }
    }
}

/// Fetches the simulation metrics of grid point `id`, panicking with a
/// readable message when the record is missing — formatter binaries pair
/// records by id, so a miss is a bug in the grid or the formatter.
#[must_use]
pub fn sim_metrics<'a>(
    results: &'a misp_harness::SweepResults,
    id: &str,
) -> &'a misp_harness::SimMetrics {
    results
        .sim(id)
        .unwrap_or_else(|| panic!("grid {} has no sim record {id:?}", results.grid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use misp_types::{Cycles, SignalCost};

    #[test]
    fn experiment_config_uses_paper_signal_estimate() {
        let c = experiment_config();
        assert_eq!(c.costs.signal_cycles(), Cycles::new(5_000));
        let ideal = config_with_signal(SignalCost::Ideal);
        assert_eq!(ideal.costs.signal_cycles(), Cycles::ZERO);
        assert_eq!(ideal.timer, c.timer);
    }

    #[test]
    fn table_formatting_aligns_columns() {
        let t = format_table(
            &["name", "value"],
            &[
                vec!["a".to_string(), "1".to_string()],
                vec!["longer-name".to_string(), "2.5".to_string()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a "));
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    #[should_panic(expected = "has no sim record")]
    fn sim_metrics_panics_on_missing_id() {
        let results = misp_harness::run_grid(
            &misp_harness::grids::fig6(),
            &misp_harness::SweepOptions {
                threads: 1,
                verify: misp_harness::VerifyMode::Off,
            },
        )
        .unwrap();
        let _ = sim_metrics(&results, "nope");
    }
}
