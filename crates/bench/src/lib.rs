//! Shared infrastructure for the experiment harness binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the MISP
//! paper (see DESIGN.md's experiment index).  This library provides the
//! common pieces: the experiment configuration, text-table formatting, and
//! JSON result emission into the repository's `results/` directory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use misp_os::TimerConfig;
use misp_sim::SimConfig;
use misp_types::{CostModel, Cycles, SignalCost};
use serde::Serialize;
use std::path::PathBuf;

/// Number of hardware contexts in the paper's evaluation machine.
pub const SEQUENCERS: usize = 8;

/// Number of worker shreds used by the Figure 4 / Table 1 / Figure 5 runs
/// (one per hardware context, as the OpenMP runtime would configure).
pub const WORKERS: usize = 8;

/// The simulation configuration shared by all experiments: the paper's
/// 5000-cycle microcode signal estimate and a 1 ms (at 3 GHz) timer tick.
#[must_use]
pub fn experiment_config() -> SimConfig {
    SimConfig {
        costs: CostModel::default(),
        timer: TimerConfig::new(Cycles::new(3_000_000), 10),
        ..SimConfig::default()
    }
}

/// The experiment configuration with a specific signal cost (Figure 5 sweep).
#[must_use]
pub fn config_with_signal(signal: SignalCost) -> SimConfig {
    let base = experiment_config();
    base.with_costs(CostModel::builder().signal(signal).build())
}

/// Formats a text table with a header row, column alignment and a separator.
#[must_use]
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:<width$}", h, width = widths[i]))
        .collect();
    out.push_str(&header_line.join("  "));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
    }
    out
}

/// Writes `value` as pretty JSON to `results/<name>.json` (relative to the
/// workspace root if run from there, otherwise the current directory) and
/// returns the path written.  Failures are reported but not fatal — the
/// textual output on stdout is the primary artifact.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> Option<PathBuf> {
    let dir = PathBuf::from("results");
    if std::fs::create_dir_all(&dir).is_err() {
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => match std::fs::write(&path, json) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: could not write {}: {e}", path.display());
                None
            }
        },
        Err(e) => {
            eprintln!("warning: could not serialize {name}: {e}");
            None
        }
    }
}

/// Computes a speedup ratio, guarding against a zero denominator.
#[must_use]
pub fn speedup(reference: Cycles, measured: Cycles) -> f64 {
    if measured.is_zero() {
        0.0
    } else {
        reference.as_f64() / measured.as_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_config_uses_paper_signal_estimate() {
        let c = experiment_config();
        assert_eq!(c.costs.signal_cycles(), Cycles::new(5_000));
        let ideal = config_with_signal(SignalCost::Ideal);
        assert_eq!(ideal.costs.signal_cycles(), Cycles::ZERO);
        assert_eq!(ideal.timer, c.timer);
    }

    #[test]
    fn table_formatting_aligns_columns() {
        let t = format_table(
            &["name", "value"],
            &[
                vec!["a".to_string(), "1".to_string()],
                vec!["longer-name".to_string(), "2.5".to_string()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a "));
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    fn speedup_handles_zero() {
        assert_eq!(speedup(Cycles::new(100), Cycles::ZERO), 0.0);
        assert!((speedup(Cycles::new(100), Cycles::new(50)) - 2.0).abs() < 1e-12);
    }
}
