//! Cache-hierarchy configuration.

use misp_types::CacheCostModel;
use serde::{Deserialize, Serialize};

/// The geometry of one set-associative cache level: `sets × ways` lines.
///
/// The line size is shared by both levels and lives in [`CacheConfig`], so a
/// geometry is fully described by its set and way counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Number of sets.
    pub sets: u32,
    /// Associativity (lines per set).
    pub ways: u32,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    #[must_use]
    pub fn new(sets: u32, ways: u32) -> Self {
        assert!(sets > 0 && ways > 0, "cache geometry must be non-empty");
        CacheGeometry { sets, ways }
    }

    /// Total number of lines (`sets × ways`).
    #[must_use]
    pub fn lines(&self) -> u64 {
        u64::from(self.sets) * u64::from(self.ways)
    }

    /// Capacity in bytes for the given line size.
    #[must_use]
    pub fn capacity_bytes(&self, line_size: u64) -> u64 {
        self.lines() * line_size
    }
}

/// Configuration of the whole cache hierarchy.
///
/// The default configuration is **disabled**: [`CacheConfig::disabled`]
/// models the paper's flat memory cost and leaves every committed golden
/// byte-identical.  Experiments opt in with [`CacheConfig::enabled_default`]
/// and then vary the geometry, e.g. for an L2-capacity sweep.
///
/// Workloads in this reproduction touch memory at page granularity, so the
/// default line size equals the 4 KiB page: one line per touched page, which
/// makes capacities directly comparable to working-set page counts.
///
/// # Examples
///
/// ```
/// use misp_cache::CacheConfig;
///
/// assert!(!CacheConfig::default().enabled);
/// let small_l2 = CacheConfig::enabled_default().with_l2(16, 2);
/// assert_eq!(small_l2.l2.lines(), 32);
/// assert_eq!(small_l2.label(), "l1:64KiB/2w,l2:128KiB/2w");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Whether the hierarchy is modeled at all.  When `false` every access
    /// bypasses the caches and charges only the engine's flat access cost.
    pub enabled: bool,
    /// Cache-line size in bytes, shared by both levels.
    pub line_size: u64,
    /// Geometry of each sequencer's private L1.
    pub l1: CacheGeometry,
    /// Geometry of each cluster's shared L2.
    pub l2: CacheGeometry,
    /// Per-level hit/miss latencies and the coherence-invalidation cost.
    pub costs: CacheCostModel,
}

impl CacheConfig {
    /// The disabled configuration (the default): the flat-cost memory model
    /// of the paper's figures.
    #[must_use]
    pub fn disabled() -> Self {
        CacheConfig {
            enabled: false,
            ..CacheConfig::enabled_default()
        }
    }

    /// The enabled reference configuration: 4 KiB lines, a 64 KiB 2-way L1
    /// per sequencer and a 2 MiB 8-way shared L2 per cluster.
    #[must_use]
    pub fn enabled_default() -> Self {
        CacheConfig {
            enabled: true,
            line_size: 4096,
            l1: CacheGeometry::new(8, 2),
            l2: CacheGeometry::new(64, 8),
            costs: CacheCostModel::default(),
        }
    }

    /// Returns the configuration with a different L1 geometry.
    #[must_use]
    pub fn with_l1(mut self, sets: u32, ways: u32) -> Self {
        self.l1 = CacheGeometry::new(sets, ways);
        self
    }

    /// Returns the configuration with a different L2 geometry.
    #[must_use]
    pub fn with_l2(mut self, sets: u32, ways: u32) -> Self {
        self.l2 = CacheGeometry::new(sets, ways);
        self
    }

    /// The line index of a byte address.
    #[must_use]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.line_size.max(1)
    }

    /// A short human-readable label of the geometry, recorded in sweep
    /// results metadata (e.g. `"l1:64KiB/2w,l2:2MiB/8w"`).
    #[must_use]
    pub fn label(&self) -> String {
        fn size(bytes: u64) -> String {
            if bytes >= 1024 * 1024 && bytes.is_multiple_of(1024 * 1024) {
                format!("{}MiB", bytes / (1024 * 1024))
            } else if bytes >= 1024 && bytes.is_multiple_of(1024) {
                format!("{}KiB", bytes / 1024)
            } else {
                format!("{bytes}B")
            }
        }
        format!(
            "l1:{}/{}w,l2:{}/{}w",
            size(self.l1.capacity_bytes(self.line_size)),
            self.l1.ways,
            size(self.l2.capacity_bytes(self.line_size)),
            self.l2.ways
        )
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        let c = CacheConfig::default();
        assert!(!c.enabled);
        assert_eq!(c, CacheConfig::disabled());
        assert!(CacheConfig::enabled_default().enabled);
    }

    #[test]
    fn geometry_arithmetic() {
        let g = CacheGeometry::new(64, 8);
        assert_eq!(g.lines(), 512);
        assert_eq!(g.capacity_bytes(4096), 2 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_ways_panics() {
        let _ = CacheGeometry::new(4, 0);
    }

    #[test]
    fn line_of_uses_line_size() {
        let c = CacheConfig::enabled_default();
        assert_eq!(c.line_of(0), 0);
        assert_eq!(c.line_of(4095), 0);
        assert_eq!(c.line_of(4096), 1);
    }

    #[test]
    fn labels_render_sizes() {
        let c = CacheConfig::enabled_default();
        assert_eq!(c.label(), "l1:64KiB/2w,l2:2MiB/8w");
        assert_eq!(c.with_l2(16, 2).label(), "l1:64KiB/2w,l2:128KiB/2w");
    }

    #[test]
    fn serde_round_trip() {
        let c = CacheConfig::enabled_default().with_l2(32, 4);
        let json = serde_json::to_string(&c).unwrap();
        let back: CacheConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
