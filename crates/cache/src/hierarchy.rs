//! The two-level coherent hierarchy: private L1s, clustered shared L2s, and
//! MESI-lite coherence between them.

use crate::{CacheConfig, MesiState, SetAssocCache};
use misp_types::{Cycles, SequencerId, VirtAddr};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Where in the hierarchy an access resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// The sequencer's private L1 held the line.
    L1,
    /// The cluster's shared L2 held the line.
    L2,
    /// Neither level held the line; the access went to memory.
    Memory,
}

/// Why an access that went all the way to memory missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissClass {
    /// First access to the line anywhere in the machine.
    Compulsory,
    /// The line had been evicted (or never fetched by this sequencer) for
    /// capacity/conflict reasons.
    Capacity,
    /// The line was invalidated out of this sequencer's L1 by a remote store.
    Coherence,
}

/// The cache-visible result of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheOutcome {
    /// The level that serviced the access.
    pub level: HitLevel,
    /// Miss classification; `Some` exactly when `level` is
    /// [`HitLevel::Memory`].
    pub miss_class: Option<MissClass>,
    /// Remote L1 lines this access invalidated (stores only).
    pub invalidations: u64,
    /// The latency to charge for the access, from
    /// [`misp_types::CacheCostModel`].
    pub latency: Cycles,
}

/// Hit/miss/coherence counters of one sequencer's view of the hierarchy.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses serviced by the private L1.
    pub l1_hits: u64,
    /// L1 misses serviced by the cluster's shared L2.
    pub l2_hits: u64,
    /// Memory accesses caused by first-ever touches of a line.
    pub compulsory_misses: u64,
    /// Memory accesses caused by capacity/conflict evictions.
    pub capacity_misses: u64,
    /// Memory accesses caused by remote-store invalidations.
    pub coherence_misses: u64,
    /// Lines invalidated out of this sequencer's L1 by remote stores.
    pub invalidations: u64,
    /// Full L1 flushes (context switches, proxy-execution episodes).
    pub flushes: u64,
}

impl CacheStats {
    /// Total memory-level misses across all classes.
    #[must_use]
    pub fn total_misses(&self) -> u64 {
        self.compulsory_misses + self.capacity_misses + self.coherence_misses
    }

    /// Total accesses observed (`hits + misses` at every level).
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.total_misses()
    }

    /// Memory-level miss rate in `[0, 1]`; zero when nothing was accessed.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.total_misses() as f64 / total as f64
        }
    }

    /// Accumulates `other` into `self` (used for machine-wide aggregation).
    pub fn merge(&mut self, other: &CacheStats) {
        self.l1_hits += other.l1_hits;
        self.l2_hits += other.l2_hits;
        self.compulsory_misses += other.compulsory_misses;
        self.capacity_misses += other.capacity_misses;
        self.coherence_misses += other.coherence_misses;
        self.invalidations += other.invalidations;
        self.flushes += other.flushes;
    }
}

/// The machine's cache hierarchy: one private L1 per sequencer, one shared L2
/// per cluster, and MESI-lite coherence between the L1s.
///
/// A *cluster* is the set of sequencers sharing one L2 — a MISP processor on
/// the MISP machine, a single core on the SMP baseline.  The mapping is fixed
/// at construction from `clusters[sequencer] = cluster index`.
///
/// Coherence is maintained by snooping every L1 on demand rather than through
/// a directory, which is exact and cheap at the machine sizes the paper
/// evaluates (eight sequencers).  All bookkeeping uses ordered containers, so
/// the hierarchy is strictly deterministic.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    config: CacheConfig,
    clusters: Vec<usize>,
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    /// Lines ever fetched anywhere, for compulsory-miss classification.
    touched: BTreeSet<u64>,
    /// Per-sequencer lines lost to remote stores, for coherence-miss
    /// classification.
    invalidated: Vec<BTreeSet<u64>>,
    stats: Vec<CacheStats>,
}

impl CacheHierarchy {
    /// Creates the hierarchy for `clusters.len()` sequencers, where
    /// `clusters[i]` names the L2 cluster of sequencer `i`.  Cluster indices
    /// must be dense (`0..=max`).
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is empty.
    #[must_use]
    pub fn new(config: CacheConfig, clusters: &[usize]) -> Self {
        assert!(!clusters.is_empty(), "a hierarchy needs sequencers");
        let l2_count = clusters.iter().max().copied().unwrap_or(0) + 1;
        CacheHierarchy {
            config,
            clusters: clusters.to_vec(),
            l1: (0..clusters.len())
                .map(|_| SetAssocCache::new(config.l1))
                .collect(),
            l2: (0..l2_count)
                .map(|_| SetAssocCache::new(config.l2))
                .collect(),
            touched: BTreeSet::new(),
            invalidated: vec![BTreeSet::new(); clusters.len()],
            stats: vec![CacheStats::default(); clusters.len()],
        }
    }

    /// The configuration the hierarchy was built from.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The sequencer-to-cluster mapping.
    #[must_use]
    pub fn clusters(&self) -> &[usize] {
        &self.clusters
    }

    /// The tag a `(space, addr)` pair caches under: the address-space id
    /// packed above the line index, so identical virtual addresses in
    /// different address spaces never alias (the model's stand-in for
    /// physical tagging).
    ///
    /// # Panics
    ///
    /// Panics if `addr` exceeds the model's 2^56-byte per-space limit or
    /// `space` exceeds 2^20 — both far beyond anything the simulator builds.
    fn line_key(&self, space: u32, addr: VirtAddr) -> u64 {
        let line = self.config.line_of(addr.as_u64());
        assert!(
            line < 1 << 44,
            "virtual address beyond the cache model's per-space range"
        );
        assert!(space < 1 << 20, "address-space id beyond the cache model");
        (u64::from(space) << 44) | line
    }

    /// Performs one access by `seq` at `addr` within address space `space`
    /// (the owning process; lines are tagged with it, so equal virtual
    /// addresses in different spaces never alias).  `store` selects a write.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range for the configured sequencer count.
    pub fn access(
        &mut self,
        seq: SequencerId,
        space: u32,
        addr: VirtAddr,
        store: bool,
    ) -> CacheOutcome {
        let idx = seq.as_usize();
        let cluster = self.clusters[idx];
        let line = self.line_key(space, addr);
        let costs = self.config.costs;

        // L1 hit: loads keep the line's state, stores may need an upgrade.
        if let Some(state) = self.l1[idx].lookup(line) {
            let mut invalidations = 0;
            let mut latency = costs.l1_hit;
            if store {
                if state == MesiState::Shared {
                    let (l1_invalidations, purged_any) = self.invalidate_others(idx, cluster, line);
                    invalidations = l1_invalidations;
                    if purged_any {
                        latency += costs.invalidation;
                    }
                }
                self.l1[idx].set_state(line, MesiState::Modified);
            }
            self.stats[idx].l1_hits += 1;
            return CacheOutcome {
                level: HitLevel::L1,
                miss_class: None,
                invalidations,
                latency,
            };
        }

        // L1 miss: classify before the fill updates the books.
        let class = if !self.touched.contains(&line) {
            MissClass::Compulsory
        } else if self.invalidated[idx].contains(&line) {
            MissClass::Coherence
        } else {
            MissClass::Capacity
        };
        self.touched.insert(line);
        self.invalidated[idx].remove(&line);

        let l2_hit = self.l2[cluster].lookup(line).is_some();

        // Coherence actions and the L1 fill state.
        let mut invalidations = 0;
        let mut latency_extra = Cycles::ZERO;
        let fill_state = if store {
            let (l1_invalidations, purged_any) = self.invalidate_others(idx, cluster, line);
            invalidations = l1_invalidations;
            if purged_any {
                latency_extra = costs.invalidation;
            }
            MesiState::Modified
        } else if self.downgrade_remote_holders(idx, cluster, line) {
            MesiState::Shared
        } else {
            MesiState::Exclusive
        };

        if !l2_hit {
            // The L2 tracks presence only; per-line MESI lives in the L1s.
            self.l2[cluster].insert(line, MesiState::Shared);
        }
        self.l1[idx].insert(line, fill_state);

        let stats = &mut self.stats[idx];
        if l2_hit {
            stats.l2_hits += 1;
            CacheOutcome {
                level: HitLevel::L2,
                miss_class: None,
                invalidations,
                latency: costs.l2_hit + latency_extra,
            }
        } else {
            match class {
                MissClass::Compulsory => stats.compulsory_misses += 1,
                MissClass::Capacity => stats.capacity_misses += 1,
                MissClass::Coherence => stats.coherence_misses += 1,
            }
            CacheOutcome {
                level: HitLevel::Memory,
                miss_class: Some(class),
                invalidations,
                latency: costs.memory + latency_extra,
            }
        }
    }

    /// Invalidates `line` in every L1 except `me` and in every L2 except
    /// `my_cluster`'s, marking the displaced L1 holders for coherence-miss
    /// classification.  Returns the number of L1 lines invalidated and
    /// whether *any* remote copy (L1 or L2) was purged — a store must pay
    /// the invalidation round even when the only surviving copy is a
    /// lingering remote-cluster L2 line.
    fn invalidate_others(&mut self, me: usize, my_cluster: usize, line: u64) -> (u64, bool) {
        let mut count = 0;
        let mut purged_any = false;
        for other in 0..self.l1.len() {
            if other == me {
                continue;
            }
            if self.l1[other].invalidate(line).is_some() {
                count += 1;
                purged_any = true;
                self.invalidated[other].insert(line);
                self.stats[other].invalidations += 1;
            }
        }
        for (c, l2) in self.l2.iter_mut().enumerate() {
            if c != my_cluster && l2.invalidate(line).is_some() {
                purged_any = true;
            }
        }
        (count, purged_any)
    }

    /// Downgrades any remote `Modified`/`Exclusive` L1 holder of `line` to
    /// `Shared`; returns `true` if any remote L1 *or remote cluster's L2*
    /// holds the line.  The L2 check matters for exclusivity: a line filled
    /// `Exclusive` must have no copy anywhere else in the machine, so that a
    /// later store hitting it in `Exclusive`/`Modified` state can skip the
    /// invalidation round without leaving a stale copy behind.
    fn downgrade_remote_holders(&mut self, me: usize, my_cluster: usize, line: u64) -> bool {
        let mut held = false;
        for other in 0..self.l1.len() {
            if other == me {
                continue;
            }
            if self.l1[other].peek(line).is_some() {
                held = true;
                self.l1[other].set_state(line, MesiState::Shared);
            }
        }
        for (c, l2) in self.l2.iter().enumerate() {
            if c != my_cluster && l2.peek(line).is_some() {
                held = true;
            }
        }
        held
    }

    /// Flushes `seq`'s private L1 (a context switch or proxy-execution
    /// episode displacing its contents).  The shared L2 is left intact.
    pub fn flush_l1(&mut self, seq: SequencerId) {
        let idx = seq.as_usize();
        self.l1[idx].clear();
        self.stats[idx].flushes += 1;
    }

    /// The coherence state of `addr`'s line (within address space `space`)
    /// in `seq`'s L1, without touching LRU order or statistics.
    #[must_use]
    pub fn probe(&self, seq: SequencerId, space: u32, addr: VirtAddr) -> Option<MesiState> {
        self.l1[seq.as_usize()].peek(self.line_key(space, addr))
    }

    /// The statistics of `seq`, if in range.
    #[must_use]
    pub fn stats(&self, seq: SequencerId) -> Option<CacheStats> {
        self.stats.get(seq.as_usize()).copied()
    }

    /// Number of sequencers (L1s) in the hierarchy.
    #[must_use]
    pub fn sequencer_count(&self) -> usize {
        self.l1.len()
    }

    /// Asserts the MESI-lite invariants over every line currently cached in
    /// any L1: a `Modified` or `Exclusive` line has exactly one holder
    /// machine-wide, and no set holds more lines than its associativity.
    ///
    /// # Panics
    ///
    /// Panics if an invariant is violated — used by the property-test suite.
    pub fn assert_coherence_invariants(&self) {
        let mut lines: BTreeSet<u64> = BTreeSet::new();
        for l1 in &self.l1 {
            assert!(
                l1.len() <= l1.geometry().lines() as usize,
                "L1 holds more lines than its capacity"
            );
            lines.extend(l1.lines().map(|(line, _)| line));
        }
        for line in lines {
            let holders: Vec<MesiState> = self.l1.iter().filter_map(|l1| l1.peek(line)).collect();
            let owners = holders
                .iter()
                .filter(|s| matches!(s, MesiState::Modified | MesiState::Exclusive))
                .count();
            if owners > 0 {
                assert_eq!(
                    holders.len(),
                    1,
                    "line {line}: an owned (M/E) line must have exactly one holder, \
                     found states {holders:?}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(i: u32) -> SequencerId {
        SequencerId::new(i)
    }

    fn addr(page: u64) -> VirtAddr {
        VirtAddr::new(page * 4096)
    }

    /// Two clusters of two sequencers each (two 1x2 MISP processors).
    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(CacheConfig::enabled_default(), &[0, 0, 1, 1])
    }

    #[test]
    fn first_touch_is_compulsory_then_l1_hits() {
        let mut h = hierarchy();
        let o = h.access(seq(0), 0, addr(1), false);
        assert_eq!(o.level, HitLevel::Memory);
        assert_eq!(o.miss_class, Some(MissClass::Compulsory));
        assert_eq!(o.latency, h.config().costs.memory);
        let o = h.access(seq(0), 0, addr(1), false);
        assert_eq!(o.level, HitLevel::L1);
        assert_eq!(o.latency, h.config().costs.l1_hit);
        assert_eq!(h.stats(seq(0)).unwrap().l1_hits, 1);
        assert_eq!(h.stats(seq(0)).unwrap().compulsory_misses, 1);
    }

    #[test]
    fn cluster_mates_share_the_l2() {
        let mut h = hierarchy();
        h.access(seq(0), 0, addr(1), false);
        let o = h.access(seq(1), 0, addr(1), false);
        assert_eq!(o.level, HitLevel::L2, "same cluster: shared-L2 hit");
        let o = h.access(seq(2), 0, addr(1), false);
        assert_eq!(o.level, HitLevel::Memory, "other cluster: memory");
        assert_eq!(o.miss_class, Some(MissClass::Capacity));
    }

    #[test]
    fn load_sharing_downgrades_exclusive_to_shared() {
        let mut h = hierarchy();
        h.access(seq(0), 0, addr(1), false);
        assert_eq!(h.probe(seq(0), 0, addr(1)), Some(MesiState::Exclusive));
        h.access(seq(1), 0, addr(1), false);
        assert_eq!(h.probe(seq(0), 0, addr(1)), Some(MesiState::Shared));
        assert_eq!(h.probe(seq(1), 0, addr(1)), Some(MesiState::Shared));
        h.assert_coherence_invariants();
    }

    #[test]
    fn store_invalidates_remote_holders() {
        let mut h = hierarchy();
        h.access(seq(0), 0, addr(1), false);
        h.access(seq(2), 0, addr(1), false);
        let o = h.access(seq(1), 0, addr(1), true);
        assert_eq!(o.invalidations, 2, "both remote L1 holders invalidated");
        assert_eq!(h.probe(seq(1), 0, addr(1)), Some(MesiState::Modified));
        assert_eq!(h.probe(seq(0), 0, addr(1)), None);
        assert_eq!(h.probe(seq(2), 0, addr(1)), None);
        assert_eq!(h.stats(seq(0)).unwrap().invalidations, 1);
        h.assert_coherence_invariants();

        // The displaced holder in the *other* cluster re-misses to memory
        // with a coherence classification (its L2 copy was invalidated too).
        let o = h.access(seq(2), 0, addr(1), false);
        assert_eq!(o.level, HitLevel::Memory);
        assert_eq!(o.miss_class, Some(MissClass::Coherence));
        // The displaced holder in the *same* cluster finds the line in the
        // shared L2 the storing sequencer kept warm.
        let o = h.access(seq(0), 0, addr(1), false);
        assert_eq!(o.level, HitLevel::L2);
    }

    #[test]
    fn store_upgrade_charges_invalidation_latency() {
        let mut h = hierarchy();
        h.access(seq(0), 0, addr(1), false);
        h.access(seq(1), 0, addr(1), false); // both Shared now
        let o = h.access(seq(0), 0, addr(1), true);
        assert_eq!(o.level, HitLevel::L1);
        assert_eq!(o.invalidations, 1);
        assert_eq!(
            o.latency,
            h.config().costs.l1_hit + h.config().costs.invalidation
        );
        assert_eq!(h.probe(seq(0), 0, addr(1)), Some(MesiState::Modified));
        h.assert_coherence_invariants();
    }

    #[test]
    fn capacity_evictions_reclassify_on_return() {
        // One-set, one-way L1: every new line evicts the previous one.
        let config = CacheConfig::enabled_default().with_l1(1, 1);
        let mut h = CacheHierarchy::new(config, &[0]);
        h.access(seq(0), 0, addr(1), false);
        h.access(seq(0), 0, addr(2), false); // evicts line 1 from L1
        let o = h.access(seq(0), 0, addr(1), false);
        assert_eq!(o.level, HitLevel::L2, "line 1 is still in the shared L2");
        assert_eq!(h.stats(seq(0)).unwrap().l2_hits, 1);
    }

    #[test]
    fn flush_counts_and_empties_the_l1() {
        let mut h = hierarchy();
        h.access(seq(0), 0, addr(1), false);
        h.flush_l1(seq(0));
        assert_eq!(h.probe(seq(0), 0, addr(1)), None);
        assert_eq!(h.stats(seq(0)).unwrap().flushes, 1);
        // Post-flush access: the cluster L2 still holds the line.
        let o = h.access(seq(0), 0, addr(1), false);
        assert_eq!(o.level, HitLevel::L2);
    }

    #[test]
    fn stats_conserve_accesses() {
        let mut h = hierarchy();
        let mut per_seq = [0u64; 4];
        for i in 0..200u64 {
            let s = (i % 4) as u32;
            per_seq[s as usize] += 1;
            h.access(seq(s), 0, addr(i % 23), i % 5 == 0);
        }
        for (i, expected) in per_seq.iter().enumerate() {
            let stats = h.stats(seq(i as u32)).unwrap();
            assert_eq!(stats.accesses(), *expected, "sequencer {i}");
        }
        h.assert_coherence_invariants();
    }

    #[test]
    fn a_lingering_remote_l2_copy_blocks_exclusive_fills() {
        // Regression: seq 1 (cluster 1) fetches line A and then evicts it
        // from its one-line L1 — cluster 1's L2 still holds A.  Sequencer 0
        // (cluster 0) must then fill A *Shared*, so that its store takes the
        // upgrade path and purges cluster 1's L2 copy; otherwise seq 1 would
        // later take a stale L2 hit on a line modified elsewhere.
        let config = CacheConfig::enabled_default().with_l1(1, 1);
        let mut h = CacheHierarchy::new(config, &[0, 1]);
        h.access(seq(1), 0, addr(1), false);
        h.access(seq(1), 0, addr(2), false); // evicts line 1 from seq 1's L1
        assert_eq!(h.probe(seq(1), 0, addr(1)), None);

        let o = h.access(seq(0), 0, addr(1), false);
        assert_eq!(o.level, HitLevel::Memory);
        assert_eq!(
            h.probe(seq(0), 0, addr(1)),
            Some(MesiState::Shared),
            "a remote L2 copy forbids an Exclusive fill"
        );
        let o = h.access(seq(0), 0, addr(1), true);
        assert_eq!(o.level, HitLevel::L1, "store hits the Shared line");
        assert_eq!(h.probe(seq(0), 0, addr(1)), Some(MesiState::Modified));
        assert_eq!(
            o.latency,
            config.costs.l1_hit + config.costs.invalidation,
            "purging the lingering remote L2 copy is a coherence round"
        );

        // Sequencer 1's next access must go to memory, not stale-hit its L2.
        let o = h.access(seq(1), 0, addr(1), false);
        assert_eq!(o.level, HitLevel::Memory);
        h.assert_coherence_invariants();
    }

    #[test]
    fn equal_addresses_in_different_spaces_never_alias() {
        let mut h = hierarchy();
        h.access(seq(0), 0, addr(1), false);
        // The same virtual address in another address space: its own
        // compulsory miss, not a false hit on space 0's line.
        let o = h.access(seq(1), 1, addr(1), false);
        assert_eq!(o.level, HitLevel::Memory);
        assert_eq!(o.miss_class, Some(MissClass::Compulsory));
        // And a store in space 1 leaves space 0's copy untouched.
        let o = h.access(seq(1), 1, addr(1), true);
        assert_eq!(o.invalidations, 0);
        assert_eq!(h.probe(seq(0), 0, addr(1)), Some(MesiState::Exclusive));
        h.assert_coherence_invariants();
    }

    #[test]
    fn merge_accumulates_every_counter() {
        let a = CacheStats {
            l1_hits: 1,
            l2_hits: 2,
            compulsory_misses: 3,
            capacity_misses: 4,
            coherence_misses: 5,
            invalidations: 6,
            flushes: 7,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.l1_hits, 2);
        assert_eq!(b.total_misses(), 24);
        assert_eq!(b.accesses(), 30);
        assert!(b.miss_rate() > 0.0);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }
}
