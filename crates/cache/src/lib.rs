//! Coherent cache hierarchy for the MISP simulator.
//!
//! The paper's evaluation charges a flat cost per memory touch; this crate
//! refines that into a two-level coherent hierarchy so memory-bound workloads
//! can distinguish locality regimes that a flat model cannot:
//!
//! * [`SetAssocCache`] — a set-associative cache with true-LRU replacement
//!   within each set, tracking a MESI-lite [`MesiState`] per line.
//! * [`CacheHierarchy`] — one private L1 per sequencer plus one shared L2 per
//!   *cluster* (a MISP processor, or a single core on the SMP baseline), with
//!   a MESI-lite coherence protocol between the L1s: a store invalidates the
//!   line in every remote L1 (and in remote clusters' L2s), a load downgrades
//!   a remote `Modified` line to `Shared`.
//! * [`CacheConfig`] — geometry and latencies, **disabled by default** so the
//!   flat-cost model of the paper's figures is reproduced byte-for-byte
//!   unless an experiment opts in.
//!
//! # Memory hierarchy
//!
//! The simulated hierarchy is:
//!
//! ```text
//! sequencer ── L1 (private, MESI-lite) ── L2 (shared per cluster) ── memory
//! ```
//!
//! On a MISP machine every sequencer of one MISP processor (the OMS and its
//! AMSs) shares that processor's L2, so producer/consumer traffic between
//! shreds of one processor resolves in the shared L2.  On the SMP baseline
//! every core is its own cluster, so the same sharing pattern crosses the
//! coherence fabric and pays memory latency.  Misses are classified as
//! *compulsory* (first access to the line anywhere), *coherence* (the line
//! was invalidated out of this sequencer's L1 by a remote store) or
//! *capacity* (everything else).  Latencies come from
//! [`misp_types::CacheCostModel`].
//!
//! # Examples
//!
//! ```
//! use misp_cache::{CacheConfig, CacheHierarchy, HitLevel};
//! use misp_types::{SequencerId, VirtAddr};
//!
//! // Two sequencers sharing one L2 cluster (a 1x2 MISP processor); all
//! // accesses below are within address space 0.
//! let mut caches = CacheHierarchy::new(CacheConfig::enabled_default(), &[0, 0]);
//! let a = SequencerId::new(0);
//! let addr = VirtAddr::new(0x1000);
//!
//! let miss = caches.access(a, 0, addr, false);
//! assert_eq!(miss.level, HitLevel::Memory);
//! let hit = caches.access(a, 0, addr, false);
//! assert_eq!(hit.level, HitLevel::L1);
//! // The second sequencer misses its own L1 but hits the shared L2.
//! let shared = caches.access(SequencerId::new(1), 0, addr, false);
//! assert_eq!(shared.level, HitLevel::L2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod hierarchy;
mod set_assoc;

pub use config::{CacheConfig, CacheGeometry};
pub use hierarchy::{CacheHierarchy, CacheOutcome, CacheStats, HitLevel, MissClass};
pub use set_assoc::{MesiState, SetAssocCache};
