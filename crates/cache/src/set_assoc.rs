//! A set-associative cache with per-set LRU replacement and MESI-lite line
//! states.

use crate::CacheGeometry;
use std::collections::VecDeque;

/// The MESI-lite coherence state of a cached line.  `Invalid` is represented
/// by absence from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MesiState {
    /// The line is dirty and this cache is the only holder.
    Modified,
    /// The line is clean and this cache is the only holder.
    Exclusive,
    /// The line is clean and may be held by other caches.
    Shared,
}

/// One set-associative cache level: `sets × ways` lines, true-LRU within each
/// set, one [`MesiState`] per line.
///
/// The cache stores line *indices* (byte address divided by the line size);
/// the mapping from addresses to lines lives in
/// [`crate::CacheConfig::line_of`].  All internal state is ordered, so two
/// identical access sequences leave two caches in identical states — the
/// engine-level determinism guarantee depends on this.
///
/// # Examples
///
/// ```
/// use misp_cache::{CacheGeometry, MesiState, SetAssocCache};
///
/// let mut cache = SetAssocCache::new(CacheGeometry::new(1, 2));
/// assert!(cache.lookup(7).is_none());
/// cache.insert(7, MesiState::Exclusive);
/// assert_eq!(cache.lookup(7), Some(MesiState::Exclusive));
/// cache.insert(9, MesiState::Exclusive);
/// // A third line in the 2-way set evicts the least-recently-used one.
/// assert_eq!(cache.insert(11, MesiState::Exclusive), Some(7));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    /// Per-set lines, least-recently-used at the front.
    sets: Vec<VecDeque<(u64, MesiState)>>,
}

impl SetAssocCache {
    /// Creates an empty cache of the given geometry.
    #[must_use]
    pub fn new(geometry: CacheGeometry) -> Self {
        SetAssocCache {
            geometry,
            sets: (0..geometry.sets)
                .map(|_| VecDeque::with_capacity(geometry.ways as usize))
                .collect(),
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    fn set_of(&self, line: u64) -> usize {
        (line % u64::from(self.geometry.sets)) as usize
    }

    /// Looks `line` up, promoting it to most-recently-used on a hit.
    pub fn lookup(&mut self, line: u64) -> Option<MesiState> {
        let set = self.set_of(line);
        let entries = &mut self.sets[set];
        let pos = entries.iter().position(|(l, _)| *l == line)?;
        let entry = entries.remove(pos).expect("position just found");
        entries.push_back(entry);
        Some(entry.1)
    }

    /// Returns the state of `line` without touching LRU order.
    #[must_use]
    pub fn peek(&self, line: u64) -> Option<MesiState> {
        self.sets[self.set_of(line)]
            .iter()
            .find(|(l, _)| *l == line)
            .map(|(_, s)| *s)
    }

    /// Sets the coherence state of a resident line without touching LRU
    /// order.  Returns `false` if the line is not resident.
    pub fn set_state(&mut self, line: u64, state: MesiState) -> bool {
        let set = self.set_of(line);
        match self.sets[set].iter_mut().find(|(l, _)| *l == line) {
            Some(entry) => {
                entry.1 = state;
                true
            }
            None => false,
        }
    }

    /// Inserts `line` in `state` as most-recently-used, evicting and
    /// returning the set's LRU line if the set is full.  Re-inserting a
    /// resident line updates its state and promotes it.
    pub fn insert(&mut self, line: u64, state: MesiState) -> Option<u64> {
        let set = self.set_of(line);
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|(l, _)| *l == line) {
            entries.remove(pos);
            entries.push_back((line, state));
            return None;
        }
        let evicted = if entries.len() == self.geometry.ways as usize {
            entries.pop_front().map(|(l, _)| l)
        } else {
            None
        };
        entries.push_back((line, state));
        evicted
    }

    /// Removes `line`, returning its state if it was resident.
    pub fn invalidate(&mut self, line: u64) -> Option<MesiState> {
        let set = self.set_of(line);
        let entries = &mut self.sets[set];
        let pos = entries.iter().position(|(l, _)| *l == line)?;
        entries.remove(pos).map(|(_, s)| s)
    }

    /// Drops every line, returning how many were resident.
    pub fn clear(&mut self) -> usize {
        let mut dropped = 0;
        for set in &mut self.sets {
            dropped += set.len();
            set.clear();
        }
        dropped
    }

    /// Number of resident lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.iter().map(VecDeque::len).sum()
    }

    /// Returns `true` when no line is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(VecDeque::is_empty)
    }

    /// Iterates over every resident `(line, state)` pair, set by set, LRU
    /// first within each set.
    pub fn lines(&self) -> impl Iterator<Item = (u64, MesiState)> + '_ {
        self.sets.iter().flat_map(|set| set.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(sets: u32, ways: u32) -> SetAssocCache {
        SetAssocCache::new(CacheGeometry::new(sets, ways))
    }

    #[test]
    fn lru_within_a_set() {
        let mut c = cache(1, 2);
        c.insert(1, MesiState::Exclusive);
        c.insert(2, MesiState::Exclusive);
        assert_eq!(c.lookup(1), Some(MesiState::Exclusive)); // 2 is now LRU
        assert_eq!(c.insert(3, MesiState::Exclusive), Some(2));
        assert!(c.peek(1).is_some());
        assert!(c.peek(2).is_none());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = cache(2, 1);
        c.insert(0, MesiState::Exclusive); // set 0
        c.insert(1, MesiState::Exclusive); // set 1
        assert_eq!(c.len(), 2);
        // A second even line evicts only from set 0.
        assert_eq!(c.insert(2, MesiState::Exclusive), Some(0));
        assert_eq!(c.peek(1), Some(MesiState::Exclusive));
    }

    #[test]
    fn reinsert_updates_state_without_eviction() {
        let mut c = cache(1, 2);
        c.insert(1, MesiState::Shared);
        c.insert(2, MesiState::Shared);
        assert_eq!(c.insert(1, MesiState::Modified), None);
        assert_eq!(c.peek(1), Some(MesiState::Modified));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn set_state_and_invalidate() {
        let mut c = cache(4, 2);
        c.insert(9, MesiState::Exclusive);
        assert!(c.set_state(9, MesiState::Shared));
        assert!(!c.set_state(10, MesiState::Shared));
        assert_eq!(c.invalidate(9), Some(MesiState::Shared));
        assert_eq!(c.invalidate(9), None);
        assert!(c.is_empty());
    }

    #[test]
    fn clear_reports_dropped_lines() {
        let mut c = cache(2, 2);
        for line in 0..4 {
            c.insert(line, MesiState::Exclusive);
        }
        assert_eq!(c.clear(), 4);
        assert!(c.is_empty());
    }

    #[test]
    fn lines_iterates_everything() {
        let mut c = cache(2, 2);
        c.insert(0, MesiState::Exclusive);
        c.insert(1, MesiState::Modified);
        let collected: Vec<(u64, MesiState)> = c.lines().collect();
        assert_eq!(collected.len(), 2);
        assert!(collected.contains(&(1, MesiState::Modified)));
    }
}
