//! Fleet-level topology: how many machines, how far apart, and how traffic
//! is spread across them.
//!
//! [`MispTopology`](crate::MispTopology) describes the sequencers *inside*
//! one machine; [`FleetTopology`] describes the machines themselves — the
//! shape a warehouse-scale service simulation runs on.  Each machine of a
//! fleet carries an identical intra-machine topology, requests reach
//! machines through a seeded load balancer, and cross-machine deliveries pay
//! a fixed network latency that doubles as the conservative synchronizer's
//! lookahead.

use misp_types::{Cycles, MispError, Result};
use serde::{Deserialize, Serialize};

/// How the load balancer assigns incoming requests to fleet machines.
///
/// All three policies are pure functions of the request stream, the seed and
/// the fleet shape, so MISP and SMP fleets fed the same seed dispatch the
/// identical request sequence to the identical machines (common random
/// numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoadBalancerPolicy {
    /// Requests rotate through machines in id order.
    RoundRobin,
    /// Each request picks a machine uniformly from a seeded stream.
    Random,
    /// Each request goes to the machine with the fewest requests still in
    /// flight under the balancer's service model (dispatched requests whose
    /// modeled completion lies in the future); ties break toward the lowest
    /// machine id.
    LeastOutstanding,
}

impl LoadBalancerPolicy {
    /// Stable label used in run ids and results JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LoadBalancerPolicy::RoundRobin => "rr",
            LoadBalancerPolicy::Random => "random",
            LoadBalancerPolicy::LeastOutstanding => "least",
        }
    }

    /// Every policy, in a fixed order.
    #[must_use]
    pub fn all() -> [LoadBalancerPolicy; 3] {
        [
            LoadBalancerPolicy::RoundRobin,
            LoadBalancerPolicy::Random,
            LoadBalancerPolicy::LeastOutstanding,
        ]
    }
}

/// The shape of a simulated fleet: machine count, inter-machine network
/// latency and the load-balancer policy spreading requests across machines.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetTopology {
    machines: usize,
    network_latency: Cycles,
    policy: LoadBalancerPolicy,
}

impl FleetTopology {
    /// Default inter-machine network latency: 200k cycles, roughly a
    /// same-datacenter round trip at the simulator's cycle scale.
    pub const DEFAULT_NETWORK_LATENCY: Cycles = Cycles::new(200_000);

    /// Creates a fleet of `machines` boxes with the given load-balancer
    /// policy and the default network latency.
    ///
    /// # Errors
    ///
    /// [`MispError::InvalidConfiguration`] if `machines` is zero.
    pub fn new(machines: usize, policy: LoadBalancerPolicy) -> Result<Self> {
        Self::with_network_latency(machines, policy, Self::DEFAULT_NETWORK_LATENCY)
    }

    /// Creates a fleet with an explicit network latency.
    ///
    /// # Errors
    ///
    /// [`MispError::InvalidConfiguration`] if `machines` is zero or the
    /// latency is zero (the conservative synchronizer needs positive
    /// lookahead).
    pub fn with_network_latency(
        machines: usize,
        policy: LoadBalancerPolicy,
        network_latency: Cycles,
    ) -> Result<Self> {
        if machines == 0 {
            return Err(MispError::InvalidConfiguration(
                "a fleet needs at least one machine".to_string(),
            ));
        }
        if network_latency == Cycles::ZERO {
            return Err(MispError::InvalidConfiguration(
                "fleet network latency must be at least one cycle".to_string(),
            ));
        }
        Ok(FleetTopology {
            machines,
            network_latency,
            policy,
        })
    }

    /// Number of machines in the fleet.
    #[must_use]
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Fixed cross-machine delivery latency (also the synchronizer's
    /// lookahead).
    #[must_use]
    pub fn network_latency(&self) -> Cycles {
        self.network_latency
    }

    /// The load-balancer policy.
    #[must_use]
    pub fn policy(&self) -> LoadBalancerPolicy {
        self.policy
    }

    /// One-line human-readable description.
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "{} machine(s), {} lb, {} cycle network latency",
            self.machines,
            self.policy.label(),
            self.network_latency.as_u64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_topology_validates_shape() {
        assert!(FleetTopology::new(0, LoadBalancerPolicy::RoundRobin).is_err());
        assert!(
            FleetTopology::with_network_latency(4, LoadBalancerPolicy::Random, Cycles::ZERO)
                .is_err()
        );
        let fleet = FleetTopology::new(16, LoadBalancerPolicy::LeastOutstanding).unwrap();
        assert_eq!(fleet.machines(), 16);
        assert_eq!(
            fleet.network_latency(),
            FleetTopology::DEFAULT_NETWORK_LATENCY
        );
        assert_eq!(fleet.policy().label(), "least");
        assert!(fleet.describe().contains("16 machine(s)"));
    }

    #[test]
    fn policy_labels_are_stable() {
        let labels: Vec<&str> = LoadBalancerPolicy::all()
            .iter()
            .map(|p| p.label())
            .collect();
        assert_eq!(labels, vec!["rr", "random", "least"]);
    }
}
