//! The MISP (Multiple Instruction Stream Processing) architecture model.
//!
//! This crate is the reproduction of the paper's primary contribution: a MIMD
//! ISA extension in which an application directly manages *sequencers* —
//! hardware thread contexts exposed as architectural resources — without OS
//! involvement.  It provides:
//!
//! * [`MispTopology`] / [`MispProcessor`] — machines built from MISP
//!   processors, each with one OS-managed sequencer (OMS) and zero or more
//!   application-managed sequencers (AMS) (Figures 1, 2 and 6 of the paper).
//! * [`SignalFabric`] — the user-level inter-sequencer signaling substrate
//!   behind the `SIGNAL` instruction (Section 2.4).
//! * [`TriggerResponseRegistry`] — the YIELD-CONDITIONAL trigger→response
//!   mechanism used to register the proxy handler and receive asynchronous
//!   control transfers (Section 2.4).
//! * Proxy execution and Ring 0 serialization — implemented inside
//!   [`MispPlatform`], which plugs the whole architecture into the
//!   `misp-sim` execution engine (Sections 2.3 and 2.5).
//! * [`OverheadModel`] — the analytic overhead model of Section 5.1
//!   (Equations 1–3), used by the Figure 5 sensitivity study.
//!
//! # Examples
//!
//! Build a MISP uniprocessor with one OMS and three AMSs — the configuration
//! of the paper's Figure 1 — and inspect its structure:
//!
//! ```
//! use misp_core::MispTopology;
//!
//! let topo = MispTopology::uniprocessor(3).unwrap();
//! assert_eq!(topo.total_sequencers(), 4);
//! assert_eq!(topo.processors().len(), 1);
//! let p = &topo.processors()[0];
//! assert_eq!(p.ams().len(), 3);
//! assert!(topo.is_oms(p.oms()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod fleet;
mod machine;
mod overhead;
mod platform;
mod signal;
mod topology;
mod yield_cond;

pub use fleet::{FleetTopology, LoadBalancerPolicy};
pub use machine::MispMachine;
pub use overhead::OverheadModel;
pub use platform::{MispPlatform, RingPolicy};
pub use signal::{SignalFabric, SignalKind, SignalRecord};
pub use topology::{MispProcessor, MispTopology};
pub use yield_cond::{TriggerKind, TriggerResponseRegistry};
