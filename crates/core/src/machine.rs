//! A convenience wrapper that assembles a complete MISP machine.

use crate::{MispPlatform, MispTopology};
use misp_isa::ProgramLibrary;
use misp_sim::{Engine, Runtime, SimConfig, SimReport};
use misp_types::{OsThreadId, ProcessId, Result};

/// A fully-assembled MISP machine: topology, engine, OS processes and
/// runtimes.
///
/// `MispMachine` wraps [`Engine<MispPlatform>`] with the bookkeeping every
/// experiment needs: spawning processes and threads, registering address
/// spaces, attaching runtimes and placing threads on MISP processors.
///
/// # Examples
///
/// ```
/// use misp_core::{MispMachine, MispTopology};
/// use misp_isa::{ProgramBuilder, ProgramLibrary, ProgramRef};
/// use misp_sim::{SimConfig, SingleShredRuntime};
/// use misp_types::Cycles;
///
/// let mut library = ProgramLibrary::new();
/// let main = library.insert(ProgramBuilder::new("main").compute(Cycles::new(5_000)).build());
///
/// let topology = MispTopology::uniprocessor(3).unwrap();
/// let mut machine = MispMachine::new(topology, SimConfig::default(), library);
/// machine.add_process("demo", Box::new(SingleShredRuntime::new(main)), Some(0));
/// let report = machine.run().unwrap();
/// assert!(report.total_cycles >= Cycles::new(5_000));
/// ```
#[derive(Debug)]
pub struct MispMachine {
    engine: Engine<MispPlatform>,
}

impl MispMachine {
    /// Creates a machine with the given topology, configuration and program
    /// library.
    #[must_use]
    pub fn new(topology: MispTopology, config: SimConfig, library: ProgramLibrary) -> Self {
        let sequencers = topology.total_sequencers();
        let platform = MispPlatform::new(topology);
        MispMachine {
            engine: Engine::new(config, sequencers, library, platform),
        }
    }

    /// Adds a process with one OS thread and the given user-level runtime.
    ///
    /// The thread is pinned to MISP processor `processor` if given, otherwise
    /// placed on the least-loaded processor.  Returns the new process id.
    pub fn add_process(
        &mut self,
        name: &str,
        runtime: Box<dyn Runtime>,
        processor: Option<usize>,
    ) -> ProcessId {
        let pid = self.engine.core_mut().kernel_mut().spawn_process(name);
        self.engine.core_mut().memory_mut().register_process(pid);
        self.engine.add_runtime(pid, runtime);
        let tid = self.engine.core_mut().kernel_mut().spawn_thread(pid);
        self.place(tid, processor);
        pid
    }

    /// Adds an additional OS thread to an existing process (e.g. one thread
    /// per MISP processor for a multi-shredded application spanning an MP
    /// system).  Returns the new thread id.
    pub fn add_thread(&mut self, process: ProcessId, processor: Option<usize>) -> OsThreadId {
        let tid = self.engine.core_mut().kernel_mut().spawn_thread(process);
        self.place(tid, processor);
        tid
    }

    fn place(&mut self, thread: OsThreadId, processor: Option<usize>) {
        match processor {
            Some(p) => self.engine.platform_mut().pin_thread(thread, p),
            None => self.engine.platform_mut().place_thread(thread),
        }
    }

    /// Restricts the completion criterion to the given processes (see
    /// [`Engine::set_measured`]).
    pub fn set_measured(&mut self, processes: Vec<ProcessId>) {
        self.engine.set_measured(processes);
    }

    /// The underlying engine.
    #[must_use]
    pub fn engine(&self) -> &Engine<MispPlatform> {
        &self.engine
    }

    /// Mutable access to the underlying engine.
    pub fn engine_mut(&mut self) -> &mut Engine<MispPlatform> {
        &mut self.engine
    }

    /// Surrenders the assembled machine so it can join a multi-machine
    /// [`misp_sim::FleetEngine`].
    #[must_use]
    pub fn into_sim_machine(self) -> misp_sim::Machine<MispPlatform> {
        self.engine.into_machine()
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// Propagates the engine's errors (cycle-budget exhaustion, deadlock,
    /// missing runtime).
    pub fn run(&mut self) -> Result<SimReport> {
        self.engine.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use misp_isa::{ProgramBuilder, ProgramRef, SyscallKind};
    use misp_os::TimerConfig;
    use misp_sim::SingleShredRuntime;
    use misp_types::{Cycles, VirtAddr};

    fn quiet_config() -> SimConfig {
        SimConfig {
            timer: TimerConfig::disabled(),
            ..SimConfig::default()
        }
    }

    fn one_program_library(program: misp_isa::ShredProgram) -> (ProgramLibrary, ProgramRef) {
        let mut lib = ProgramLibrary::new();
        let r = lib.insert(program);
        (lib, r)
    }

    #[test]
    fn compute_only_process_completes_on_oms() {
        let (lib, main) = one_program_library(
            ProgramBuilder::new("main")
                .compute(Cycles::new(100_000))
                .build(),
        );
        let topo = MispTopology::uniprocessor(3).unwrap();
        let mut machine = MispMachine::new(topo, quiet_config(), lib);
        machine.add_process("app", Box::new(SingleShredRuntime::new(main)), Some(0));
        let report = machine.run().unwrap();
        assert!(report.total_cycles >= Cycles::new(100_000));
        assert!(report.total_cycles < Cycles::new(110_000));
    }

    #[test]
    fn oms_syscall_serializes_but_completes() {
        let (lib, main) = one_program_library(
            ProgramBuilder::new("main")
                .compute(Cycles::new(1_000))
                .syscall(SyscallKind::Io)
                .compute(Cycles::new(1_000))
                .build(),
        );
        let topo = MispTopology::uniprocessor(7).unwrap();
        let mut machine = MispMachine::new(topo, quiet_config(), lib);
        machine.add_process("app", Box::new(SingleShredRuntime::new(main)), Some(0));
        let report = machine.run().unwrap();
        assert_eq!(report.stats.oms_events.syscalls, 1);
        assert_eq!(report.stats.serializations, 1);
        assert_eq!(report.stats.ams_events.total(), 0);
    }

    #[test]
    fn page_faults_on_oms_are_local_events() {
        let (lib, main) = one_program_library(
            ProgramBuilder::new("main")
                .touch_pages(VirtAddr::new(0x100_0000), 10)
                .build(),
        );
        let topo = MispTopology::uniprocessor(1).unwrap();
        let mut machine = MispMachine::new(topo, quiet_config(), lib);
        machine.add_process("app", Box::new(SingleShredRuntime::new(main)), Some(0));
        let report = machine.run().unwrap();
        assert_eq!(report.stats.oms_events.page_faults, 10);
        assert_eq!(report.stats.proxy_executions, 0);
    }

    #[test]
    fn two_processes_on_different_processors_run_concurrently() {
        let mut lib = ProgramLibrary::new();
        let p = lib.insert(
            ProgramBuilder::new("w")
                .compute(Cycles::new(200_000))
                .build(),
        );
        let topo = MispTopology::uniform(2, 1).unwrap();
        let mut machine = MispMachine::new(topo, quiet_config(), lib);
        machine.add_process("a", Box::new(SingleShredRuntime::new(p)), Some(0));
        machine.add_process("b", Box::new(SingleShredRuntime::new(p)), Some(1));
        let report = machine.run().unwrap();
        // Both processes complete in roughly the single-process time because
        // they run on separate MISP processors.
        assert!(report.total_cycles < Cycles::new(250_000));
    }

    #[test]
    fn two_processes_sharing_one_oms_timeshare() {
        let mut lib = ProgramLibrary::new();
        let p = lib.insert(
            ProgramBuilder::new("w")
                .compute(Cycles::new(30_000_000))
                .build(),
        );
        let topo = MispTopology::uniprocessor(0).unwrap();
        // Timer enabled so the scheduler can alternate the two threads.
        let config = SimConfig::default();
        let mut machine = MispMachine::new(topo, config, lib);
        let a = machine.add_process("a", Box::new(SingleShredRuntime::new(p)), Some(0));
        let _b = machine.add_process("b", Box::new(SingleShredRuntime::new(p)), Some(0));
        machine.set_measured(vec![a]);
        let report = machine.run().unwrap();
        // Process `a` should take noticeably longer than its solo 30M cycles
        // because it shares the OMS with `b` under round-robin scheduling.
        assert!(
            report.total_cycles > Cycles::new(45_000_000),
            "expected time-sharing to slow the measured process, got {}",
            report.total_cycles
        );
        assert!(report.stats.context_switches > 0);
    }
}
