//! The analytic overhead model of Section 5.1 (Equations 1–3).

use misp_types::{CostModel, Cycles};

/// The paper's analytic model of MISP synchrony overhead.
///
/// Section 5.1 expresses the three overhead categories in terms of the
/// inter-sequencer `signal` latency and the privileged service time `priv`:
///
/// * Equation 1 — serialization across an OMS ring transition:
///   `serialize = 2 × signal + priv`
/// * Equation 2 — overhead incurred by a shred requiring proxy execution:
///   `proxy_egress = 3 × signal`
/// * Equation 3 — overhead incurred by the OMS to handle the proxy request:
///   `proxy_ingress = signal + serialize`
///
/// Figure 5 applies these equations to the serializing-event counts of
/// Table 1 to compute the extra time each signal-cost design point adds over
/// an ideal (zero-cost) implementation; [`OverheadModel::signal_overhead`] and
/// [`OverheadModel::overhead_fraction`] perform that computation.
///
/// # Examples
///
/// ```
/// use misp_core::OverheadModel;
/// use misp_types::{CostModel, Cycles, SignalCost};
///
/// let model = OverheadModel::new(CostModel::default()); // 5000-cycle signal
/// assert_eq!(model.serialize(Cycles::new(8_000)), Cycles::new(18_000));
/// assert_eq!(model.proxy_egress(), Cycles::new(15_000));
/// assert_eq!(model.proxy_ingress(Cycles::new(8_000)), Cycles::new(23_000));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct OverheadModel {
    costs: CostModel,
}

impl OverheadModel {
    /// Creates the model from a cost model (only the signal latency is used by
    /// the equations; `priv` is supplied per call).
    #[must_use]
    pub fn new(costs: CostModel) -> Self {
        OverheadModel { costs }
    }

    /// The signal latency used by the model.
    #[must_use]
    pub fn signal(&self) -> Cycles {
        self.costs.signal_cycles()
    }

    /// Equation 1: serialization overhead across an OMS ring transition with
    /// privileged service time `priv_time`.
    #[must_use]
    pub fn serialize(&self, priv_time: Cycles) -> Cycles {
        self.signal() * 2 + priv_time
    }

    /// Equation 2: overhead incurred by a shred whose AMS requests proxy
    /// execution (excludes the privileged service itself, which an SMP system
    /// would also pay).
    #[must_use]
    pub fn proxy_egress(&self) -> Cycles {
        self.signal() * 3
    }

    /// Equation 3: overhead incurred by the OMS to handle a proxy request
    /// with privileged service time `priv_time`.
    #[must_use]
    pub fn proxy_ingress(&self, priv_time: Cycles) -> Cycles {
        self.signal() + self.serialize(priv_time)
    }

    /// The signal-induced overhead (the part that disappears under an ideal
    /// zero-cost signal implementation) accumulated over a run with
    /// `oms_events` serializing events originating on OMSs and `ams_events`
    /// proxy-execution events originating on AMSs.
    ///
    /// Per Section 5.3's methodology, OMS-originated events contribute the
    /// signal part of Equation 1 (`2 × signal`) and AMS-originated events the
    /// signal part of Equation 2 plus the extra OMS signal of Equation 3
    /// (`3 × signal`).
    #[must_use]
    pub fn signal_overhead(&self, oms_events: u64, ams_events: u64) -> Cycles {
        self.signal() * (2 * oms_events) + self.signal() * (3 * ams_events)
    }

    /// The overhead of this signal-cost design point relative to an ideal
    /// zero-cost implementation, as a fraction of `ideal_runtime` — the
    /// quantity plotted in Figure 5.
    #[must_use]
    pub fn overhead_fraction(
        &self,
        oms_events: u64,
        ams_events: u64,
        ideal_runtime: Cycles,
    ) -> f64 {
        if ideal_runtime.is_zero() {
            return 0.0;
        }
        self.signal_overhead(oms_events, ams_events).as_f64() / ideal_runtime.as_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use misp_types::SignalCost;

    fn model(signal: SignalCost) -> OverheadModel {
        OverheadModel::new(CostModel::builder().signal(signal).build())
    }

    #[test]
    fn equations_match_paper_with_5000_cycle_signal() {
        let m = model(SignalCost::Microcode5000);
        let priv_time = Cycles::new(10_000);
        assert_eq!(m.serialize(priv_time), Cycles::new(20_000));
        assert_eq!(m.proxy_egress(), Cycles::new(15_000));
        assert_eq!(m.proxy_ingress(priv_time), Cycles::new(25_000));
        assert_eq!(m.signal(), Cycles::new(5_000));
    }

    #[test]
    fn ideal_signal_has_zero_signal_overhead() {
        let m = model(SignalCost::Ideal);
        assert_eq!(m.serialize(Cycles::new(123)), Cycles::new(123));
        assert_eq!(m.proxy_egress(), Cycles::ZERO);
        assert_eq!(m.signal_overhead(1_000, 1_000), Cycles::ZERO);
        assert_eq!(
            m.overhead_fraction(1_000, 1_000, Cycles::new(1_000_000)),
            0.0
        );
    }

    #[test]
    fn signal_overhead_scales_linearly_with_events() {
        let m = model(SignalCost::Aggressive500);
        assert_eq!(m.signal_overhead(10, 0), Cycles::new(10_000));
        assert_eq!(m.signal_overhead(0, 10), Cycles::new(15_000));
        assert_eq!(m.signal_overhead(10, 10), Cycles::new(25_000));
    }

    #[test]
    fn overhead_fraction_is_small_for_realistic_counts() {
        // Representative of kmeans in Table 1: ~293 OMS events, 2 AMS events
        // over a multi-second run (here scaled to 5e9 cycles).
        let m = model(SignalCost::Microcode5000);
        let frac = m.overhead_fraction(293, 2, Cycles::new(5_000_000_000));
        assert!(frac < 0.01, "overhead should be well under 1%, got {frac}");
        assert!(frac > 0.0);
    }

    #[test]
    fn overhead_fraction_handles_zero_runtime() {
        let m = model(SignalCost::Microcode5000);
        assert_eq!(m.overhead_fraction(10, 10, Cycles::ZERO), 0.0);
    }

    #[test]
    fn larger_signal_costs_give_larger_overheads() {
        let runtime = Cycles::new(1_000_000_000);
        let f500 = model(SignalCost::Aggressive500).overhead_fraction(1000, 500, runtime);
        let f1000 = model(SignalCost::Aggressive1000).overhead_fraction(1000, 500, runtime);
        let f5000 = model(SignalCost::Microcode5000).overhead_fraction(1000, 500, runtime);
        assert!(f500 < f1000 && f1000 < f5000);
        assert!(
            (f1000 / f500 - 2.0).abs() < 1e-9,
            "overhead is linear in signal cost"
        );
    }
}
