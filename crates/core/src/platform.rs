//! The MISP machine platform: serialization, proxy execution and MP
//! scheduling semantics plugged into the execution engine.

use crate::{MispTopology, SignalFabric, SignalKind, TriggerKind, TriggerResponseRegistry};
use misp_isa::Continuation;
use misp_os::{OsEventKind, PlacementPolicy, SystemScheduler};
use misp_sim::{EngineCore, LogKind, Platform, SavedContext, ShredStatus};
use misp_types::{Cycles, FxHashMap, OsThreadId, SequencerId};
use serde::{Deserialize, Serialize};

/// How the machine treats AMSs while an OMS executes in Ring 0
/// (Section 2.3).
#[derive(Default, Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RingPolicy {
    /// The paper's prototype policy: suspend every AMS of the processor when
    /// its OMS enters Ring 0 and resume them after it returns to Ring 3.
    #[default]
    SuspendAll,
    /// The "more aggressive microarchitecture" the paper sketches: AMSs
    /// continue speculatively through the OMS's Ring 0 episode and their work
    /// is retired because the control registers were not modified.  Modeled as
    /// zero AMS stall; used by the ring-transition ablation.
    Speculative,
}

/// Saved execution contexts of one OS thread across a context switch: the OMS
/// context plus one context per AMS of the processor the thread ran on.
#[derive(Debug, Default, Clone)]
struct ThreadCtx {
    oms: SavedContext,
    ams: Vec<SavedContext>,
}

/// The MISP machine platform.
///
/// `MispPlatform` implements [`Platform`] for the `misp-sim` engine, realizing
/// the paper's architectural semantics:
///
/// * an OMS Ring 3→0 transition suspends every AMS of its MISP processor for
///   `2 × signal + priv` cycles (Equation 1);
/// * a fault on an AMS is relayed to the OMS as a proxy-execution request,
///   occupying the OMS for `signal + serialize` cycles (Equation 3) and the
///   faulting shred for `3 × signal + priv` (Equation 2 plus the service the
///   SMP baseline would also pay);
/// * the OS schedules threads onto OMSs only; a context switch saves and
///   restores the aggregate AMS state and rebinds the whole processor to the
///   incoming thread's address space.
#[derive(Debug)]
pub struct MispPlatform {
    topology: MispTopology,
    policy: RingPolicy,
    quantum_ticks: u64,
    auto_register_proxy: bool,
    fabric: Option<SignalFabric>,
    registry: Option<TriggerResponseRegistry>,
    scheduler: Option<SystemScheduler>,
    oms_busy_until: Vec<Cycles>,
    thread_ctx: FxHashMap<OsThreadId, ThreadCtx>,
    pinned: Vec<(OsThreadId, usize)>,
    auto_place: Vec<OsThreadId>,
    /// Reused target buffer for serialization windows, so the per-transition
    /// hot path does not allocate.
    serialize_scratch: Vec<SequencerId>,
    /// Precomputed sequencer → MISP-processor index, replacing a topology
    /// scan on every privileged event and timer tick.
    seq_to_proc: Vec<usize>,
}

impl MispPlatform {
    /// Creates a platform for the given topology with the paper's default
    /// behaviour (suspend-all ring policy, one-tick scheduling quantum,
    /// automatic proxy-handler registration).
    #[must_use]
    pub fn new(topology: MispTopology) -> Self {
        let processors = topology.processors().len();
        let mut seq_to_proc = vec![usize::MAX; topology.total_sequencers()];
        for (proc_idx, processor) in topology.processors().iter().enumerate() {
            for seq in processor.sequencers() {
                if let Some(slot) = seq_to_proc.get_mut(seq.as_usize()) {
                    *slot = proc_idx;
                }
            }
        }
        MispPlatform {
            topology,
            policy: RingPolicy::SuspendAll,
            quantum_ticks: 1,
            auto_register_proxy: true,
            fabric: None,
            registry: None,
            scheduler: None,
            oms_busy_until: vec![Cycles::ZERO; processors],
            thread_ctx: FxHashMap::default(),
            pinned: Vec::new(),
            auto_place: Vec::new(),
            serialize_scratch: Vec::new(),
            seq_to_proc,
        }
    }

    /// The machine topology.
    #[must_use]
    pub fn topology(&self) -> &MispTopology {
        &self.topology
    }

    /// Selects the ring-transition policy (used by the ablation study).
    pub fn set_policy(&mut self, policy: RingPolicy) {
        self.policy = policy;
    }

    /// The ring-transition policy in effect.
    #[must_use]
    pub fn policy(&self) -> RingPolicy {
        self.policy
    }

    /// Sets the OS scheduling quantum in timer ticks (default 1).
    ///
    /// # Panics
    ///
    /// Panics if `ticks` is zero.
    pub fn set_quantum_ticks(&mut self, ticks: u64) {
        assert!(ticks > 0, "quantum must be at least one tick");
        self.quantum_ticks = ticks;
    }

    /// Disables automatic registration of the proxy handler on every OMS; the
    /// application must then execute `Op::RegisterHandler` before any AMS
    /// fault occurs.
    pub fn disable_auto_proxy_registration(&mut self) {
        self.auto_register_proxy = false;
    }

    /// Pins `thread` to the MISP processor with index `processor`.
    ///
    /// # Panics
    ///
    /// Panics if `processor` is out of range.
    pub fn pin_thread(&mut self, thread: OsThreadId, processor: usize) {
        assert!(
            processor < self.topology.processors().len(),
            "processor index out of range"
        );
        self.pinned.push((thread, processor));
    }

    /// Places `thread` automatically (least-loaded MISP processor).
    pub fn place_thread(&mut self, thread: OsThreadId) {
        self.auto_place.push(thread);
    }

    /// The signaling fabric, available after the engine has been initialized.
    #[must_use]
    pub fn fabric(&self) -> Option<&SignalFabric> {
        self.fabric.as_ref()
    }

    /// The trigger/response registry, available after initialization.
    #[must_use]
    pub fn registry(&self) -> Option<&TriggerResponseRegistry> {
        self.registry.as_ref()
    }

    fn processor_index(&self, seq: SequencerId) -> usize {
        match self.seq_to_proc.get(seq.as_usize()) {
            Some(&p) if p != usize::MAX => p,
            _ => panic!("sequencer must belong to the topology"),
        }
    }

    /// Suspends the AMSs of processor `proc_idx` (except `skip`) for the
    /// serialization window `2 × signal + priv` starting at `now`.
    fn serialize_processor(
        &mut self,
        core: &mut EngineCore,
        proc_idx: usize,
        skip: Option<SequencerId>,
        now: Cycles,
        priv_time: Cycles,
    ) {
        if self.policy == RingPolicy::Speculative {
            return;
        }
        let signal = core.costs().signal_cycles();
        let window_end = now + signal * 2 + priv_time;
        let oms = self.topology.processors()[proc_idx].oms();
        let mut targets = std::mem::take(&mut self.serialize_scratch);
        targets.clear();
        targets.extend(
            self.topology.processors()[proc_idx]
                .ams()
                .iter()
                .copied()
                .filter(|a| Some(*a) != skip),
        );
        if let Some(fabric) = self.fabric.as_mut() {
            fabric.broadcast(oms, &targets, SignalKind::Suspend, now);
            fabric.broadcast(
                oms,
                &targets,
                SignalKind::Resume,
                window_end.saturating_sub(signal),
            );
        }
        core.stall_many(&targets, now, window_end);
        self.serialize_scratch = targets;
        core.stats_mut().serializations += 1;
    }

    /// Binds every sequencer of processor `proc_idx` to `thread` (and its
    /// process's address space) and restores the thread's saved execution
    /// contexts, resuming the OMS at `oms_at` and the AMSs at `ams_at`.
    fn install_thread(
        &mut self,
        core: &mut EngineCore,
        proc_idx: usize,
        thread: OsThreadId,
        oms_at: Cycles,
        ams_at: Cycles,
    ) {
        let processor = self.topology.processors()[proc_idx].clone();
        let pid = core
            .kernel()
            .thread(thread)
            .expect("placed thread must be spawned")
            .process();
        core.memory_mut().register_process(pid);
        for seq in processor.sequencers() {
            core.memory_mut()
                .bind_sequencer(seq, pid)
                .expect("process is registered");
            core.sequencers_mut().set_bound_thread(seq, Some(thread));
        }
        let ctx = self.thread_ctx.remove(&thread).unwrap_or_default();
        core.restore_context(processor.oms(), ctx.oms, oms_at);
        for (i, ams) in processor.ams().iter().enumerate() {
            let actx = ctx.ams.get(i).copied().unwrap_or_default();
            core.restore_context(*ams, actx, ams_at);
        }
        let _ = core
            .kernel_mut()
            .set_thread_state(thread, misp_os::ThreadState::Running);
    }

    /// Saves the execution contexts of `thread` (currently installed on
    /// processor `proc_idx`).
    fn evict_thread(
        &mut self,
        core: &mut EngineCore,
        proc_idx: usize,
        thread: OsThreadId,
        now: Cycles,
    ) {
        let processor = self.topology.processors()[proc_idx].clone();
        let oms_ctx = core.save_context(processor.oms(), now);
        let ams_ctx: Vec<SavedContext> = processor
            .ams()
            .iter()
            .map(|ams| core.save_context(*ams, now))
            .collect();
        // The incoming thread's working set displaces the outgoing one's:
        // model the cold-cache restart by flushing every L1 of the processor.
        // (No-op while the cache model is disabled.)
        for seq in processor.sequencers() {
            core.memory_mut().flush_cache(seq);
        }
        self.thread_ctx.insert(
            thread,
            ThreadCtx {
                oms: oms_ctx,
                ams: ams_ctx,
            },
        );
        let _ = core
            .kernel_mut()
            .set_thread_state(thread, misp_os::ThreadState::Ready);
    }
}

impl Platform for MispPlatform {
    fn init(&mut self, core: &mut EngineCore) {
        // Impose the MISP clustering on the cache hierarchy: every sequencer
        // of one MISP processor (OMS + AMSs) shares that processor's L2.
        // (configure_caches is a no-op for a disabled cache config.)
        let cache_config = core.config().cache;
        let mut clusters = vec![0usize; core.sequencer_count()];
        for (proc_idx, processor) in self.topology.processors().iter().enumerate() {
            for seq in processor.sequencers() {
                clusters[seq.as_usize()] = proc_idx;
            }
        }
        core.memory_mut().configure_caches(cache_config, &clusters);

        let costs = *core.costs();
        let mut fabric = SignalFabric::new(costs);
        if core.config().fine_log {
            fabric.enable_history();
        }
        self.fabric = Some(fabric);
        let mut registry = TriggerResponseRegistry::new(costs.yield_transfer);
        if self.auto_register_proxy {
            for p in self.topology.processors() {
                registry.register(p.oms(), TriggerKind::ProxyRequest);
            }
        }
        self.registry = Some(registry);

        let mut scheduler = SystemScheduler::new(
            self.topology.processors().len(),
            self.quantum_ticks,
            PlacementPolicy::LeastLoaded,
        );
        for &(thread, proc) in &self.pinned {
            scheduler.place_on(thread, proc);
        }
        for &thread in &self.auto_place {
            scheduler.place(thread);
        }

        for proc_idx in 0..self.topology.processors().len() {
            let dispatched = scheduler.cpu_mut(proc_idx).dispatch();
            if let Some(thread) = dispatched {
                self.install_thread(core, proc_idx, thread, Cycles::ZERO, Cycles::ZERO);
            }
            // Timer interrupts only tick on CPUs that have work; an empty CPU
            // contributes no serializing events, matching the paper's
            // accounting which attributes events to the application's run.
            if scheduler.cpu(proc_idx).load() > 0 || dispatched.is_some() {
                let oms = self.topology.processors()[proc_idx].oms();
                let first = core.config().timer.next_tick_after(Cycles::ZERO);
                if first != Cycles::MAX {
                    core.schedule_timer(oms, first, 1);
                }
            }
        }
        self.scheduler = Some(scheduler);
    }

    fn on_priv_event(
        &mut self,
        core: &mut EngineCore,
        seq: SequencerId,
        kind: OsEventKind,
        now: Cycles,
    ) -> Cycles {
        let proc_idx = self.processor_index(seq);
        let oms = self.topology.processors()[proc_idx].oms();
        let costs = *core.costs();
        let signal = costs.signal_cycles();
        let priv_time = core.kernel().service_cost(kind);
        core.kernel_mut().record_event(kind);

        if seq == oms {
            // Local Ring 3 -> Ring 0 transition on the OS-managed sequencer.
            core.stats_mut().record_event(seq, kind, true);
            core.log_event_with(seq, LogKind::RingEnter, || kind.to_string());
            // Privileged code displaces the servicing sequencer's L1 — the
            // same charge the SMP baseline pays for its local services, so
            // cache-enabled cross-machine comparisons stay unbiased.  (No-op
            // while the cache model is disabled.)
            core.memory_mut().flush_cache(oms);
            self.serialize_processor(core, proc_idx, None, now, priv_time);
            let resume = now + priv_time;
            self.oms_busy_until[proc_idx] = self.oms_busy_until[proc_idx].max(resume);
            core.log_event_with(seq, LogKind::RingExit, || kind.to_string());
            resume
        } else {
            // Fault on an application-managed sequencer: proxy execution.
            core.stats_mut().record_event(seq, kind, false);
            core.stats_mut().proxy_executions += 1;
            core.log_event_with(seq, LogKind::ProxyRequest, || kind.to_string());
            let fabric = self.fabric.as_mut().expect("platform initialized");
            fabric.send(seq, oms, SignalKind::ProxyRequest, now);

            let registry = self.registry.as_mut().expect("platform initialized");
            let handler_ok = registry
                .invoke(oms, TriggerKind::ProxyRequest, now)
                .is_some();
            assert!(
                handler_ok,
                "proxy execution requested on {seq} but no proxy handler is registered on {oms}; \
                 execute Op::RegisterHandler on the OMS or keep auto-registration enabled"
            );

            let start = (now + signal).max(self.oms_busy_until[proc_idx]);
            let oms_done = start + costs.yield_transfer + signal * 2 + priv_time;
            core.log_event_with(oms, LogKind::ProxyStart, || kind.to_string());
            // The proxy episode runs privileged code on the OMS on the AMS's
            // behalf, displacing the OMS's own working set from its L1 —
            // the same per-service charge as a local Ring 0 entry.  (No-op
            // while the cache model is disabled.)
            core.memory_mut().flush_cache(oms);

            // The OMS is occupied from the moment the request is outstanding
            // until it has restored the AMS context (Equation 3).
            core.stall(oms, now, oms_done);
            // The remaining AMSs of the processor observe an ordinary
            // serialization window (Equation 1).
            self.serialize_processor(core, proc_idx, Some(seq), now, priv_time);
            self.oms_busy_until[proc_idx] = oms_done;

            let fabric = self.fabric.as_mut().expect("platform initialized");
            fabric.send(
                oms,
                seq,
                SignalKind::ProxyComplete,
                oms_done.saturating_sub(signal),
            );
            core.log_event_with(oms, LogKind::ProxyDone, || kind.to_string());
            // The faulting shred resumes once its context has been handed back
            // (Equation 2 plus the privileged service time).
            oms_done
        }
    }

    fn on_timer_tick(&mut self, core: &mut EngineCore, cpu: SequencerId, tick: u64, now: Cycles) {
        let proc_idx = self.processor_index(cpu);
        let oms = self.topology.processors()[proc_idx].oms();
        debug_assert_eq!(cpu, oms, "timer ticks are delivered to OMSs only");
        core.log_event_with(oms, LogKind::TimerTick, || format!("tick {tick}"));
        core.stats_mut().record_event(oms, OsEventKind::Timer, true);
        core.kernel_mut().record_event(OsEventKind::Timer);
        let mut priv_time = core.kernel().service_cost(OsEventKind::Timer);
        if core.config().timer.is_other_interrupt_tick(tick) {
            core.stats_mut()
                .record_event(oms, OsEventKind::OtherInterrupt, true);
            core.kernel_mut().record_event(OsEventKind::OtherInterrupt);
            priv_time += core.kernel().service_cost(OsEventKind::OtherInterrupt);
        }

        let ams_count = self.topology.processors()[proc_idx].ams().len();
        let switch = self
            .scheduler
            .as_mut()
            .expect("platform initialized")
            .cpu_mut(proc_idx)
            .on_tick();

        if let Some((prev, next)) = switch {
            priv_time += core.kernel().context_switch_cost(ams_count);
            core.stats_mut().context_switches += 1;
            core.log_event_with(oms, LogKind::ContextSwitch, || format!("{prev} -> {next}"));
            self.evict_thread(core, proc_idx, prev, now);
            let signal = core.costs().signal_cycles();
            let oms_at = now + priv_time;
            let ams_at = now + signal * 2 + priv_time;
            self.install_thread(core, proc_idx, next, oms_at, ams_at);
            self.oms_busy_until[proc_idx] = oms_at;
        } else {
            // Plain tick: the OMS loses the service time and the AMSs observe
            // a serialization window.
            core.stall(oms, now, now + priv_time);
            self.serialize_processor(core, proc_idx, None, now, priv_time);
            self.oms_busy_until[proc_idx] = self.oms_busy_until[proc_idx].max(now + priv_time);
        }

        let next_tick = core.config().timer.next_tick_after(now);
        if next_tick != Cycles::MAX {
            core.schedule_timer(cpu, next_tick, tick + 1);
        }
    }

    fn on_signal(
        &mut self,
        core: &mut EngineCore,
        from: SequencerId,
        target: SequencerId,
        continuation: &Continuation,
        now: Cycles,
    ) -> Cycles {
        let from_proc = self.processor_index(from);
        let Some(target_proc) = self.topology.processor_index_of(target) else {
            core.log_event(
                from,
                LogKind::SignalSent,
                format!("invalid target {target}"),
            );
            return now;
        };
        if from_proc != target_proc {
            // SIDs are local to the MISP processor (Section 2.4); a
            // cross-processor SIGNAL is ignored, as unknown SIDs would be.
            core.log_event(
                from,
                LogKind::SignalSent,
                format!("cross-processor signal to {target} dropped"),
            );
            return now;
        }
        let arrival = self.fabric.as_mut().expect("platform initialized").send(
            from,
            target,
            SignalKind::ShredStart,
            now,
        );
        let Some(thread) = core.sequencers().bound_thread(from) else {
            return now;
        };
        let Some(pid) = core.kernel().thread(thread).map(|t| t.process()) else {
            return now;
        };
        let shred = core.create_shred(pid, thread, continuation.program(), now);
        if core.sequencers().is_idle(target) {
            core.sequencers_mut().set_current_shred(target, Some(shred));
            if let Some(s) = core.shred_mut(shred) {
                s.set_status(ShredStatus::Running);
            }
            core.schedule_ready(target, arrival);
        }
        // The sender continues at the instruction after SIGNAL immediately.
        now
    }

    fn on_register_handler(
        &mut self,
        core: &mut EngineCore,
        seq: SequencerId,
        now: Cycles,
    ) -> Cycles {
        let registry = self.registry.as_mut().expect("platform initialized");
        registry.register(seq, TriggerKind::ProxyRequest);
        registry.register(seq, TriggerKind::IngressSignal);
        now + core.costs().yield_transfer
    }
}
