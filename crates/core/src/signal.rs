//! The inter-sequencer signaling fabric.
//!
//! The `SIGNAL` instruction (Section 2.4) is the user-level dual of the
//! inter-processor interrupt: it delivers a shred continuation to a
//! destination sequencer within the same MISP processor.  The fabric also
//! carries the architecture's internal signals: the suspend/resume broadcasts
//! used to serialize AMSs across OMS ring transitions, and the proxy-execution
//! request/completion pairs.

use misp_types::{CostModel, Cycles, SequencerId};
use serde::{Deserialize, Serialize};

/// The purpose of an inter-sequencer signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignalKind {
    /// A user-level `SIGNAL` carrying a shred continuation.
    ShredStart,
    /// Suspend broadcast sent by the OMS before it executes in Ring 0.
    Suspend,
    /// Resume broadcast sent when the OMS returns to Ring 3.
    Resume,
    /// Proxy-execution request sent from a faulting AMS to its OMS.
    ProxyRequest,
    /// Proxy-execution completion: the OMS hands the restored context back to
    /// the AMS.
    ProxyComplete,
}

impl SignalKind {
    /// The kind's dense index into the fabric's counter array.
    #[must_use]
    const fn counter_index(self) -> usize {
        match self {
            SignalKind::ShredStart => 0,
            SignalKind::Suspend => 1,
            SignalKind::Resume => 2,
            SignalKind::ProxyRequest => 3,
            SignalKind::ProxyComplete => 4,
        }
    }
}

/// A record of one signal sent over the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignalRecord {
    /// The sending sequencer.
    pub from: SequencerId,
    /// The destination sequencer.
    pub to: SequencerId,
    /// The purpose of the signal.
    pub kind: SignalKind,
    /// When the signal was sent.
    pub sent_at: Cycles,
    /// When the signal arrives at the destination.
    pub arrives_at: Cycles,
}

/// The signaling fabric of one MISP machine.
///
/// The fabric charges the configured signal latency to every delivery and
/// keeps per-kind counters (plus an optional bounded history) so experiments
/// can verify how many signals each mechanism generated.
///
/// # Examples
///
/// ```
/// use misp_core::{SignalFabric, SignalKind};
/// use misp_types::{CostModel, Cycles, SequencerId};
///
/// let mut fabric = SignalFabric::new(CostModel::default());
/// let arrival = fabric.send(
///     SequencerId::new(1),
///     SequencerId::new(0),
///     SignalKind::ProxyRequest,
///     Cycles::new(1_000),
/// );
/// assert_eq!(arrival, Cycles::new(6_000)); // 5000-cycle microcode signal
/// assert_eq!(fabric.count(SignalKind::ProxyRequest), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SignalFabric {
    costs: CostModel,
    counts: [(SignalKind, u64); 5],
    history: Vec<SignalRecord>,
    keep_history: bool,
    history_cap: usize,
}

impl SignalFabric {
    /// Creates a fabric with the given cost model and history recording
    /// disabled.
    #[must_use]
    pub fn new(costs: CostModel) -> Self {
        SignalFabric {
            costs,
            counts: [
                (SignalKind::ShredStart, 0),
                (SignalKind::Suspend, 0),
                (SignalKind::Resume, 0),
                (SignalKind::ProxyRequest, 0),
                (SignalKind::ProxyComplete, 0),
            ],
            history: Vec::new(),
            keep_history: false,
            history_cap: 10_000,
        }
    }

    /// Enables recording of individual signal records (bounded).
    pub fn enable_history(&mut self) {
        self.keep_history = true;
    }

    /// The signal latency charged per delivery.
    #[must_use]
    pub fn latency(&self) -> Cycles {
        self.costs.signal_cycles()
    }

    /// Sends a signal at `now`, returning its arrival time at the
    /// destination.
    pub fn send(
        &mut self,
        from: SequencerId,
        to: SequencerId,
        kind: SignalKind,
        now: Cycles,
    ) -> Cycles {
        let arrives_at = now + self.latency();
        self.counts[kind.counter_index()].1 += 1;
        if self.keep_history && self.history.len() < self.history_cap {
            self.history.push(SignalRecord {
                from,
                to,
                kind,
                sent_at: now,
                arrives_at,
            });
        }
        arrives_at
    }

    /// Broadcasts a signal from `from` to every sequencer in `targets`,
    /// returning the common arrival time.  The paper assumes all AMSs can be
    /// signaled simultaneously (Section 5.1), so a broadcast costs one signal
    /// latency regardless of fan-out.
    pub fn broadcast(
        &mut self,
        from: SequencerId,
        targets: &[SequencerId],
        kind: SignalKind,
        now: Cycles,
    ) -> Cycles {
        let mut arrival = now + self.latency();
        for &t in targets {
            arrival = self.send(from, t, kind, now);
        }
        arrival
    }

    /// Number of signals sent with the given kind.
    #[must_use]
    pub fn count(&self, kind: SignalKind) -> u64 {
        self.counts[kind.counter_index()].1
    }

    /// Total signals sent across all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|(_, c)| *c).sum()
    }

    /// The recorded signal history (empty unless enabled).
    #[must_use]
    pub fn history(&self) -> &[SignalRecord] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use misp_types::SignalCost;

    #[test]
    fn send_charges_latency_and_counts() {
        let costs = CostModel::builder()
            .signal(SignalCost::Aggressive500)
            .build();
        let mut f = SignalFabric::new(costs);
        let arrival = f.send(
            SequencerId::new(0),
            SequencerId::new(1),
            SignalKind::Suspend,
            Cycles::new(100),
        );
        assert_eq!(arrival, Cycles::new(600));
        assert_eq!(f.count(SignalKind::Suspend), 1);
        assert_eq!(f.count(SignalKind::Resume), 0);
        assert_eq!(f.total(), 1);
        assert_eq!(f.latency(), Cycles::new(500));
    }

    #[test]
    fn broadcast_counts_every_target_but_costs_one_latency() {
        let mut f = SignalFabric::new(CostModel::default());
        let targets: Vec<SequencerId> = (1..8).map(SequencerId::new).collect();
        let arrival = f.broadcast(
            SequencerId::new(0),
            &targets,
            SignalKind::Suspend,
            Cycles::ZERO,
        );
        assert_eq!(arrival, Cycles::new(5_000), "simultaneous broadcast");
        assert_eq!(f.count(SignalKind::Suspend), 7);
    }

    #[test]
    fn broadcast_to_no_targets_still_returns_latency() {
        let mut f = SignalFabric::new(CostModel::default());
        let arrival = f.broadcast(
            SequencerId::new(0),
            &[],
            SignalKind::Resume,
            Cycles::new(10),
        );
        assert_eq!(arrival, Cycles::new(5_010));
        assert_eq!(f.count(SignalKind::Resume), 0);
    }

    #[test]
    fn history_is_opt_in_and_records_endpoints() {
        let mut f = SignalFabric::new(CostModel::default());
        f.send(
            SequencerId::new(2),
            SequencerId::new(0),
            SignalKind::ProxyRequest,
            Cycles::new(7),
        );
        assert!(f.history().is_empty());
        f.enable_history();
        f.send(
            SequencerId::new(2),
            SequencerId::new(0),
            SignalKind::ProxyRequest,
            Cycles::new(9),
        );
        assert_eq!(f.history().len(), 1);
        let r = f.history()[0];
        assert_eq!(r.from, SequencerId::new(2));
        assert_eq!(r.to, SequencerId::new(0));
        assert_eq!(r.sent_at, Cycles::new(9));
        assert_eq!(r.arrives_at, Cycles::new(5_009));
    }

    #[test]
    fn ideal_signal_cost_is_free() {
        let costs = CostModel::builder().signal(SignalCost::Ideal).build();
        let mut f = SignalFabric::new(costs);
        let arrival = f.send(
            SequencerId::new(0),
            SequencerId::new(1),
            SignalKind::ShredStart,
            Cycles::new(42),
        );
        assert_eq!(arrival, Cycles::new(42));
    }
}
