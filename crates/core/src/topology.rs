//! MISP machine topologies.

use misp_types::{MispError, MispProcessorId, Result, SequencerId};
use serde::{Deserialize, Serialize};

/// One MISP processor: an OS-managed sequencer plus its application-managed
/// sequencers.  To the OS the whole group appears as a single logical CPU.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MispProcessor {
    id: MispProcessorId,
    oms: SequencerId,
    ams: Vec<SequencerId>,
}

impl MispProcessor {
    /// The processor identifier.
    #[must_use]
    pub fn id(&self) -> MispProcessorId {
        self.id
    }

    /// The OS-managed sequencer.
    #[must_use]
    pub fn oms(&self) -> SequencerId {
        self.oms
    }

    /// The application-managed sequencers (possibly empty: a MISP processor
    /// with zero AMSs is an ordinary single-sequencer CPU).
    #[must_use]
    pub fn ams(&self) -> &[SequencerId] {
        &self.ams
    }

    /// All sequencers of this processor, the OMS first.
    #[must_use]
    pub fn sequencers(&self) -> Vec<SequencerId> {
        let mut v = Vec::with_capacity(1 + self.ams.len());
        v.push(self.oms);
        v.extend_from_slice(&self.ams);
        v
    }

    /// Returns `true` if `seq` belongs to this processor.
    #[must_use]
    pub fn contains(&self, seq: SequencerId) -> bool {
        self.oms == seq || self.ams.contains(&seq)
    }
}

/// The sequencer topology of a MISP machine: one or more MISP processors.
///
/// Sequencer identifiers are assigned densely in processor order, OMS first
/// within each processor, so the machine's total sequencer count equals the
/// highest identifier plus one.
///
/// The named constructors cover the configurations evaluated in the paper:
/// [`MispTopology::uniprocessor`] for the Figure 4 machine (1 OMS + 7 AMS) and
/// [`MispTopology::uniform`] / [`MispTopology::uneven`] for the multiprocessor
/// configurations of Figures 6 and 7 (4×2, 2×4, 1×8 and 1×4+4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MispTopology {
    processors: Vec<MispProcessor>,
}

impl MispTopology {
    /// Builds a topology from a list of per-processor AMS counts.
    ///
    /// `ams_counts[i]` is the number of AMSs of processor `i`; every processor
    /// always has exactly one OMS.
    ///
    /// # Errors
    ///
    /// Returns [`MispError::InvalidConfiguration`] if `ams_counts` is empty.
    pub fn uneven(ams_counts: &[usize]) -> Result<Self> {
        if ams_counts.is_empty() {
            return Err(MispError::InvalidConfiguration(
                "a MISP machine needs at least one processor".to_string(),
            ));
        }
        let mut processors = Vec::with_capacity(ams_counts.len());
        let mut next_seq = 0u32;
        for (i, &ams_count) in ams_counts.iter().enumerate() {
            let oms = SequencerId::new(next_seq);
            let first_ams = next_seq + 1;
            let ams: Vec<SequencerId> = (first_ams..first_ams + ams_count as u32)
                .map(SequencerId::new)
                .collect();
            next_seq = first_ams + ams_count as u32;
            processors.push(MispProcessor {
                id: MispProcessorId::new(i as u32),
                oms,
                ams,
            });
        }
        Ok(MispTopology { processors })
    }

    /// A machine of `processors` identical MISP processors with
    /// `ams_per_processor` AMSs each.
    ///
    /// # Errors
    ///
    /// Returns [`MispError::InvalidConfiguration`] if `processors` is zero.
    pub fn uniform(processors: usize, ams_per_processor: usize) -> Result<Self> {
        if processors == 0 {
            return Err(MispError::InvalidConfiguration(
                "a MISP machine needs at least one processor".to_string(),
            ));
        }
        Self::uneven(&vec![ams_per_processor; processors])
    }

    /// A MISP uniprocessor with one OMS and `ams` AMSs (Figure 1 uses 3, the
    /// Figure 4 evaluation uses 7).
    ///
    /// # Errors
    ///
    /// Never fails in practice; the `Result` keeps the constructor signature
    /// uniform with the other topology builders.
    pub fn uniprocessor(ams: usize) -> Result<Self> {
        Self::uniform(1, ams)
    }

    /// The 4×2 configuration of Figures 6 and 7: four MISP processors, each
    /// with one OMS and one AMS.
    #[must_use]
    pub fn config_4x2() -> Self {
        Self::uniform(4, 1).expect("static configuration is valid")
    }

    /// The 2×4 configuration of Figures 6 and 7: two MISP processors, each
    /// with one OMS and three AMSs.
    #[must_use]
    pub fn config_2x4() -> Self {
        Self::uniform(2, 3).expect("static configuration is valid")
    }

    /// The 1×8 configuration of Figures 6 and 7: one MISP processor with one
    /// OMS and seven AMSs.
    #[must_use]
    pub fn config_1x8() -> Self {
        Self::uniform(1, 7).expect("static configuration is valid")
    }

    /// The uneven `1×(1+ams) + singles` configurations of Figures 6 and 7: one
    /// MISP processor with `ams` AMSs plus `singles` single-sequencer
    /// processors (OMS only).  `config_uneven(3, 4)` is the paper's 1×4+4.
    #[must_use]
    pub fn config_uneven(ams: usize, singles: usize) -> Self {
        let mut counts = vec![ams];
        counts.extend(std::iter::repeat_n(0, singles));
        Self::uneven(&counts).expect("static configuration is valid")
    }

    /// The MISP processors of this machine.
    #[must_use]
    pub fn processors(&self) -> &[MispProcessor] {
        &self.processors
    }

    /// Total number of sequencers across all processors.
    #[must_use]
    pub fn total_sequencers(&self) -> usize {
        self.processors.iter().map(|p| 1 + p.ams.len()).sum()
    }

    /// Total number of AMSs across all processors.
    #[must_use]
    pub fn total_ams(&self) -> usize {
        self.processors.iter().map(|p| p.ams.len()).sum()
    }

    /// The processor that `seq` belongs to.
    #[must_use]
    pub fn processor_of(&self, seq: SequencerId) -> Option<&MispProcessor> {
        self.processors.iter().find(|p| p.contains(seq))
    }

    /// The index (within [`MispTopology::processors`]) of the processor that
    /// `seq` belongs to.
    #[must_use]
    pub fn processor_index_of(&self, seq: SequencerId) -> Option<usize> {
        self.processors.iter().position(|p| p.contains(seq))
    }

    /// Returns `true` if `seq` is an OS-managed sequencer.
    #[must_use]
    pub fn is_oms(&self, seq: SequencerId) -> bool {
        self.processors.iter().any(|p| p.oms == seq)
    }

    /// Returns `true` if `seq` is an application-managed sequencer.
    #[must_use]
    pub fn is_ams(&self, seq: SequencerId) -> bool {
        self.processors.iter().any(|p| p.ams.contains(&seq))
    }

    /// All OMSs, in processor order (these are the CPUs the OS sees).
    #[must_use]
    pub fn all_oms(&self) -> Vec<SequencerId> {
        self.processors.iter().map(|p| p.oms).collect()
    }

    /// A short human-readable description, e.g. `"2x(1+3)"` for the 2×4
    /// configuration.
    #[must_use]
    pub fn describe(&self) -> String {
        let counts: Vec<usize> = self.processors.iter().map(|p| p.ams.len()).collect();
        if counts.iter().all(|c| *c == counts[0]) {
            format!("{}x(1+{})", counts.len(), counts[0])
        } else {
            let parts: Vec<String> = counts.iter().map(|c| format!("1+{c}")).collect();
            parts.join(" , ")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniprocessor_matches_paper_figure1() {
        let t = MispTopology::uniprocessor(3).unwrap();
        assert_eq!(t.total_sequencers(), 4);
        assert_eq!(t.total_ams(), 3);
        let p = &t.processors()[0];
        assert_eq!(p.oms(), SequencerId::new(0));
        assert_eq!(
            p.ams(),
            &[
                SequencerId::new(1),
                SequencerId::new(2),
                SequencerId::new(3)
            ]
        );
        assert_eq!(p.sequencers().len(), 4);
        assert!(p.contains(SequencerId::new(2)));
        assert!(!p.contains(SequencerId::new(4)));
    }

    #[test]
    fn sequencer_ids_are_dense_and_unique_across_processors() {
        let t = MispTopology::uniform(3, 2).unwrap();
        let mut all: Vec<u32> = t
            .processors()
            .iter()
            .flat_map(|p| p.sequencers())
            .map(|s| s.index())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..9).collect::<Vec<u32>>());
    }

    #[test]
    fn named_configurations_have_eight_sequencers() {
        assert_eq!(MispTopology::config_4x2().total_sequencers(), 8);
        assert_eq!(MispTopology::config_2x4().total_sequencers(), 8);
        assert_eq!(MispTopology::config_1x8().total_sequencers(), 8);
        assert_eq!(MispTopology::config_uneven(3, 4).total_sequencers(), 8);
        assert_eq!(MispTopology::config_4x2().describe(), "4x(1+1)");
        assert_eq!(MispTopology::config_1x8().describe(), "1x(1+7)");
    }

    #[test]
    fn uneven_configuration_structure() {
        let t = MispTopology::config_uneven(3, 4);
        assert_eq!(t.processors().len(), 5);
        assert_eq!(t.processors()[0].ams().len(), 3);
        for p in &t.processors()[1..] {
            assert!(p.ams().is_empty());
        }
        assert!(t.describe().contains("1+3"));
    }

    #[test]
    fn role_queries() {
        let t = MispTopology::uniform(2, 1).unwrap();
        // Layout: P0 = {0 oms, 1 ams}, P1 = {2 oms, 3 ams}.
        assert!(t.is_oms(SequencerId::new(0)));
        assert!(t.is_ams(SequencerId::new(1)));
        assert!(t.is_oms(SequencerId::new(2)));
        assert!(t.is_ams(SequencerId::new(3)));
        assert!(!t.is_oms(SequencerId::new(9)));
        assert_eq!(t.processor_index_of(SequencerId::new(3)), Some(1));
        assert_eq!(
            t.processor_of(SequencerId::new(3)).unwrap().id(),
            MispProcessorId::new(1)
        );
        assert_eq!(t.processor_index_of(SequencerId::new(9)), None);
        assert_eq!(t.all_oms(), vec![SequencerId::new(0), SequencerId::new(2)]);
    }

    #[test]
    fn empty_configuration_is_rejected() {
        assert!(MispTopology::uneven(&[]).is_err());
        assert!(MispTopology::uniform(0, 3).is_err());
    }

    #[test]
    fn zero_ams_processor_is_allowed() {
        let t = MispTopology::uniprocessor(0).unwrap();
        assert_eq!(t.total_sequencers(), 1);
        assert_eq!(t.total_ams(), 0);
    }
}
