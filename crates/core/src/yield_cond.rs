//! The YIELD-CONDITIONAL trigger→response mechanism.
//!
//! Section 2.4 of the paper: a sequencer can set up a mapping from an
//! anticipated asynchronous event (an ingress inter-sequencer signal, or a
//! proxy-triggering fault relayed from an AMS) to a handler.  When the event
//! occurs, the sequencer performs a fly-weight asynchronous function call into
//! the handler and later resumes the interrupted shred.
//!
//! In the simulator the handler body is not user code; what matters
//! architecturally is *whether* a handler is registered (proxy execution
//! requires the OMS to have registered one — Figure 3's "Register Proxy
//! Handler" step) and the cost of the control transfer.

use misp_types::{Cycles, SequencerId};
use serde::{Deserialize, Serialize};

/// The class of asynchronous event a handler responds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TriggerKind {
    /// An ingress user-level signal (delivered by `SIGNAL`).
    IngressSignal,
    /// A proxy-execution request relayed from a faulting AMS.
    ProxyRequest,
}

/// Per-sequencer registry of trigger→response mappings.
///
/// With two trigger kinds and dense sequencer ids the registry is a flat
/// array indexed by `2 * sequencer + kind` — the proxy path consults it on
/// every relayed fault, so the lookup is a bounds check rather than a hash.
#[derive(Debug, Default, Clone)]
pub struct TriggerResponseRegistry {
    /// Registration count per `(sequencer, kind)` slot; 0 means unregistered.
    handlers: Vec<u64>,
    invocations: u64,
    transfer_cost: Cycles,
}

/// The flat slot of a `(sequencer, kind)` pair.
#[inline]
fn slot_of(seq: SequencerId, kind: TriggerKind) -> usize {
    seq.as_usize() * 2
        + match kind {
            TriggerKind::IngressSignal => 0,
            TriggerKind::ProxyRequest => 1,
        }
}

impl TriggerResponseRegistry {
    /// Creates an empty registry whose asynchronous control transfers cost
    /// `transfer_cost` cycles each.
    #[must_use]
    pub fn new(transfer_cost: Cycles) -> Self {
        TriggerResponseRegistry {
            handlers: Vec::new(),
            invocations: 0,
            transfer_cost,
        }
    }

    /// Registers (or re-registers) a handler for `kind` on `seq`.
    pub fn register(&mut self, seq: SequencerId, kind: TriggerKind) {
        let slot = slot_of(seq, kind);
        if slot >= self.handlers.len() {
            self.handlers.resize(slot + 1, 0);
        }
        self.handlers[slot] += 1;
    }

    /// Returns `true` if `seq` has a handler registered for `kind`.
    #[must_use]
    pub fn is_registered(&self, seq: SequencerId, kind: TriggerKind) -> bool {
        self.handlers
            .get(slot_of(seq, kind))
            .is_some_and(|&n| n > 0)
    }

    /// Invokes the handler for `kind` on `seq` at `now`, returning the time at
    /// which the handler body may begin (after the fly-weight control
    /// transfer).  Returns `None` if no handler is registered — the caller
    /// decides whether that is an error (for proxy requests it is).
    pub fn invoke(&mut self, seq: SequencerId, kind: TriggerKind, now: Cycles) -> Option<Cycles> {
        if self.is_registered(seq, kind) {
            self.invocations += 1;
            Some(now + self.transfer_cost)
        } else {
            None
        }
    }

    /// Total number of successful handler invocations.
    #[must_use]
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// The fly-weight control-transfer cost.
    #[must_use]
    pub fn transfer_cost(&self) -> Cycles {
        self.transfer_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_invoke() {
        let mut r = TriggerResponseRegistry::new(Cycles::new(200));
        let oms = SequencerId::new(0);
        assert!(!r.is_registered(oms, TriggerKind::ProxyRequest));
        r.register(oms, TriggerKind::ProxyRequest);
        assert!(r.is_registered(oms, TriggerKind::ProxyRequest));
        assert_eq!(
            r.invoke(oms, TriggerKind::ProxyRequest, Cycles::new(1_000)),
            Some(Cycles::new(1_200))
        );
        assert_eq!(r.invocations(), 1);
        assert_eq!(r.transfer_cost(), Cycles::new(200));
    }

    #[test]
    fn invoke_without_registration_returns_none() {
        let mut r = TriggerResponseRegistry::new(Cycles::new(100));
        assert_eq!(
            r.invoke(
                SequencerId::new(0),
                TriggerKind::IngressSignal,
                Cycles::ZERO
            ),
            None
        );
        assert_eq!(r.invocations(), 0);
    }

    #[test]
    fn registration_is_per_sequencer_and_per_kind() {
        let mut r = TriggerResponseRegistry::new(Cycles::new(1));
        r.register(SequencerId::new(0), TriggerKind::ProxyRequest);
        assert!(!r.is_registered(SequencerId::new(1), TriggerKind::ProxyRequest));
        assert!(!r.is_registered(SequencerId::new(0), TriggerKind::IngressSignal));
        // Re-registration is allowed (idempotent from the caller's view).
        r.register(SequencerId::new(0), TriggerKind::ProxyRequest);
        assert!(r.is_registered(SequencerId::new(0), TriggerKind::ProxyRequest));
    }
}
