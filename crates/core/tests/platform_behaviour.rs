//! Behavioural tests of the MISP platform: exact costs and effects of proxy
//! execution, Ring 0 serialization, user-level signaling and the ring-policy
//! ablation, measured through small, fully-controlled machines.

use misp_core::{MispMachine, MispTopology, RingPolicy, SignalKind};
use misp_isa::{Continuation, Op, ProgramBuilder, ProgramLibrary, SyscallKind};
use misp_os::TimerConfig;
use misp_sim::{SimConfig, SimReport, SingleShredRuntime};
use misp_types::{CostModel, Cycles, SequencerId, SignalCost, VirtAddr};

/// A configuration with the timer disabled and round numbers for every cost,
/// so the expected stall windows can be asserted exactly.
fn exact_config() -> SimConfig {
    SimConfig {
        costs: CostModel::builder()
            .signal(SignalCost::Microcode5000)
            .page_fault_service(Cycles::new(8_000))
            .syscall_service(Cycles::new(3_000))
            .yield_transfer(Cycles::new(200))
            .build(),
        timer: TimerConfig::disabled(),
        ..SimConfig::default()
    }
}

/// Builds and runs a machine in which the main shred (on the OMS) registers
/// the proxy handler, starts the given programs on AMSs via `SIGNAL`, and
/// computes for a long time so it never needs the AMSs' sequencers.
fn run_with_signalled_shreds(
    ams_count: usize,
    programs: Vec<misp_isa::ShredProgram>,
    policy: RingPolicy,
) -> SimReport {
    let mut library = ProgramLibrary::new();
    let mut refs = Vec::new();
    for p in programs {
        refs.push(library.insert(p));
    }
    let mut main = ProgramBuilder::new("main").op(Op::RegisterHandler);
    for (i, r) in refs.iter().enumerate() {
        main = main.op(Op::Signal {
            target: SequencerId::new(i as u32 + 1),
            continuation: Continuation::for_program(*r),
        });
    }
    main = main.compute(Cycles::new(50_000_000));
    let main_ref = library.insert(main.build());

    let topology = MispTopology::uniprocessor(ams_count).unwrap();
    let mut machine = MispMachine::new(topology, exact_config(), library);
    machine.engine_mut().platform_mut().set_policy(policy);
    machine.add_process("test", Box::new(SingleShredRuntime::new(main_ref)), Some(0));
    machine.run().unwrap()
}

#[test]
fn proxy_execution_charges_the_paper_equations_exactly() {
    // One AMS touches a fresh page (a single proxy execution); a second AMS
    // computes throughout and observes exactly one serialization window.
    let toucher = ProgramBuilder::new("toucher")
        .compute(Cycles::new(100_000))
        .load(VirtAddr::new(0x7000_0000))
        .compute(Cycles::new(100_000))
        .build();
    let computer = ProgramBuilder::new("computer")
        .compute(Cycles::new(30_000_000))
        .build();
    let report = run_with_signalled_shreds(2, vec![toucher, computer], RingPolicy::SuspendAll);

    assert_eq!(report.stats.proxy_executions, 1);
    assert_eq!(report.stats.ams_events.page_faults, 1);
    assert_eq!(report.stats.oms_events.page_faults, 0);

    // Equation 3 (+ the fly-weight handler transfer): the OMS is occupied for
    // signal + yield + 2*signal + priv = 5000 + 200 + 10000 + 8000 = 23,200.
    assert_eq!(
        report.stats.per_sequencer[0].stalled,
        Cycles::new(23_200),
        "OMS proxy-ingress overhead must match Equation 3"
    );
    // Equation 1: the *other* AMS is suspended for 2*signal + priv = 18,000.
    assert_eq!(
        report.stats.per_sequencer[2].stalled,
        Cycles::new(18_000),
        "bystander AMS serialization must match Equation 1"
    );
    // The faulting AMS is not double-counted as stalled; its delay shows up in
    // its completion time instead.
    assert_eq!(report.stats.per_sequencer[1].stalled, Cycles::ZERO);
    assert_eq!(report.stats.serializations, 1);
}

#[test]
fn oms_syscall_suspends_running_ams_for_the_serialization_window() {
    // The AMS computes while the OMS performs one system call.
    let worker = ProgramBuilder::new("worker")
        .compute(Cycles::new(30_000_000))
        .build();
    let mut library = ProgramLibrary::new();
    let worker_ref = library.insert(worker);
    let main = library.insert(
        ProgramBuilder::new("main")
            .op(Op::RegisterHandler)
            .op(Op::Signal {
                target: SequencerId::new(1),
                continuation: Continuation::for_program(worker_ref),
            })
            .compute(Cycles::new(1_000_000))
            .syscall(SyscallKind::Io)
            .compute(Cycles::new(1_000_000))
            .build(),
    );
    let topology = MispTopology::uniprocessor(1).unwrap();
    let mut machine = MispMachine::new(topology, exact_config(), library);
    machine.add_process("test", Box::new(SingleShredRuntime::new(main)), Some(0));
    let report = machine.run().unwrap();

    assert_eq!(report.stats.oms_events.syscalls, 1);
    // Equation 1 with priv = syscall service (3,000): 2*5000 + 3000 = 13,000.
    assert_eq!(report.stats.per_sequencer[1].stalled, Cycles::new(13_000));
    assert_eq!(report.stats.serializations, 1);
    assert_eq!(report.stats.proxy_executions, 0);
}

#[test]
fn speculative_ring_policy_eliminates_bystander_stalls() {
    let toucher = ProgramBuilder::new("toucher")
        .load(VirtAddr::new(0x7100_0000))
        .compute(Cycles::new(1_000_000))
        .build();
    let computer = ProgramBuilder::new("computer")
        .compute(Cycles::new(30_000_000))
        .build();
    let report = run_with_signalled_shreds(2, vec![toucher, computer], RingPolicy::Speculative);
    // Proxy execution still happens (the AMS cannot run Ring 0 code), but the
    // bystander AMS is never suspended and no serialization is recorded.
    assert_eq!(report.stats.proxy_executions, 1);
    assert_eq!(report.stats.per_sequencer[2].stalled, Cycles::ZERO);
    assert_eq!(report.stats.serializations, 0);
}

#[test]
fn signal_starts_shreds_and_fabric_counts_every_message() {
    let a = ProgramBuilder::new("a")
        .compute(Cycles::new(1_000_000))
        .build();
    let b = ProgramBuilder::new("b")
        .load(VirtAddr::new(0x7200_0000))
        .compute(Cycles::new(1_000_000))
        .build();
    let report = run_with_signalled_shreds(2, vec![a, b], RingPolicy::SuspendAll);
    assert_eq!(
        report.stats.signals_sent, 2,
        "two user-level SIGNALs issued"
    );
    // Both signalled shreds ran to completion on their AMSs.
    assert!(report.stats.per_sequencer[1].busy >= Cycles::new(1_000_000));
    assert!(report.stats.per_sequencer[2].busy >= Cycles::new(1_000_000));
}

#[test]
fn fabric_records_proxy_and_shred_start_traffic() {
    let toucher = ProgramBuilder::new("toucher")
        .load(VirtAddr::new(0x7300_0000))
        .build();
    let mut library = ProgramLibrary::new();
    let toucher_ref = library.insert(toucher);
    let main = library.insert(
        ProgramBuilder::new("main")
            .op(Op::RegisterHandler)
            .op(Op::Signal {
                target: SequencerId::new(1),
                continuation: Continuation::for_program(toucher_ref),
            })
            .compute(Cycles::new(10_000_000))
            .build(),
    );
    let topology = MispTopology::uniprocessor(3).unwrap();
    let mut machine = MispMachine::new(topology, exact_config(), library);
    machine.add_process("test", Box::new(SingleShredRuntime::new(main)), Some(0));
    let report = machine.run().unwrap();
    let fabric = machine.engine().platform().fabric().expect("initialized");
    assert_eq!(fabric.count(SignalKind::ShredStart), 1);
    assert_eq!(fabric.count(SignalKind::ProxyRequest), 1);
    assert_eq!(fabric.count(SignalKind::ProxyComplete), 1);
    // The suspend/resume broadcast reached the two bystander AMSs.
    assert_eq!(fabric.count(SignalKind::Suspend), 2);
    assert_eq!(fabric.count(SignalKind::Resume), 2);
    assert_eq!(report.stats.proxy_executions, 1);
}

#[test]
fn cross_processor_signal_is_dropped() {
    let worker = ProgramBuilder::new("worker")
        .compute(Cycles::new(1_000))
        .build();
    let mut library = ProgramLibrary::new();
    let worker_ref = library.insert(worker);
    // Sequencer 2 is the OMS of the *second* MISP processor: an invalid SID
    // for a SIGNAL issued on processor 0.
    let main = library.insert(
        ProgramBuilder::new("main")
            .op(Op::Signal {
                target: SequencerId::new(2),
                continuation: Continuation::for_program(worker_ref),
            })
            .compute(Cycles::new(100_000))
            .build(),
    );
    let topology = MispTopology::uniform(2, 1).unwrap();
    let mut machine = MispMachine::new(topology, exact_config(), library);
    machine.add_process("test", Box::new(SingleShredRuntime::new(main)), Some(0));
    let report = machine.run().unwrap();
    assert_eq!(
        report.stats.signals_sent, 1,
        "the SIGNAL instruction executed"
    );
    // ...but no shred was created or run anywhere else.
    assert_eq!(machine.engine().core().shreds().len(), 1);
    assert_eq!(report.stats.per_sequencer[2].busy, Cycles::ZERO);
}

#[test]
#[should_panic(expected = "no proxy handler is registered")]
fn proxy_without_registered_handler_is_a_hard_error() {
    let toucher = ProgramBuilder::new("toucher")
        .load(VirtAddr::new(0x7400_0000))
        .build();
    let mut library = ProgramLibrary::new();
    let toucher_ref = library.insert(toucher);
    // Note: no Op::RegisterHandler in the main program.
    let main = library.insert(
        ProgramBuilder::new("main")
            .op(Op::Signal {
                target: SequencerId::new(1),
                continuation: Continuation::for_program(toucher_ref),
            })
            .compute(Cycles::new(10_000_000))
            .build(),
    );
    let topology = MispTopology::uniprocessor(1).unwrap();
    let mut machine = MispMachine::new(topology, exact_config(), library);
    machine
        .engine_mut()
        .platform_mut()
        .disable_auto_proxy_registration();
    machine.add_process("test", Box::new(SingleShredRuntime::new(main)), Some(0));
    let _ = machine.run();
}

#[test]
fn explicit_handler_registration_enables_proxy_execution() {
    let toucher = ProgramBuilder::new("toucher")
        .load(VirtAddr::new(0x7500_0000))
        .build();
    let mut library = ProgramLibrary::new();
    let toucher_ref = library.insert(toucher);
    let main = library.insert(
        ProgramBuilder::new("main")
            .op(Op::RegisterHandler)
            .op(Op::Signal {
                target: SequencerId::new(1),
                continuation: Continuation::for_program(toucher_ref),
            })
            .compute(Cycles::new(10_000_000))
            .build(),
    );
    let topology = MispTopology::uniprocessor(1).unwrap();
    let mut machine = MispMachine::new(topology, exact_config(), library);
    machine
        .engine_mut()
        .platform_mut()
        .disable_auto_proxy_registration();
    machine.add_process("test", Box::new(SingleShredRuntime::new(main)), Some(0));
    let report = machine.run().unwrap();
    assert_eq!(report.stats.proxy_executions, 1);
    let registry = machine.engine().platform().registry().expect("initialized");
    assert!(registry.invocations() >= 1);
}

#[test]
fn larger_signal_costs_stretch_every_window_proportionally() {
    let toucher = ProgramBuilder::new("toucher")
        .load(VirtAddr::new(0x7600_0000))
        .compute(Cycles::new(100_000))
        .build();
    let computer = ProgramBuilder::new("computer")
        .compute(Cycles::new(30_000_000))
        .build();

    let run = |signal: SignalCost| {
        let mut library = ProgramLibrary::new();
        let t = library.insert(toucher.clone());
        let c = library.insert(computer.clone());
        let main = library.insert(
            ProgramBuilder::new("main")
                .op(Op::RegisterHandler)
                .op(Op::Signal {
                    target: SequencerId::new(1),
                    continuation: Continuation::for_program(t),
                })
                .op(Op::Signal {
                    target: SequencerId::new(2),
                    continuation: Continuation::for_program(c),
                })
                .compute(Cycles::new(50_000_000))
                .build(),
        );
        let config = SimConfig {
            costs: CostModel::builder()
                .signal(signal)
                .page_fault_service(Cycles::new(8_000))
                .yield_transfer(Cycles::new(200))
                .build(),
            timer: TimerConfig::disabled(),
            ..SimConfig::default()
        };
        let mut machine = MispMachine::new(MispTopology::uniprocessor(2).unwrap(), config, library);
        machine.add_process("test", Box::new(SingleShredRuntime::new(main)), Some(0));
        machine.run().unwrap()
    };

    let r500 = run(SignalCost::Aggressive500);
    let r5000 = run(SignalCost::Microcode5000);
    // Bystander AMS window: 2*signal + priv.
    assert_eq!(r500.stats.per_sequencer[2].stalled, Cycles::new(9_000));
    assert_eq!(r5000.stats.per_sequencer[2].stalled, Cycles::new(18_000));
    // OMS window: 3*signal + yield + priv.
    assert_eq!(r500.stats.per_sequencer[0].stalled, Cycles::new(9_700));
    assert_eq!(r5000.stats.per_sequencer[0].stalled, Cycles::new(23_200));
}

#[test]
fn mp_machine_isolates_ring_transitions_to_their_own_processor() {
    // Two MISP processors, each with one AMS.  A syscall-heavy process on
    // processor 0 must never stall the AMS of processor 1.
    let mut library = ProgramLibrary::new();
    let noisy_worker = library.insert(
        ProgramBuilder::new("noisy-worker")
            .compute(Cycles::new(20_000_000))
            .build(),
    );
    let noisy = library.insert(
        ProgramBuilder::new("noisy")
            .op(Op::RegisterHandler)
            .op(Op::Signal {
                target: SequencerId::new(1),
                continuation: Continuation::for_program(noisy_worker),
            })
            .repeat(50, |b| {
                b.compute(Cycles::new(10_000)).syscall(SyscallKind::Io)
            })
            .build(),
    );
    let quiet_worker = library.insert(
        ProgramBuilder::new("quiet-worker")
            .compute(Cycles::new(20_000_000))
            .build(),
    );
    let quiet = library.insert(
        ProgramBuilder::new("quiet")
            .op(Op::RegisterHandler)
            .op(Op::Signal {
                target: SequencerId::new(3),
                continuation: Continuation::for_program(quiet_worker),
            })
            .compute(Cycles::new(20_000_000))
            .build(),
    );

    let topology = MispTopology::uniform(2, 1).unwrap();
    let mut machine = MispMachine::new(topology, exact_config(), library);
    machine.add_process("noisy", Box::new(SingleShredRuntime::new(noisy)), Some(0));
    machine.add_process("quiet", Box::new(SingleShredRuntime::new(quiet)), Some(1));
    let report = machine.run().unwrap();

    assert_eq!(report.stats.oms_events.syscalls, 50);
    // Processor 0's AMS (sequencer 1) was stalled by every syscall ...
    assert_eq!(
        report.stats.per_sequencer[1].stalled,
        Cycles::new(50 * 13_000)
    );
    // ... while processor 1's AMS (sequencer 3) was never disturbed.
    assert_eq!(report.stats.per_sequencer[3].stalled, Cycles::ZERO);
}
