//! Sidecar observability artifacts: the interval-metrics JSONL stream and
//! the Chrome-trace/Perfetto export.
//!
//! The results document ([`crate::SweepResults`]) carries only *summaries*
//! of a run's observability data (counts and digests); the bulk data is
//! written to sidecar files by the helpers here.  Both artifact forms are
//! deterministic: each simulation run is internally single-threaded and the
//! harness emits runs in grid order, so the bytes are identical for any
//! `--threads` value — the determinism suite asserts exactly that.

use crate::exec::RunArtifacts;
use misp_trace::{IntervalSample, MetricsReport, TraceReport};
use serde::{Deserialize, Serialize};

/// One line of the interval-metrics JSONL stream: a run identifier plus the
/// flattened [`IntervalSample`].  Lines are self-describing — the `run`
/// field makes the stream commutatively mergeable across harness shards
/// (concatenate, then group by `run`; each run's lines are already
/// time-ascending).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsLine {
    /// Grid-point id the sample belongs to.
    pub run: String,
    /// End of the sampled interval, in simulated cycles.
    pub t: u64,
    /// Busy sequencer-cycles accrued during the interval.
    pub busy: u64,
    /// Stalled sequencer-cycles accrued during the interval.
    pub stalled: u64,
    /// Abstract operations executed during the interval.
    pub ops: u64,
    /// Event-queue occupancy at the sample instant.
    pub queue_len: u64,
    /// Ready (runnable, unscheduled) shreds at the sample instant.
    pub ready_shreds: u64,
    /// TLB hits during the interval.
    pub tlb_hits: u64,
    /// TLB misses during the interval.
    pub tlb_misses: u64,
    /// Memory-level cache misses during the interval (0 with the cache model
    /// off).
    pub cache_misses: u64,
    /// Outstanding service requests (admitted − completed − dropped) at the
    /// sample instant; 0 for non-scenario runs.
    pub service_outstanding: u64,
}

impl MetricsLine {
    /// Tags one sample with its run id.
    #[must_use]
    pub fn new(run: &str, sample: &IntervalSample) -> Self {
        MetricsLine {
            run: run.to_string(),
            t: sample.t,
            busy: sample.busy,
            stalled: sample.stalled,
            ops: sample.ops,
            queue_len: sample.queue_len,
            ready_shreds: sample.ready_shreds,
            tlb_hits: sample.tlb_hits,
            tlb_misses: sample.tlb_misses,
            cache_misses: sample.cache_misses,
            service_outstanding: sample.service_outstanding,
        }
    }
}

/// Appends one run's samples to a JSONL stream, one line per interval.
///
/// # Errors
///
/// Propagates serialization and I/O failures from the line writer.
pub fn append_metrics_jsonl<W: std::io::Write>(
    writer: &mut serde_json::LineWriter<W>,
    run_id: &str,
    report: &MetricsReport,
) -> Result<(), serde_json::Error> {
    for sample in &report.samples {
        writer.write(&MetricsLine::new(run_id, sample))?;
    }
    Ok(())
}

/// Serializes a whole sweep's interval metrics as one JSONL byte stream, in
/// grid order — the exact bytes `sweep --metrics-interval` writes, exposed
/// for the determinism tests.
///
/// # Errors
///
/// Propagates serialization failures.
pub fn metrics_jsonl(
    records: &[crate::RunRecord],
    artifacts: &[RunArtifacts],
) -> Result<Vec<u8>, serde_json::Error> {
    let mut writer = serde_json::LineWriter::new(Vec::new());
    for (record, artifact) in records.iter().zip(artifacts) {
        if let Some(metrics) = &artifact.metrics {
            append_metrics_jsonl(&mut writer, &record.id, metrics)?;
        }
    }
    Ok(writer.into_inner())
}

/// Renders a trace report as Chrome-trace/Perfetto JSON (one process per
/// sequencer, one thread per event lane); load the file in
/// <https://ui.perfetto.dev> or `chrome://tracing`.
#[must_use]
pub fn trace_json(report: &TraceReport) -> String {
    misp_trace::chrome_trace_json(&report.events)
}

/// Maps a grid-point id onto a filesystem-safe artifact file stem
/// (`"dense_mvm/misp"` → `"dense_mvm_misp"`).
#[must_use]
pub fn sanitize_run_id(id: &str) -> String {
    id.chars()
        .map(|c| match c {
            '/' | '\\' | ':' | ' ' => '_',
            c => c,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: u64) -> IntervalSample {
        IntervalSample {
            t,
            busy: 2 * t,
            ..IntervalSample::default()
        }
    }

    #[test]
    fn sanitizes_path_hostile_ids() {
        assert_eq!(sanitize_run_id("dense_mvm/misp"), "dense_mvm_misp");
        assert_eq!(sanitize_run_id("a:b c\\d"), "a_b_c_d");
        assert_eq!(sanitize_run_id("plain"), "plain");
    }

    #[test]
    fn jsonl_lines_are_self_describing_and_round_trip() {
        let report = MetricsReport {
            interval: 10,
            samples: vec![sample(10), sample(20)],
            digest: 0,
        };
        let mut writer = serde_json::LineWriter::new(Vec::new());
        append_metrics_jsonl(&mut writer, "g/p", &report).unwrap();
        let bytes = writer.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let back: MetricsLine = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(back.run, "g/p");
        assert_eq!(back.t, 20);
        assert_eq!(back.busy, 40);
    }

    #[test]
    fn sweep_level_stream_emits_runs_in_grid_order() {
        let report_a = MetricsReport {
            interval: 10,
            samples: vec![sample(10)],
            digest: 0,
        };
        let report_b = MetricsReport {
            interval: 10,
            samples: vec![sample(10)],
            digest: 0,
        };
        let mut records = Vec::new();
        let mut artifacts = Vec::new();
        for (id, report) in [("a", report_a), ("b", report_b)] {
            let record = crate::RunRecord {
                index: records.len() as u64,
                id: id.to_string(),
                kind: "sim".to_string(),
                workload: None,
                machine: None,
                workers: None,
                signal_cycles: None,
                pretouch: false,
                ring_policy: None,
                competitors: 0,
                ams_span_only: false,
                cache: None,
                seed: 0,
                baseline: None,
                sim: None,
                topology: None,
                port: None,
                scenario: None,
                offered_load: None,
                fleet: None,
            };
            records.push(record);
            artifacts.push(RunArtifacts {
                metrics: Some(report),
                ..RunArtifacts::default()
            });
        }
        let bytes = metrics_jsonl(&records, &artifacts).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let runs: Vec<String> = text
            .lines()
            .map(|l| serde_json::from_str::<MetricsLine>(l).unwrap().run)
            .collect();
        assert_eq!(runs, ["a", "b"]);
    }
}
