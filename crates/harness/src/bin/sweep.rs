//! `sweep` — run any named experiment grid from the command line.
//!
//! ```text
//! sweep <grid> [--threads N] [--out PATH] [--verify off|spot|full] [--stdout]
//!              [--offered-load PCT] [--trace] [--metrics-interval CYCLES]
//!              [--profile]
//! sweep --list
//! ```
//!
//! The document goes to `--out`, to stdout with `--stdout`, or to stdout by
//! default when no sink is named (the one-line run summary always goes to
//! stderr).
//!
//! `--offered-load` applies only to the `service_load` scenario grid: it
//! collapses every load axis of the grid to the given percentage of pool
//! capacity.  Naming it with any other grid is a usage error.
//!
//! Observability flags (both require `--out`, because their artifacts are
//! named after the results file):
//!
//! * `--trace` records a structured trace of every simulation run and writes
//!   one Chrome-trace/Perfetto JSON file per run under `<stem>-trace/`.
//! * `--metrics-interval CYCLES` samples interval metrics every `CYCLES`
//!   simulated cycles and streams them — one JSON object per line, in grid
//!   order — to `<stem>-metrics.jsonl`.
//! * `--profile` prints simulator self-profiling to stderr: wall-clock phase
//!   timers, aggregated event-queue statistics and allocator totals.  It
//!   changes nothing about the results document.
//!
//! The aggregated results document is deterministic: running the same grid
//! with any `--threads` value writes byte-identical JSON — and so are the
//! trace and metrics artifacts.  Golden files under `tests/goldens/` are
//! regenerated with `--out`.

use misp_harness::{artifacts, grids, run_grid_with_artifacts, SweepOptions, VerifyMode};
use std::alloc::{GlobalAlloc, Layout, System};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counting wrapper around the system allocator, feeding the `--profile`
/// allocator totals.  Two relaxed atomic adds per allocation — noise next to
/// the allocation itself — so it is unconditionally installed.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method delegates to `System` unchanged after bumping two
// relaxed atomics, so `GlobalAlloc`'s layout/aliasing contract is exactly
// `System`'s own.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: forwards the caller's layout to `System.alloc` untouched.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: forwards the caller's layout to `System.alloc_zeroed` untouched.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    // SAFETY: forwards the caller's pointer/layout/size to `System.realloc`
    // untouched, so the caller's obligations transfer verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: forwards the caller's pointer and layout to `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[derive(Debug)]
struct Args {
    grid: String,
    threads: Option<usize>,
    out: Option<PathBuf>,
    verify: VerifyMode,
    stdout: bool,
    offered_load: Option<u32>,
    trace: bool,
    metrics_interval: Option<u64>,
    profile: bool,
}

fn usage() -> String {
    format!(
        "usage: sweep <grid> [--threads N] [--out PATH] [--verify off|spot|full] [--stdout]\n\
         \u{20}            [--offered-load PCT]   (service_load grid only)\n\
         \u{20}            [--trace] [--metrics-interval CYCLES]   (both need --out)\n\
         \u{20}            [--profile]\n\
         \u{20}      sweep --list\n\
         grids: {}",
        grids::all_names().join(", ")
    )
}

/// The named-grid catalog grouped by grid family, one line per grid: name,
/// size and description.
fn catalog() -> String {
    let mut families: Vec<(String, Vec<String>)> = Vec::new();
    for name in grids::all_names() {
        let g = grids::by_name(name).expect("listed grid exists");
        let line = format!("  {name:<18} {:>3} runs  {}", g.runs.len(), g.description);
        match families.iter_mut().find(|(family, _)| *family == g.family) {
            Some((_, lines)) => lines.push(line),
            None => families.push((g.family.clone(), vec![line])),
        }
    }
    families
        .into_iter()
        .map(|(family, lines)| format!("{family}\n{}", lines.join("\n")))
        .collect::<Vec<String>>()
        .join("\n")
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Option<Args>, String> {
    let _program = argv.next();
    let mut grid = None;
    let mut threads = None;
    let mut out = None;
    let mut verify = VerifyMode::SpotCheck;
    let mut stdout = false;
    let mut offered_load = None;
    let mut trace = false;
    let mut metrics_interval = None;
    let mut profile = false;

    let mut verify_set = false;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--list" => {
                println!("{}", catalog());
                return Ok(None);
            }
            "--threads" => {
                if threads.is_some() {
                    return Err(format!("--threads given more than once\n{}", usage()));
                }
                let value = argv.next().ok_or("--threads needs a value")?;
                let n: usize = value
                    .parse()
                    .map_err(|_| format!("invalid thread count {value:?}"))?;
                if n == 0 {
                    // Zero used to be silently clamped to one thread; reject
                    // it instead of reinterpreting the request.
                    return Err(format!("--threads must be at least 1\n{}", usage()));
                }
                threads = Some(n);
            }
            "--out" => {
                if out.is_some() {
                    return Err(format!("--out given more than once\n{}", usage()));
                }
                let value = argv.next().ok_or("--out needs a path")?;
                out = Some(PathBuf::from(value));
            }
            "--verify" => {
                if verify_set {
                    return Err(format!("--verify given more than once\n{}", usage()));
                }
                verify_set = true;
                let value = argv.next().ok_or("--verify needs a mode")?;
                verify = match value.as_str() {
                    "off" => VerifyMode::Off,
                    "spot" => VerifyMode::SpotCheck,
                    "full" => VerifyMode::Full,
                    other => return Err(format!("unknown verify mode {other:?}")),
                };
            }
            "--stdout" => {
                if stdout {
                    return Err(format!("--stdout given more than once\n{}", usage()));
                }
                stdout = true;
            }
            "--offered-load" => {
                if offered_load.is_some() {
                    return Err(format!("--offered-load given more than once\n{}", usage()));
                }
                let value = argv.next().ok_or("--offered-load needs a percentage")?;
                let pct: u32 = value
                    .parse()
                    .map_err(|_| format!("invalid offered load {value:?}"))?;
                if pct == 0 {
                    return Err(format!("--offered-load must be at least 1\n{}", usage()));
                }
                offered_load = Some(pct);
            }
            "--trace" => {
                if trace {
                    return Err(format!("--trace given more than once\n{}", usage()));
                }
                trace = true;
            }
            "--metrics-interval" => {
                if metrics_interval.is_some() {
                    return Err(format!(
                        "--metrics-interval given more than once\n{}",
                        usage()
                    ));
                }
                let value = argv
                    .next()
                    .ok_or("--metrics-interval needs a cycle count")?;
                let n: u64 = value
                    .parse()
                    .map_err(|_| format!("invalid metrics interval {value:?}"))?;
                if n == 0 {
                    return Err(format!(
                        "--metrics-interval must be at least 1\n{}",
                        usage()
                    ));
                }
                metrics_interval = Some(n);
            }
            "--profile" => {
                if profile {
                    return Err(format!("--profile given more than once\n{}", usage()));
                }
                profile = true;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(None);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{}", usage()))
            }
            other => {
                if grid.replace(other.to_string()).is_some() {
                    return Err(format!("more than one grid named\n{}", usage()));
                }
            }
        }
    }

    let Some(grid) = grid else {
        return Err(usage());
    };
    if offered_load.is_some() && grid != "service_load" {
        return Err(format!(
            "--offered-load only applies to the service_load scenario grid, \
             not {grid:?}\n{}",
            usage()
        ));
    }
    if trace && out.is_none() {
        return Err(format!(
            "--trace needs --out PATH (trace artifacts are named after the \
             results file)\n{}",
            usage()
        ));
    }
    if metrics_interval.is_some() && out.is_none() {
        return Err(format!(
            "--metrics-interval needs --out PATH (the JSONL stream is named \
             after the results file)\n{}",
            usage()
        ));
    }
    Ok(Some(Args {
        grid,
        threads,
        out,
        verify,
        stdout,
        offered_load,
        trace,
        metrics_interval,
        profile,
    }))
}

/// `results/fig4.json` + `-metrics.jsonl` → `results/fig4-metrics.jsonl`.
fn artifact_sibling(out: &std::path::Path, suffix: &str) -> PathBuf {
    let stem = out
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("results");
    out.with_file_name(format!("{stem}{suffix}"))
}

// Wall-clock phase timers are allowed here (clippy.toml + lint.toml): they
// report host throughput and never feed simulated state or digests.
#[allow(clippy::disallowed_methods)]
fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(Some(args)) => args,
        Ok(None) => return ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let Some(mut grid) = grids::by_name(&args.grid) else {
        eprintln!(
            "unknown grid {:?} — available grids:\n{}",
            args.grid,
            catalog()
        );
        return ExitCode::FAILURE;
    };
    if let Some(pct) = args.offered_load {
        // The parser only accepts the flag together with the service_load
        // grid, so this rebuild cannot change any other grid.
        grid = grids::service_load_at(Some(pct));
    }
    // Observability knobs apply to every simulation grid point uniformly.
    if args.trace || args.metrics_interval.is_some() {
        let interval = args.metrics_interval.unwrap_or(0);
        for run in &mut grid.runs {
            if let misp_harness::RunKind::Sim(sim) = &mut run.kind {
                sim.trace = args.trace;
                sim.metrics_interval = interval;
            }
        }
    }

    let mut options = SweepOptions::from_env();
    if let Some(threads) = args.threads {
        options.threads = threads;
    }
    options.verify = args.verify;

    let started = std::time::Instant::now();
    let (results, run_artifacts) = match run_grid_with_artifacts(&grid, &options) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("sweep {} failed: {e}", grid.name);
            return ExitCode::FAILURE;
        }
    };
    let run_elapsed = started.elapsed();

    let serialize_started = std::time::Instant::now();
    let json = match results.to_canonical_json() {
        Ok(json) => json,
        Err(e) => {
            eprintln!("could not serialize results: {e}");
            return ExitCode::FAILURE;
        }
    };
    let serialize_elapsed = serialize_started.elapsed();

    eprintln!(
        "sweep {}: {} runs on {} thread(s) in {:.2}s",
        results.grid,
        results.run_count,
        options.threads,
        run_elapsed.as_secs_f64()
    );

    let write_started = std::time::Instant::now();
    // With no sink selected the document would be computed and discarded, so
    // default to stdout.
    if args.stdout || args.out.is_none() {
        print!("{json}");
    }
    if let Some(path) = &args.out {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("could not create {}: {e}", parent.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("could not write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("results written to {}", path.display());

        if args.metrics_interval.is_some() {
            let metrics_path = artifact_sibling(path, "-metrics.jsonl");
            let file = match std::fs::File::create(&metrics_path) {
                Ok(file) => file,
                Err(e) => {
                    eprintln!("could not create {}: {e}", metrics_path.display());
                    return ExitCode::FAILURE;
                }
            };
            // Incremental: one line hits the disk per sample — the stream is
            // never buffered as a whole document.
            let mut writer = serde_json::LineWriter::new(std::io::BufWriter::new(file));
            for (record, artifact) in results.records.iter().zip(&run_artifacts) {
                if let Some(metrics) = &artifact.metrics {
                    if let Err(e) =
                        artifacts::append_metrics_jsonl(&mut writer, &record.id, metrics)
                    {
                        eprintln!("could not write {}: {e}", metrics_path.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
            if let Err(e) = writer.flush() {
                eprintln!("could not write {}: {e}", metrics_path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("interval metrics written to {}", metrics_path.display());
        }

        if args.trace {
            let trace_dir = artifact_sibling(path, "-trace");
            if let Err(e) = std::fs::create_dir_all(&trace_dir) {
                eprintln!("could not create {}: {e}", trace_dir.display());
                return ExitCode::FAILURE;
            }
            let mut written = 0u64;
            for (record, artifact) in results.records.iter().zip(&run_artifacts) {
                if let Some(trace) = &artifact.trace {
                    let file = trace_dir.join(format!(
                        "{}.trace.json",
                        artifacts::sanitize_run_id(&record.id)
                    ));
                    if let Err(e) = std::fs::write(&file, artifacts::trace_json(trace)) {
                        eprintln!("could not write {}: {e}", file.display());
                        return ExitCode::FAILURE;
                    }
                    written += 1;
                }
            }
            eprintln!(
                "{written} trace file(s) written to {} (open in ui.perfetto.dev \
                 or chrome://tracing)",
                trace_dir.display()
            );
        }
    }
    let write_elapsed = write_started.elapsed();

    if args.profile {
        let mut queue = misp_sim::QueueProfile::default();
        for artifact in &run_artifacts {
            if let Some(profile) = artifact.queue {
                queue.absorb(&profile);
            }
        }
        eprintln!("profile: phases");
        eprintln!("  run        {:>10.3}s", run_elapsed.as_secs_f64());
        eprintln!("  serialize  {:>10.3}s", serialize_elapsed.as_secs_f64());
        eprintln!("  write      {:>10.3}s", write_elapsed.as_secs_f64());
        eprintln!("profile: event queue (all runs)");
        eprintln!("  pushes           {:>14}", queue.pushes);
        eprintln!("  pops             {:>14}", queue.pops);
        eprintln!("  max occupancy    {:>14}", queue.max_len);
        eprintln!("  redistributions  {:>14}", queue.redistributions);
        eprintln!("  supersessions    {:>14}", queue.supersessions);
        eprintln!("profile: allocator (whole process)");
        eprintln!(
            "  allocations      {:>14}",
            ALLOCATIONS.load(Ordering::Relaxed)
        );
        eprintln!(
            "  bytes requested  {:>14}",
            ALLOCATED_BYTES.load(Ordering::Relaxed)
        );
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Option<Args>, String> {
        parse_args(std::iter::once("sweep".to_string()).chain(args.iter().map(ToString::to_string)))
    }

    #[test]
    fn zero_threads_is_rejected_with_usage() {
        let err = parse(&["fig4", "--threads", "0"]).unwrap_err();
        assert!(err.contains("--threads must be at least 1"), "{err}");
        assert!(err.contains("usage:"), "{err}");
    }

    #[test]
    fn duplicate_flags_are_rejected_with_usage() {
        for dup in [
            vec!["fig4", "--threads", "2", "--threads", "3"],
            vec!["fig4", "--out", "a.json", "--out", "b.json"],
            vec!["fig4", "--verify", "off", "--verify", "full"],
            vec!["fig4", "--stdout", "--stdout"],
        ] {
            let err = parse(&dup).unwrap_err();
            assert!(err.contains("more than once"), "{dup:?}: {err}");
            assert!(err.contains("usage:"), "{dup:?}: {err}");
        }
    }

    #[test]
    fn unknown_flags_are_rejected_with_usage() {
        let err = parse(&["fig4", "--frobnicate"]).unwrap_err();
        assert!(err.contains("unknown option"), "{err}");
        assert!(err.contains("usage:"), "{err}");
    }

    #[test]
    fn valid_invocations_still_parse() {
        let args = parse(&["fig4", "--threads", "4", "--verify", "full"])
            .unwrap()
            .expect("parsed");
        assert_eq!(args.grid, "fig4");
        assert_eq!(args.threads, Some(4));
        assert_eq!(args.verify, VerifyMode::Full);
        assert!(!args.stdout);
        assert!(args.out.is_none());
        assert!(args.offered_load.is_none());
    }

    #[test]
    fn offered_load_parses_for_the_service_grid() {
        let args = parse(&["service_load", "--offered-load", "75"])
            .unwrap()
            .expect("parsed");
        assert_eq!(args.grid, "service_load");
        assert_eq!(args.offered_load, Some(75));
    }

    #[test]
    fn offered_load_is_rejected_for_other_grids_with_usage() {
        let err = parse(&["fig4", "--offered-load", "75"]).unwrap_err();
        assert!(
            err.contains("only applies to the service_load scenario grid"),
            "{err}"
        );
        assert!(err.contains("usage:"), "{err}");
    }

    #[test]
    fn offered_load_rejects_zero_duplicates_and_junk() {
        let err = parse(&["service_load", "--offered-load", "0"]).unwrap_err();
        assert!(err.contains("--offered-load must be at least 1"), "{err}");
        let err = parse(&[
            "service_load",
            "--offered-load",
            "10",
            "--offered-load",
            "20",
        ])
        .unwrap_err();
        assert!(err.contains("more than once"), "{err}");
        let err = parse(&["service_load", "--offered-load", "lots"]).unwrap_err();
        assert!(err.contains("invalid offered load"), "{err}");
    }

    #[test]
    fn trace_and_metrics_parse_with_an_out_path() {
        let args = parse(&[
            "fig4",
            "--out",
            "results/fig4.json",
            "--trace",
            "--metrics-interval",
            "250000",
        ])
        .unwrap()
        .expect("parsed");
        assert!(args.trace);
        assert_eq!(args.metrics_interval, Some(250_000));
        assert!(!args.profile);
        let args = parse(&["fig4", "--profile"]).unwrap().expect("parsed");
        assert!(args.profile, "--profile needs no --out");
    }

    #[test]
    fn trace_and_metrics_require_an_out_path() {
        let err = parse(&["fig4", "--trace"]).unwrap_err();
        assert!(err.contains("--trace needs --out"), "{err}");
        assert!(err.contains("usage:"), "{err}");
        let err = parse(&["fig4", "--metrics-interval", "1000"]).unwrap_err();
        assert!(err.contains("--metrics-interval needs --out"), "{err}");
        assert!(err.contains("usage:"), "{err}");
    }

    #[test]
    fn metrics_interval_rejects_zero_junk_and_duplicates() {
        let err = parse(&["fig4", "--out", "o.json", "--metrics-interval", "0"]).unwrap_err();
        assert!(
            err.contains("--metrics-interval must be at least 1"),
            "{err}"
        );
        assert!(err.contains("usage:"), "{err}");
        let err = parse(&["fig4", "--out", "o.json", "--metrics-interval", "often"]).unwrap_err();
        assert!(err.contains("invalid metrics interval"), "{err}");
        let err = parse(&[
            "fig4",
            "--out",
            "o.json",
            "--metrics-interval",
            "10",
            "--metrics-interval",
            "20",
        ])
        .unwrap_err();
        assert!(err.contains("more than once"), "{err}");
        let err = parse(&["fig4", "--out", "o.json", "--trace", "--trace"]).unwrap_err();
        assert!(err.contains("more than once"), "{err}");
        let err = parse(&["fig4", "--profile", "--profile"]).unwrap_err();
        assert!(err.contains("more than once"), "{err}");
    }

    #[test]
    fn artifact_siblings_are_named_after_the_results_stem() {
        let out = PathBuf::from("results/fig4.json");
        assert_eq!(
            artifact_sibling(&out, "-metrics.jsonl"),
            PathBuf::from("results/fig4-metrics.jsonl")
        );
        assert_eq!(
            artifact_sibling(&out, "-trace"),
            PathBuf::from("results/fig4-trace")
        );
    }

    #[test]
    fn catalog_groups_grids_under_family_headings() {
        let listing = catalog();
        for family in ["figures", "tables", "ablations", "sensitivity", "scenarios"] {
            assert!(
                listing.lines().any(|l| l == family),
                "family heading {family:?} missing from:\n{listing}"
            );
        }
        assert!(
            listing.lines().any(|l| l.starts_with("  service_load")),
            "grid lines are indented under their family:\n{listing}"
        );
    }
}
