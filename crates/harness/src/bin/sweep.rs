//! `sweep` — run any named experiment grid from the command line.
//!
//! ```text
//! sweep <grid> [--threads N] [--out PATH] [--verify off|spot|full] [--stdout]
//!              [--offered-load PCT]
//! sweep --list
//! ```
//!
//! The document goes to `--out`, to stdout with `--stdout`, or to stdout by
//! default when no sink is named (the one-line run summary always goes to
//! stderr).
//!
//! `--offered-load` applies only to the `service_load` scenario grid: it
//! collapses every load axis of the grid to the given percentage of pool
//! capacity.  Naming it with any other grid is a usage error.
//!
//! The aggregated results document is deterministic: running the same grid
//! with any `--threads` value writes byte-identical JSON.  Golden files under
//! `tests/goldens/` are regenerated with `--out`.

use misp_harness::{grids, run_grid, SweepOptions, VerifyMode};
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Debug)]
struct Args {
    grid: String,
    threads: Option<usize>,
    out: Option<PathBuf>,
    verify: VerifyMode,
    stdout: bool,
    offered_load: Option<u32>,
}

fn usage() -> String {
    format!(
        "usage: sweep <grid> [--threads N] [--out PATH] [--verify off|spot|full] [--stdout]\n\
         \u{20}            [--offered-load PCT]   (service_load grid only)\n\
         \u{20}      sweep --list\n\
         grids: {}",
        grids::all_names().join(", ")
    )
}

/// The named-grid catalog grouped by grid family, one line per grid: name,
/// size and description.
fn catalog() -> String {
    let mut families: Vec<(String, Vec<String>)> = Vec::new();
    for name in grids::all_names() {
        let g = grids::by_name(name).expect("listed grid exists");
        let line = format!("  {name:<18} {:>3} runs  {}", g.runs.len(), g.description);
        match families.iter_mut().find(|(family, _)| *family == g.family) {
            Some((_, lines)) => lines.push(line),
            None => families.push((g.family.clone(), vec![line])),
        }
    }
    families
        .into_iter()
        .map(|(family, lines)| format!("{family}\n{}", lines.join("\n")))
        .collect::<Vec<String>>()
        .join("\n")
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Option<Args>, String> {
    let _program = argv.next();
    let mut grid = None;
    let mut threads = None;
    let mut out = None;
    let mut verify = VerifyMode::SpotCheck;
    let mut stdout = false;
    let mut offered_load = None;

    let mut verify_set = false;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--list" => {
                println!("{}", catalog());
                return Ok(None);
            }
            "--threads" => {
                if threads.is_some() {
                    return Err(format!("--threads given more than once\n{}", usage()));
                }
                let value = argv.next().ok_or("--threads needs a value")?;
                let n: usize = value
                    .parse()
                    .map_err(|_| format!("invalid thread count {value:?}"))?;
                if n == 0 {
                    // Zero used to be silently clamped to one thread; reject
                    // it instead of reinterpreting the request.
                    return Err(format!("--threads must be at least 1\n{}", usage()));
                }
                threads = Some(n);
            }
            "--out" => {
                if out.is_some() {
                    return Err(format!("--out given more than once\n{}", usage()));
                }
                let value = argv.next().ok_or("--out needs a path")?;
                out = Some(PathBuf::from(value));
            }
            "--verify" => {
                if verify_set {
                    return Err(format!("--verify given more than once\n{}", usage()));
                }
                verify_set = true;
                let value = argv.next().ok_or("--verify needs a mode")?;
                verify = match value.as_str() {
                    "off" => VerifyMode::Off,
                    "spot" => VerifyMode::SpotCheck,
                    "full" => VerifyMode::Full,
                    other => return Err(format!("unknown verify mode {other:?}")),
                };
            }
            "--stdout" => {
                if stdout {
                    return Err(format!("--stdout given more than once\n{}", usage()));
                }
                stdout = true;
            }
            "--offered-load" => {
                if offered_load.is_some() {
                    return Err(format!("--offered-load given more than once\n{}", usage()));
                }
                let value = argv.next().ok_or("--offered-load needs a percentage")?;
                let pct: u32 = value
                    .parse()
                    .map_err(|_| format!("invalid offered load {value:?}"))?;
                if pct == 0 {
                    return Err(format!("--offered-load must be at least 1\n{}", usage()));
                }
                offered_load = Some(pct);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(None);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{}", usage()))
            }
            other => {
                if grid.replace(other.to_string()).is_some() {
                    return Err(format!("more than one grid named\n{}", usage()));
                }
            }
        }
    }

    let Some(grid) = grid else {
        return Err(usage());
    };
    if offered_load.is_some() && grid != "service_load" {
        return Err(format!(
            "--offered-load only applies to the service_load scenario grid, \
             not {grid:?}\n{}",
            usage()
        ));
    }
    Ok(Some(Args {
        grid,
        threads,
        out,
        verify,
        stdout,
        offered_load,
    }))
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(Some(args)) => args,
        Ok(None) => return ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let Some(mut grid) = grids::by_name(&args.grid) else {
        eprintln!(
            "unknown grid {:?} — available grids:\n{}",
            args.grid,
            catalog()
        );
        return ExitCode::FAILURE;
    };
    if let Some(pct) = args.offered_load {
        // The parser only accepts the flag together with the service_load
        // grid, so this rebuild cannot change any other grid.
        grid = grids::service_load_at(Some(pct));
    }

    let mut options = SweepOptions::from_env();
    if let Some(threads) = args.threads {
        options.threads = threads;
    }
    options.verify = args.verify;

    let started = std::time::Instant::now();
    let results = match run_grid(&grid, &options) {
        Ok(results) => results,
        Err(e) => {
            eprintln!("sweep {} failed: {e}", grid.name);
            return ExitCode::FAILURE;
        }
    };
    let elapsed = started.elapsed();

    let json = match results.to_canonical_json() {
        Ok(json) => json,
        Err(e) => {
            eprintln!("could not serialize results: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "sweep {}: {} runs on {} thread(s) in {:.2}s",
        results.grid,
        results.run_count,
        options.threads,
        elapsed.as_secs_f64()
    );

    // With no sink selected the document would be computed and discarded, so
    // default to stdout.
    if args.stdout || args.out.is_none() {
        print!("{json}");
    }
    if let Some(path) = &args.out {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("could not create {}: {e}", parent.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("could not write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("results written to {}", path.display());
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Option<Args>, String> {
        parse_args(std::iter::once("sweep".to_string()).chain(args.iter().map(ToString::to_string)))
    }

    #[test]
    fn zero_threads_is_rejected_with_usage() {
        let err = parse(&["fig4", "--threads", "0"]).unwrap_err();
        assert!(err.contains("--threads must be at least 1"), "{err}");
        assert!(err.contains("usage:"), "{err}");
    }

    #[test]
    fn duplicate_flags_are_rejected_with_usage() {
        for dup in [
            vec!["fig4", "--threads", "2", "--threads", "3"],
            vec!["fig4", "--out", "a.json", "--out", "b.json"],
            vec!["fig4", "--verify", "off", "--verify", "full"],
            vec!["fig4", "--stdout", "--stdout"],
        ] {
            let err = parse(&dup).unwrap_err();
            assert!(err.contains("more than once"), "{dup:?}: {err}");
            assert!(err.contains("usage:"), "{dup:?}: {err}");
        }
    }

    #[test]
    fn unknown_flags_are_rejected_with_usage() {
        let err = parse(&["fig4", "--frobnicate"]).unwrap_err();
        assert!(err.contains("unknown option"), "{err}");
        assert!(err.contains("usage:"), "{err}");
    }

    #[test]
    fn valid_invocations_still_parse() {
        let args = parse(&["fig4", "--threads", "4", "--verify", "full"])
            .unwrap()
            .expect("parsed");
        assert_eq!(args.grid, "fig4");
        assert_eq!(args.threads, Some(4));
        assert_eq!(args.verify, VerifyMode::Full);
        assert!(!args.stdout);
        assert!(args.out.is_none());
        assert!(args.offered_load.is_none());
    }

    #[test]
    fn offered_load_parses_for_the_service_grid() {
        let args = parse(&["service_load", "--offered-load", "75"])
            .unwrap()
            .expect("parsed");
        assert_eq!(args.grid, "service_load");
        assert_eq!(args.offered_load, Some(75));
    }

    #[test]
    fn offered_load_is_rejected_for_other_grids_with_usage() {
        let err = parse(&["fig4", "--offered-load", "75"]).unwrap_err();
        assert!(
            err.contains("only applies to the service_load scenario grid"),
            "{err}"
        );
        assert!(err.contains("usage:"), "{err}");
    }

    #[test]
    fn offered_load_rejects_zero_duplicates_and_junk() {
        let err = parse(&["service_load", "--offered-load", "0"]).unwrap_err();
        assert!(err.contains("--offered-load must be at least 1"), "{err}");
        let err = parse(&[
            "service_load",
            "--offered-load",
            "10",
            "--offered-load",
            "20",
        ])
        .unwrap_err();
        assert!(err.contains("more than once"), "{err}");
        let err = parse(&["service_load", "--offered-load", "lots"]).unwrap_err();
        assert!(err.contains("invalid offered load"), "{err}");
    }

    #[test]
    fn catalog_groups_grids_under_family_headings() {
        let listing = catalog();
        for family in ["figures", "tables", "ablations", "sensitivity", "scenarios"] {
            assert!(
                listing.lines().any(|l| l == family),
                "family heading {family:?} missing from:\n{listing}"
            );
        }
        assert!(
            listing.lines().any(|l| l.starts_with("  service_load")),
            "grid lines are indented under their family:\n{listing}"
        );
    }
}
