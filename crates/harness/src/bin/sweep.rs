//! `sweep` — run any named experiment grid from the command line.
//!
//! ```text
//! sweep <grid> [--threads N] [--out PATH] [--verify off|spot|full] [--stdout]
//! sweep --list
//! ```
//!
//! The document goes to `--out`, to stdout with `--stdout`, or to stdout by
//! default when no sink is named (the one-line run summary always goes to
//! stderr).
//!
//! The aggregated results document is deterministic: running the same grid
//! with any `--threads` value writes byte-identical JSON.  Golden files under
//! `tests/goldens/` are regenerated with `--out`.

use misp_harness::{grids, run_grid, SweepOptions, VerifyMode};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    grid: String,
    threads: Option<usize>,
    out: Option<PathBuf>,
    verify: VerifyMode,
    stdout: bool,
}

fn usage() -> String {
    format!(
        "usage: sweep <grid> [--threads N] [--out PATH] [--verify off|spot|full] [--stdout]\n\
         \u{20}      sweep --list\n\
         grids: {}",
        grids::all_names().join(", ")
    )
}

/// The named-grid catalog, one line per grid: name, size and description.
fn catalog() -> String {
    grids::all_names()
        .into_iter()
        .map(|name| {
            let g = grids::by_name(name).expect("listed grid exists");
            format!("{name:<18} {:>3} runs  {}", g.runs.len(), g.description)
        })
        .collect::<Vec<String>>()
        .join("\n")
}

fn parse_args(mut argv: std::env::Args) -> Result<Option<Args>, String> {
    let _program = argv.next();
    let mut grid = None;
    let mut threads = None;
    let mut out = None;
    let mut verify = VerifyMode::SpotCheck;
    let mut stdout = false;

    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--list" => {
                println!("{}", catalog());
                return Ok(None);
            }
            "--threads" => {
                let value = argv.next().ok_or("--threads needs a value")?;
                let n: usize = value
                    .parse()
                    .map_err(|_| format!("invalid thread count {value:?}"))?;
                threads = Some(n.max(1));
            }
            "--out" => {
                let value = argv.next().ok_or("--out needs a path")?;
                out = Some(PathBuf::from(value));
            }
            "--verify" => {
                let value = argv.next().ok_or("--verify needs a mode")?;
                verify = match value.as_str() {
                    "off" => VerifyMode::Off,
                    "spot" => VerifyMode::SpotCheck,
                    "full" => VerifyMode::Full,
                    other => return Err(format!("unknown verify mode {other:?}")),
                };
            }
            "--stdout" => stdout = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(None);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{}", usage()))
            }
            other => {
                if grid.replace(other.to_string()).is_some() {
                    return Err(format!("more than one grid named\n{}", usage()));
                }
            }
        }
    }

    let Some(grid) = grid else {
        return Err(usage());
    };
    Ok(Some(Args {
        grid,
        threads,
        out,
        verify,
        stdout,
    }))
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(Some(args)) => args,
        Ok(None) => return ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let Some(grid) = grids::by_name(&args.grid) else {
        eprintln!(
            "unknown grid {:?} — available grids:\n{}",
            args.grid,
            catalog()
        );
        return ExitCode::FAILURE;
    };

    let mut options = SweepOptions::from_env();
    if let Some(threads) = args.threads {
        options.threads = threads;
    }
    options.verify = args.verify;

    let started = std::time::Instant::now();
    let results = match run_grid(&grid, &options) {
        Ok(results) => results,
        Err(e) => {
            eprintln!("sweep {} failed: {e}", grid.name);
            return ExitCode::FAILURE;
        }
    };
    let elapsed = started.elapsed();

    let json = match results.to_canonical_json() {
        Ok(json) => json,
        Err(e) => {
            eprintln!("could not serialize results: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "sweep {}: {} runs on {} thread(s) in {:.2}s",
        results.grid,
        results.run_count,
        options.threads,
        elapsed.as_secs_f64()
    );

    // With no sink selected the document would be computed and discarded, so
    // default to stdout.
    if args.stdout || args.out.is_none() {
        print!("{json}");
    }
    if let Some(path) = &args.out {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("could not create {}: {e}", parent.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("could not write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("results written to {}", path.display());
    }
    ExitCode::SUCCESS
}
