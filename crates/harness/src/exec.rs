//! Execution of individual grid points.

use crate::results::{
    FleetMetrics, IntervalMetricsSummary, MachineMetrics, PortMetrics, RunRecord, ServiceMetrics,
    SimMetrics, TopologyMetrics, TraceMetrics,
};
use crate::spec::{FleetSpec, MachineSpec, RunKind, RunSpec, SimSpec, TopologySpec, WorkSource};
use misp_core::RingPolicy;
use misp_os::TimerConfig;
use misp_sim::{FleetReport, SimConfig, SimReport, TraceConfig};
use misp_trace::{merge_machine_traces, metrics_digest, MetricsReport, QueueProfile, TraceReport};
use misp_types::{CostModel, Cycles, MispError, Result, SignalCost};
use misp_workloads::{catalog, scenario, Machine, Run, RunOptions, Scenario};
use shredlib::compat;

/// The observability by-products of one grid point, kept *outside* the
/// aggregated [`RunRecord`] so the versioned results schema stays free of
/// bulk data.  Simulation runs always carry the queue profile; the trace and
/// metrics sections are present exactly when the spec enabled them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunArtifacts {
    /// The full trace ring, when [`SimSpec::trace`] was set.
    pub trace: Option<TraceReport>,
    /// The interval-metrics samples, when [`SimSpec::metrics_interval`] was
    /// non-zero.
    pub metrics: Option<MetricsReport>,
    /// Event-queue self-profiling counters (simulation runs only).
    pub queue: Option<QueueProfile>,
}

impl RunArtifacts {
    /// Moves the observability sections out of a finished report.
    fn from_report(report: &mut SimReport) -> Self {
        RunArtifacts {
            trace: report.trace.take(),
            metrics: report.metrics.take(),
            queue: Some(report.queue),
        }
    }
}

/// The simulation configuration shared by all paper experiments: the paper's
/// 5000-cycle microcode signal estimate and a 1 ms (at 3 GHz) timer tick.
#[must_use]
pub fn experiment_config() -> SimConfig {
    SimConfig {
        costs: CostModel::default(),
        timer: TimerConfig::new(Cycles::new(3_000_000), 10),
        ..SimConfig::default()
    }
}

/// The experiment configuration with a specific signal cost (Figure 5 sweep).
#[must_use]
pub fn config_with_signal(signal: SignalCost) -> SimConfig {
    experiment_config().with_costs(CostModel::builder().signal(signal).build())
}

fn ring_policy_label(policy: RingPolicy) -> &'static str {
    match policy {
        RingPolicy::SuspendAll => "suspend-all",
        RingPolicy::Speculative => "speculative",
    }
}

fn empty_record(index: usize, spec: &RunSpec, kind: &str) -> RunRecord {
    RunRecord {
        index: index as u64,
        id: spec.id.clone(),
        kind: kind.to_string(),
        workload: None,
        machine: None,
        workers: None,
        signal_cycles: None,
        pretouch: false,
        ring_policy: None,
        competitors: 0,
        ams_span_only: false,
        cache: None,
        seed: spec.seed,
        baseline: spec.baseline.clone(),
        sim: None,
        topology: None,
        port: None,
        scenario: None,
        offered_load: None,
        fleet: None,
    }
}

/// Maps the declarative machine spec onto the runner's machine.
fn build_machine(spec: &MachineSpec) -> Machine {
    match spec {
        MachineSpec::Serial => Machine::Serial,
        MachineSpec::Misp(topo) => Machine::Misp(topo.build()),
        MachineSpec::Smp { cores } => Machine::smp(*cores),
    }
}

/// Per-machine sequencer count — the track stride that keeps every fleet
/// machine's sequencers on distinct Perfetto process tracks when merging
/// traces.
fn sequencer_stride(machine: &Machine) -> u32 {
    match machine {
        Machine::Serial => 1,
        Machine::Misp(topology) => topology.total_sequencers() as u32,
        Machine::Smp { cores } => *cores as u32,
    }
}

/// Folds a fleet's per-machine reports into the record's aggregate `sim`
/// section: counters sum, the cycle count is the fleet's end-to-end span,
/// the digest is the fleet digest, and service percentiles merge across
/// machines.  The observability summaries are filled in by the caller from
/// the merged artifacts.
fn fleet_sim_metrics(report: &FleetReport) -> SimMetrics {
    let total_cycles = report.total_cycles().as_u64();
    let mut agg: Option<SimMetrics> = None;
    let mut cache: Option<misp_cache::CacheStats> = None;
    for machine in &report.reports {
        let m = SimMetrics::from_report(machine);
        if let Some(c) = machine.stats.cache {
            match &mut cache {
                Some(acc) => acc.merge(&c),
                None => cache = Some(c),
            }
        }
        match &mut agg {
            None => agg = Some(m),
            Some(a) => {
                a.oms_syscalls += m.oms_syscalls;
                a.oms_page_faults += m.oms_page_faults;
                a.oms_timer += m.oms_timer;
                a.oms_other_interrupts += m.oms_other_interrupts;
                a.ams_syscalls += m.ams_syscalls;
                a.ams_page_faults += m.ams_page_faults;
                a.proxy_executions += m.proxy_executions;
                a.serializations += m.serializations;
                a.context_switches += m.context_switches;
                a.signals_sent += m.signals_sent;
                a.suspension_cycles += m.suspension_cycles;
                a.tlb_hits += m.tlb_hits;
                a.tlb_misses += m.tlb_misses;
                a.tlb_flushes += m.tlb_flushes;
            }
        }
    }
    let mut a = agg.expect("a fleet report carries at least one machine");
    a.total_cycles = total_cycles;
    a.log_digest = format!("{:016x}", report.fleet_digest);
    a.cache = cache;
    a.speedup_vs_baseline = None;
    a.service = report
        .aggregate_service()
        .map(|svc| ServiceMetrics::from_stats(&svc, total_cycles));
    a.trace = None;
    a.interval_metrics = None;
    a
}

/// Executes a fleet scenario grid point: one co-simulated machine per fleet
/// slot, the aggregate `sim` section, the per-machine `fleet` section, and
/// merged observability artifacts (fleet traces keep one track per
/// machine×sequencer pair; interval samples concatenate in machine order).
#[allow(clippy::too_many_arguments)]
fn execute_fleet_sim(
    mut record: RunRecord,
    s: &Scenario,
    fleet_spec: FleetSpec,
    machine: Machine,
    config: SimConfig,
    options: RunOptions,
    seed: u64,
) -> Result<(RunRecord, RunArtifacts)> {
    let fleet = fleet_spec.build();
    let stride = sequencer_stride(&machine);
    let mut report = Run::scenario(s)
        .machine(machine)
        .config(config)
        .options(options)
        .seed(seed)
        .execute_fleet(&fleet)?;
    // The balancer is a pure function of (scenario, seed, fleet shape), so
    // re-deriving the dispatch here replays the decisions the run used.
    let dispatch = s.fleet_streams(seed, &fleet).dispatch_counts();

    let mut traces = Vec::new();
    let mut samples = Vec::new();
    let mut interval = 0;
    let mut queue = QueueProfile::default();
    for machine_report in &mut report.reports {
        if let Some(t) = machine_report.trace.take() {
            traces.push(t);
        }
        if let Some(m) = machine_report.metrics.take() {
            interval = m.interval;
            samples.extend(m.samples);
        }
        queue.absorb(&machine_report.queue);
    }
    let trace = (!traces.is_empty()).then(|| merge_machine_traces(&traces, stride));
    let metrics = (interval > 0).then(|| {
        let digest = metrics_digest(&samples);
        MetricsReport {
            interval,
            samples,
            digest,
        }
    });

    let mut sim_metrics = fleet_sim_metrics(&report);
    sim_metrics.trace = trace.as_ref().map(TraceMetrics::from_report);
    sim_metrics.interval_metrics = metrics.as_ref().map(IntervalMetricsSummary::from_report);
    record.sim = Some(sim_metrics);
    record.fleet = Some(FleetMetrics {
        machines: fleet.machines() as u64,
        network_latency: fleet.network_latency().as_u64(),
        policy: fleet.policy().label().to_string(),
        fleet_digest: format!("{:016x}", report.fleet_digest),
        per_machine: report
            .reports
            .iter()
            .enumerate()
            .map(|(i, r)| MachineMetrics {
                machine: i as u64,
                total_cycles: r.total_cycles.as_u64(),
                log_digest: format!("{:016x}", r.log_digest),
                requests_dispatched: dispatch[i] as u64,
                service: r
                    .stats
                    .service
                    .as_ref()
                    .map(|svc| ServiceMetrics::from_stats(svc, r.total_cycles.as_u64())),
            })
            .collect(),
    });
    Ok((
        record,
        RunArtifacts {
            trace,
            metrics,
            queue: Some(queue),
        },
    ))
}

fn execute_sim(index: usize, spec: &RunSpec, sim: &SimSpec) -> Result<(RunRecord, RunArtifacts)> {
    let mut config = match sim.signal {
        Some(signal) => config_with_signal(signal),
        None => experiment_config(),
    };
    if let Some(cache) = sim.cache {
        config = config.with_cache(cache);
    }
    config.batch = sim.batch;
    if sim.trace || sim.metrics_interval > 0 {
        config.trace = TraceConfig {
            enabled: sim.trace,
            metrics_interval: sim.metrics_interval,
            ..TraceConfig::default()
        };
    }
    let options = RunOptions {
        pretouch: sim.pretouch,
        ring_policy: sim.ring_policy,
        competitors: sim.competitors,
        ams_span_only: sim.ams_span_only,
        ..RunOptions::default()
    };
    let machine = build_machine(&sim.machine);

    let mut record = empty_record(index, spec, "sim");
    record.machine = Some(sim.machine.label());
    record.signal_cycles = sim.signal.map(|s| s.cycles().as_u64());
    record.pretouch = sim.pretouch;
    record.ring_policy = sim.ring_policy.map(|p| ring_policy_label(p).to_string());
    record.competitors = sim.competitors as u64;
    record.ams_span_only = sim.ams_span_only;
    record.cache = sim.cache.filter(|c| c.enabled).map(|c| c.label());

    let mut report = match &sim.source {
        WorkSource::Workload(name) => {
            let workload = catalog::by_name(name).ok_or_else(|| {
                MispError::InvalidConfiguration(format!(
                    "grid point {}: unknown workload {name:?}",
                    spec.id
                ))
            })?;
            if sim.fleet.is_some() {
                return Err(MispError::InvalidConfiguration(format!(
                    "grid point {}: fleet runs serve request scenarios, not catalog workloads",
                    spec.id
                )));
            }
            record.workload = Some(name.clone());
            record.workers = Some(sim.workers as u64);
            Run::workload(&workload)
                .machine(machine)
                .config(config)
                .workers(sim.workers)
                .options(options)
                .execute()?
        }
        WorkSource::Scenario(sc) => {
            let mut s = scenario::by_name(&sc.name).ok_or_else(|| {
                MispError::InvalidConfiguration(format!(
                    "grid point {}: unknown scenario {:?}",
                    spec.id, sc.name
                ))
            })?;
            if let Some(requests) = sc.requests {
                s = s.with_requests(requests);
            }
            if let Some(pct) = sc.offered_load {
                s = s.with_offered_load(pct);
            }
            if let Some(width) = sc.pool_width {
                s = s.with_pool_width(width);
            }
            if let Some(bound) = sc.queue_bound {
                s = s.with_queue_bound(bound);
            }
            record.scenario = Some(sc.name.clone());
            record.offered_load = Some(s.offered_load_pct());
            if let Some(fleet_spec) = sim.fleet {
                return execute_fleet_sim(
                    record, &s, fleet_spec, machine, config, options, spec.seed,
                );
            }
            Run::scenario(&s)
                .machine(machine)
                .config(config)
                .options(options)
                .seed(spec.seed)
                .execute()?
        }
    };

    record.sim = Some(SimMetrics::from_report(&report));
    Ok((record, RunArtifacts::from_report(&mut report)))
}

fn execute_topology(index: usize, spec: &RunSpec, topo: TopologySpec) -> RunRecord {
    let topology = topo.build();
    let mut record = empty_record(index, spec, "topology");
    record.machine = Some(MachineSpec::Misp(topo).label());
    record.topology = Some(TopologyMetrics {
        description: topology.describe(),
        processors: topology.processors().len() as u64,
        total_sequencers: topology.total_sequencers() as u64,
        oms_count: topology.all_oms().len() as u64,
        ams_count: topology.total_ams() as u64,
        per_processor_ams: topology
            .processors()
            .iter()
            .map(|p| p.ams().len() as u64)
            .collect(),
    });
    record
}

fn execute_port_analysis(index: usize, spec: &RunSpec, application: &str) -> Result<RunRecord> {
    let app = catalog::table2_applications()
        .into_iter()
        .find(|a| a.name == application)
        .ok_or_else(|| {
            MispError::InvalidConfiguration(format!(
                "grid point {}: unknown Table 2 application {application:?}",
                spec.id
            ))
        })?;
    let coverage = compat::coverage(app.functions.iter().copied());
    let mut record = empty_record(index, spec, "port-analysis");
    record.port = Some(PortMetrics {
        description: app.description.to_string(),
        api_calls: coverage.total() as u64,
        mechanical: coverage.mechanical.len() as u64,
        structural: coverage.structural.len() as u64,
        unmapped: coverage.unmapped.len() as u64,
        mechanical_percent: coverage.mechanical_fraction() * 100.0,
        paper_effort_days: app.paper_days,
        paper_structural_changes: app.structural_changes,
    });
    Ok(record)
}

/// Executes one grid point and returns its aggregated record.
///
/// Execution is a pure function of the spec: the engine is strictly
/// deterministic, so calling this twice — from any thread — produces equal
/// records.  [`crate::run_grid`] relies on exactly that property.
///
/// # Errors
///
/// Returns an error if the spec references an unknown workload or
/// application, or if the simulation itself fails (budget exhaustion,
/// deadlock).
pub fn execute_run(index: usize, spec: &RunSpec) -> Result<RunRecord> {
    execute_run_with_artifacts(index, spec).map(|(record, _)| record)
}

/// [`execute_run`] plus the run's observability by-products (trace ring,
/// interval-metrics samples, queue profile).  Non-simulation grid points
/// return empty artifacts.
///
/// # Errors
///
/// Same failure modes as [`execute_run`].
pub fn execute_run_with_artifacts(
    index: usize,
    spec: &RunSpec,
) -> Result<(RunRecord, RunArtifacts)> {
    match &spec.kind {
        RunKind::Sim(sim) => execute_sim(index, spec, sim),
        RunKind::Topology(topo) => Ok((
            execute_topology(index, spec, *topo),
            RunArtifacts::default(),
        )),
        RunKind::PortAnalysis { application } => {
            execute_port_analysis(index, spec, application).map(|r| (r, RunArtifacts::default()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_config_uses_paper_signal_estimate() {
        let c = experiment_config();
        assert_eq!(c.costs.signal_cycles(), Cycles::new(5_000));
        let ideal = config_with_signal(SignalCost::Ideal);
        assert_eq!(ideal.costs.signal_cycles(), Cycles::ZERO);
        assert_eq!(ideal.timer, c.timer);
    }

    #[test]
    fn unknown_workload_is_a_configuration_error() {
        let spec = RunSpec::sim(
            "x",
            SimSpec::workload("no-such-workload", MachineSpec::Serial, 4),
        );
        let err = execute_run(0, &spec).unwrap_err();
        assert!(matches!(err, MispError::InvalidConfiguration(_)));
    }

    #[test]
    fn unknown_scenario_is_a_configuration_error() {
        let spec = RunSpec::sim(
            "x",
            SimSpec::scenario(
                crate::ScenarioSpec::new("no-such-scenario"),
                MachineSpec::Serial,
            ),
        );
        let err = execute_run(0, &spec).unwrap_err();
        assert!(matches!(err, MispError::InvalidConfiguration(_)));
    }

    #[test]
    fn unknown_application_is_a_configuration_error() {
        let spec = RunSpec::port_analysis("no-such-app");
        let err = execute_run(0, &spec).unwrap_err();
        assert!(matches!(err, MispError::InvalidConfiguration(_)));
    }

    #[test]
    fn topology_record_describes_the_machine() {
        let spec = RunSpec::topology("4x2", crate::TopologySpec::Quad2);
        let record = execute_run(3, &spec).unwrap();
        assert_eq!(record.index, 3);
        assert_eq!(record.kind, "topology");
        let topo = record.topology.expect("topology metrics");
        assert_eq!(topo.processors, 4);
        assert_eq!(topo.total_sequencers, 8);
        assert_eq!(topo.per_processor_ams, vec![1, 1, 1, 1]);
    }

    #[test]
    fn sim_record_carries_metadata_and_metrics() {
        let spec = RunSpec::sim(
            "dense_mvm/misp",
            SimSpec::workload(
                "dense_mvm",
                MachineSpec::Misp(crate::TopologySpec::Uniprocessor { ams: 3 }),
                4,
            ),
        );
        let record = execute_run(0, &spec).unwrap();
        assert_eq!(record.kind, "sim");
        assert_eq!(record.machine.as_deref(), Some("misp:1x4"));
        assert_eq!(record.workers, Some(4));
        assert_eq!(record.scenario, None);
        assert_eq!(record.offered_load, None);
        let sim = record.sim.expect("sim metrics");
        assert!(sim.total_cycles > 0);
        assert_eq!(sim.log_digest.len(), 16, "digest is 16 hex digits");
        assert!(
            sim.service.is_none(),
            "workload runs carry no service stats"
        );
    }

    /// A scenario grid point produces a record with scenario metadata and a
    /// populated service-metrics section whose latency percentiles are
    /// ordered.
    #[test]
    fn scenario_record_carries_service_metrics() {
        let spec = RunSpec::sim(
            "poisson/misp",
            SimSpec::scenario(
                crate::ScenarioSpec::new("poisson")
                    .with_requests(40)
                    .with_offered_load(80),
                MachineSpec::Misp(crate::TopologySpec::Single8),
            ),
        )
        .with_seed(11);
        let record = execute_run(0, &spec).unwrap();
        assert_eq!(record.kind, "sim");
        assert_eq!(record.scenario.as_deref(), Some("poisson"));
        assert_eq!(record.offered_load, Some(80));
        assert_eq!(record.workload, None);
        assert_eq!(record.workers, None);
        assert_eq!(record.seed, 11);
        let service = record
            .sim
            .expect("sim metrics")
            .service
            .expect("scenario runs populate service metrics");
        assert_eq!(service.admitted, 40);
        assert_eq!(service.completed, 40);
        assert_eq!(service.dropped, 0);
        assert!(service.latency_p50 > 0);
        assert!(service.latency_p50 <= service.latency_p95);
        assert!(service.latency_p95 <= service.latency_p99);
        assert!(service.latency_p99 <= service.latency_p999);
        assert!(service.throughput_per_gcycle > 0.0);
    }

    /// The fig7 spanning rule: on an uneven topology at load 0 the measured
    /// application must occupy only the AMS-carrying processor, exactly as
    /// the paper's Figure 7 helper built the machine by hand.
    #[test]
    fn ams_span_only_matches_a_hand_built_figure7_machine() {
        let topo = TopologySpec::Uneven { ams: 3, singles: 4 };

        let spec_sim = SimSpec::workload(
            "RayTracer",
            MachineSpec::Misp(topo),
            crate::grids::RAYTRACER_SHREDS,
        )
        .with_ams_span_only();
        let record = execute_run(0, &RunSpec::sim("1x4+4/load0", spec_sim)).unwrap();
        let via_harness = record.sim.expect("sim metrics").total_cycles;

        // Hand-built machine, following the seed fig7 binary line for line.
        let workload = catalog::by_name("RayTracer").expect("catalog has RayTracer");
        let mut library = misp_isa::ProgramLibrary::new();
        let scheduler = workload.build(&mut library, crate::grids::RAYTRACER_SHREDS);
        let topology = topo.build();
        let mut machine =
            misp_core::MispMachine::new(topology.clone(), experiment_config(), library);
        let ray = machine.add_process("RayTracer", Box::new(scheduler), Some(0));
        for proc_idx in 1..topology.processors().len() {
            if !topology.processors()[proc_idx].ams().is_empty() {
                machine.add_thread(ray, Some(proc_idx));
            }
        }
        machine.set_measured(vec![ray]);
        let direct = machine.run().expect("direct run").total_cycles.as_u64();

        assert_eq!(via_harness, direct);
    }

    #[test]
    fn execution_is_deterministic_across_calls() {
        let spec = RunSpec::sim(
            "kmeans/smp",
            SimSpec::workload("kmeans", MachineSpec::Smp { cores: 4 }, 4),
        );
        let a = execute_run(0, &spec).unwrap();
        let b = execute_run(0, &spec).unwrap();
        assert_eq!(a, b);
    }

    /// Tracing and interval metrics are pure observers: enabling both leaves
    /// every simulation result (cycles, event-log digest) untouched, and the
    /// artifacts appear exactly when requested.
    #[test]
    fn tracing_and_metrics_are_observers_not_participants() {
        let plain = RunSpec::sim(
            "kmeans/smp",
            SimSpec::workload("kmeans", MachineSpec::Smp { cores: 4 }, 4),
        );
        let traced = RunSpec::sim(
            "kmeans/smp",
            SimSpec::workload("kmeans", MachineSpec::Smp { cores: 4 }, 4)
                .with_trace(true)
                .with_metrics_interval(100_000),
        );
        let (a, art_a) = execute_run_with_artifacts(0, &plain).unwrap();
        let (b, art_b) = execute_run_with_artifacts(0, &traced).unwrap();
        assert!(art_a.trace.is_none(), "no trace unless requested");
        assert!(art_a.metrics.is_none(), "no samples unless requested");
        assert!(art_a.queue.is_some(), "queue profile is always on");
        let trace = art_b.trace.as_ref().expect("trace ring");
        assert!(!trace.events.is_empty());
        let metrics = art_b.metrics.as_ref().expect("interval samples");
        assert!(!metrics.samples.is_empty());
        assert_eq!(metrics.interval, 100_000);
        let sa = a.sim.expect("sim metrics");
        let sb = b.sim.expect("sim metrics");
        assert_eq!(sa.total_cycles, sb.total_cycles);
        assert_eq!(
            sa.log_digest, sb.log_digest,
            "tracing must not perturb the run"
        );
    }

    /// Non-simulation grid points return empty artifacts.
    #[test]
    fn non_sim_points_carry_no_artifacts() {
        let spec = RunSpec::topology("4x2", crate::TopologySpec::Quad2);
        let (_, artifacts) = execute_run_with_artifacts(0, &spec).unwrap();
        assert_eq!(artifacts, RunArtifacts::default());
    }
}
