//! The named experiment grids: one per figure/table of the paper plus the
//! two ablations, exactly the sweeps the `misp-bench` binaries render.

use crate::spec::{FleetSpec, GridSpec, MachineSpec, RunSpec, ScenarioSpec, SimSpec, TopologySpec};
use misp_cache::CacheConfig;
use misp_core::{LoadBalancerPolicy, RingPolicy};
use misp_types::SignalCost;
use misp_workloads::catalog;

/// Number of hardware contexts in the paper's evaluation machine.
pub const SEQUENCERS: usize = 8;

/// Number of worker shreds used by the single-machine experiments (one per
/// hardware context, as the OpenMP runtime would configure).
pub const WORKERS: usize = 8;

/// RayTracer is decomposed into many more shreds than sequencers so the work
/// queue can balance load when some sequencers run slower (the paper's
/// RayTracer is a task-queue renderer).
pub const RAYTRACER_SHREDS: usize = 64;

/// Highest competitor-process load of the Figure 7 study.
pub const MAX_LOAD: usize = 4;

/// The MISP uniprocessor used by the single-machine experiments (1 OMS +
/// 7 AMS).
const MISP_UP: TopologySpec = TopologySpec::Uniprocessor {
    ams: SEQUENCERS - 1,
};

/// Figure 4 — speedup of MISP (1 OMS + 7 AMS) and an 8-core SMP over
/// single-sequencer execution, across all 16 workloads.
#[must_use]
pub fn fig4() -> GridSpec {
    let mut grid = GridSpec::new(
        "fig4",
        "MISP performance: speedup of 1 OMS + 7 AMS and 8-core SMP vs. 1P, all workloads",
    )
    .with_family("figures");
    for workload in catalog::all() {
        let name = workload.name();
        grid.push(RunSpec::sim(
            format!("{name}/serial"),
            SimSpec::workload(name, MachineSpec::Serial, WORKERS),
        ));
        grid.push(
            RunSpec::sim(
                format!("{name}/misp"),
                SimSpec::workload(name, MachineSpec::Misp(MISP_UP), WORKERS),
            )
            .with_baseline(format!("{name}/serial")),
        );
        grid.push(
            RunSpec::sim(
                format!("{name}/smp"),
                SimSpec::workload(name, MachineSpec::Smp { cores: SEQUENCERS }, WORKERS),
            )
            .with_baseline(format!("{name}/serial")),
        );
    }
    grid
}

/// Figure 5 — sensitivity to signal cost: each workload at the ideal, 500,
/// 1000 and 5000 cycle signal design points on the MISP uniprocessor.
#[must_use]
pub fn fig5() -> GridSpec {
    let mut grid = GridSpec::new(
        "fig5",
        "Sensitivity to signal cost: overhead of 500/1000/5000-cycle signaling over ideal",
    )
    .with_family("figures");
    for workload in catalog::all() {
        let name = workload.name();
        let ideal_id = format!("{name}/ideal");
        let ideal = SimSpec::workload(name, MachineSpec::Misp(MISP_UP), WORKERS)
            .with_signal(SignalCost::Ideal);
        grid.push(RunSpec::sim(ideal_id.clone(), ideal));
        for cost in SignalCost::figure5_points() {
            let point =
                SimSpec::workload(name, MachineSpec::Misp(MISP_UP), WORKERS).with_signal(cost);
            grid.push(
                RunSpec::sim(format!("{name}/sig{}", cost.cycles().as_u64()), point)
                    .with_baseline(ideal_id.clone()),
            );
        }
    }
    grid
}

/// The machine partitionings Figure 6 depicts, in presentation order.
#[must_use]
pub fn fig6_topologies() -> Vec<(&'static str, TopologySpec)> {
    vec![
        ("4x2", TopologySpec::Quad2),
        ("2x4", TopologySpec::Dual4),
        ("1x8", TopologySpec::Single8),
        ("1x4+4", TopologySpec::Uneven { ams: 3, singles: 4 }),
        ("1x7+1", TopologySpec::Uneven { ams: 6, singles: 1 }),
        ("1x6+2", TopologySpec::Uneven { ams: 5, singles: 2 }),
        ("1x5+3", TopologySpec::Uneven { ams: 4, singles: 3 }),
    ]
}

/// Figure 6 — the MISP MP machine partitionings, validated structurally.
#[must_use]
pub fn fig6() -> GridSpec {
    let mut grid = GridSpec::new(
        "fig6",
        "MISP MP configurations: 8 sequencers partitioned into MISP processors",
    )
    .with_family("figures");
    for (name, topo) in fig6_topologies() {
        grid.push(RunSpec::topology(name, topo));
    }
    grid
}

/// Figure 7 — RayTracer throughput under competitor load, across MISP MP
/// configurations, the SMP baseline and the ideal repartitioning.  Every
/// simulation point is normalized (via its baseline reference) to the
/// unloaded 1×8 run.
#[must_use]
pub fn fig7() -> GridSpec {
    let mut grid = GridSpec::new(
        "fig7",
        "MISP MP performance: RayTracer throughput under competitor load, vs. unloaded 1x8",
    )
    .with_family("figures");
    let baseline_id = "1x8/load0".to_string();
    let push_point = |grid: &mut GridSpec, id: String, topo: Option<TopologySpec>, load| {
        let machine = match topo {
            Some(t) => MachineSpec::Misp(t),
            None => MachineSpec::Smp { cores: SEQUENCERS },
        };
        // The paper's spanning rule at every load, including zero: on MISP
        // the RayTracer occupies only AMS-carrying processors.  The SMP
        // baseline has no such notion, so its records must not claim it.
        let ams_span_only = matches!(machine, MachineSpec::Misp(_));
        let mut spec =
            SimSpec::workload("RayTracer", machine, RAYTRACER_SHREDS).with_competitors(load);
        if ams_span_only {
            spec = spec.with_ams_span_only();
        }
        let mut run = RunSpec::sim(id.clone(), spec);
        if id != baseline_id {
            run = run.with_baseline(baseline_id.clone());
        }
        grid.push(run);
    };

    // Ideal: at load k the machine is repartitioned so the k competitors each
    // get a dedicated single-sequencer CPU.
    for load in 0..=MAX_LOAD {
        let topo = TopologySpec::Uneven {
            ams: SEQUENCERS - 1 - load,
            singles: load,
        };
        push_point(&mut grid, format!("ideal/load{load}"), Some(topo), load);
    }
    for load in 0..=MAX_LOAD {
        push_point(&mut grid, format!("smp/load{load}"), None, load);
    }
    let fixed: Vec<(&str, TopologySpec)> = vec![
        ("4x2", TopologySpec::Quad2),
        ("2x4", TopologySpec::Dual4),
        ("1x8", TopologySpec::Single8),
        ("1x7+1", TopologySpec::Uneven { ams: 6, singles: 1 }),
        ("1x6+2", TopologySpec::Uneven { ams: 5, singles: 2 }),
        ("1x5+3", TopologySpec::Uneven { ams: 4, singles: 3 }),
        ("1x4+4", TopologySpec::Uneven { ams: 3, singles: 4 }),
    ];
    for (name, topo) in fixed {
        for load in 0..=MAX_LOAD {
            push_point(&mut grid, format!("{name}/load{load}"), Some(topo), load);
        }
    }
    grid
}

/// Table 1 — serializing-event counts of every workload on the MISP
/// uniprocessor.
#[must_use]
pub fn table1() -> GridSpec {
    let mut grid = GridSpec::new(
        "table1",
        "Serializing events: OMS- and AMS-originated privileged events per workload",
    )
    .with_family("tables");
    for workload in catalog::all() {
        let name = workload.name();
        grid.push(RunSpec::sim(
            format!("{name}/misp"),
            SimSpec::workload(name, MachineSpec::Misp(MISP_UP), WORKERS),
        ));
    }
    grid
}

/// Table 2 — ShredLib porting coverage of every ported application.
#[must_use]
pub fn table2() -> GridSpec {
    let mut grid = GridSpec::new(
        "table2",
        "Applications ported to MISP: ShredLib threading-API coverage analysis",
    )
    .with_family("tables");
    for app in catalog::table2_applications() {
        grid.push(RunSpec::port_analysis(app.name));
    }
    grid
}

/// Ablation A1 — the suspend-all ring-transition policy versus the
/// speculative continue-through-Ring-0 alternative of Section 2.3.
#[must_use]
pub fn ablation_ring0() -> GridSpec {
    let mut grid = GridSpec::new(
        "ablation_ring0",
        "Ring-transition policy: suspend-all vs. speculative continue-through-Ring-0",
    )
    .with_family("ablations");
    for workload in catalog::all() {
        let name = workload.name();
        for (variant, policy) in [
            ("suspend", RingPolicy::SuspendAll),
            ("speculative", RingPolicy::Speculative),
        ] {
            let spec = SimSpec::workload(name, MachineSpec::Misp(MISP_UP), WORKERS)
                .with_ring_policy(policy);
            let mut run = RunSpec::sim(format!("{name}/{variant}"), spec);
            if variant == "speculative" {
                run = run.with_baseline(format!("{name}/suspend"));
            }
            grid.push(run);
        }
    }
    grid
}

/// Ablation A2 — the Section 5.3 page pre-touch optimization.
#[must_use]
pub fn ablation_pretouch() -> GridSpec {
    let mut grid = GridSpec::new(
        "ablation_pretouch",
        "Page pre-touch in the serial region: proxy events removed and runtime delta",
    )
    .with_family("ablations");
    for workload in catalog::all() {
        let name = workload.name();
        grid.push(RunSpec::sim(
            format!("{name}/base"),
            SimSpec::workload(name, MachineSpec::Misp(MISP_UP), WORKERS),
        ));
        let pretouch = SimSpec::workload(name, MachineSpec::Misp(MISP_UP), WORKERS).with_pretouch();
        grid.push(
            RunSpec::sim(format!("{name}/pretouch"), pretouch)
                .with_baseline(format!("{name}/base")),
        );
    }
    grid
}

/// The shared-L2 capacity points of the `cache_sensitivity` grid, largest
/// first: `(label, sets, ways)` with the default 4 KiB line.
#[must_use]
pub fn cache_l2_points() -> Vec<(&'static str, u32, u32)> {
    vec![
        ("l2_2m", 64, 8),   // 2 MiB — holds every variant's full footprint
        ("l2_512k", 32, 4), // 512 KiB — holds a per-core slice, not the sum
        ("l2_128k", 16, 2), // 128 KiB — thrashes under streaming
    ]
}

/// Cache sensitivity — the locality-variant workloads
/// ([`catalog::cache_variants`]: streaming, blocked, shared-hot-set) with the
/// cache hierarchy **enabled**, swept over shared-L2 capacity on both the
/// MISP uniprocessor and the SMP baseline.
///
/// Within each workload × machine group the largest L2 is the baseline, so
/// `speedup_vs_baseline` reads as the slowdown smaller L2s inflict.  On MISP
/// all eight sequencers share one L2 (one processor); on SMP every core has
/// a private one — which is exactly the architectural contrast the grid
/// exposes: the shared-hot-set variant resolves its sharing in the MISP L2
/// but pays coherence misses across SMP cores.
#[must_use]
pub fn cache_sensitivity() -> GridSpec {
    let mut grid = GridSpec::new(
        "cache_sensitivity",
        "Cache sensitivity: locality variants x shared-L2 capacity x MISP/SMP, cache model enabled",
    )
    .with_family("sensitivity");
    for workload in catalog::cache_variants() {
        let name = workload.name();
        for (machine_label, machine) in [
            ("misp", MachineSpec::Misp(MISP_UP)),
            ("smp", MachineSpec::Smp { cores: SEQUENCERS }),
        ] {
            let baseline_id = format!("{name}/{machine_label}/l2_2m");
            for (cache_label, sets, ways) in cache_l2_points() {
                let spec = SimSpec::workload(name, machine.clone(), WORKERS)
                    .with_cache(CacheConfig::enabled_default().with_l2(sets, ways));
                let id = format!("{name}/{machine_label}/{cache_label}");
                let mut run = RunSpec::sim(id.clone(), spec);
                if id != baseline_id {
                    run = run.with_baseline(baseline_id.clone());
                }
                grid.push(run);
            }
        }
    }
    grid
}

/// The stream seed shared by every `service_load` grid point: paired runs
/// (MISP vs. SMP, pool 7 vs. pool 1) replay the identical customer stream.
pub const SERVICE_SEED: u64 = 2026;

/// The poisson offered-load sweep points of the `service_load` grid, in
/// percent of pool capacity.
#[must_use]
pub fn service_load_points() -> Vec<u32> {
    vec![30, 60, 90]
}

/// Service load — the open-loop request-serving study: latency percentiles
/// and throughput versus offered load on MISP and SMP (common random
/// numbers pair the machines per load), the bursty and diurnal arrival
/// variants at nominal load, and an M/M/7-vs-M/M/1 pool-shape comparison on
/// the identical stream.
#[must_use]
pub fn service_load() -> GridSpec {
    service_load_at(None)
}

/// The `service_load` grid with every offered load overridden to
/// `offered_load` (the `sweep --offered-load` hook).  `None` gives the
/// committed default grid: a 30/60/90% poisson sweep, bursty/diurnal at
/// 60%, and the pool-shape pair at a light 10%.
#[must_use]
pub fn service_load_at(offered_load: Option<u32>) -> GridSpec {
    let mut grid = GridSpec::new(
        "service_load",
        "Open-loop service: latency percentiles vs. offered load x MISP/SMP, \
         arrival variants, pool shapes",
    )
    .with_family("scenarios");
    let machines = || {
        [
            ("misp", MachineSpec::Misp(MISP_UP)),
            ("smp", MachineSpec::Smp { cores: SEQUENCERS }),
        ]
    };

    // Poisson offered-load sweep; per load the SMP run is baselined on the
    // paired MISP run so speedup_vs_baseline reads as MISP-relative.
    let loads = offered_load.map_or_else(service_load_points, |pct| vec![pct]);
    for &load in &loads {
        let misp_id = format!("poisson/load{load}/misp");
        for (label, machine) in machines() {
            let spec = SimSpec::scenario(
                ScenarioSpec::new("poisson").with_offered_load(load),
                machine,
            );
            let mut run =
                RunSpec::sim(format!("poisson/load{load}/{label}"), spec).with_seed(SERVICE_SEED);
            if label == "smp" {
                run = run.with_baseline(misp_id.clone());
            }
            grid.push(run);
        }
    }

    // The bursty and diurnal arrival processes at the nominal load.
    let nominal = offered_load.unwrap_or(60);
    for scenario in ["bursty", "diurnal"] {
        let misp_id = format!("{scenario}/load{nominal}/misp");
        for (label, machine) in machines() {
            let spec = SimSpec::scenario(
                ScenarioSpec::new(scenario).with_offered_load(nominal),
                machine,
            );
            let mut run = RunSpec::sim(format!("{scenario}/load{nominal}/{label}"), spec)
                .with_seed(SERVICE_SEED);
            if label == "smp" {
                run = run.with_baseline(misp_id.clone());
            }
            grid.push(run);
        }
    }

    // Pool-shape study: the identical lightly-loaded stream against the full
    // 7-wide pool and a single-server gate (M/M/7 vs. M/M/1 on common random
    // numbers; the arrival rate stays derived from the nominal width).
    let light = offered_load.unwrap_or(10);
    let pool7_id = format!("poisson/load{light}/pool7");
    grid.push(
        RunSpec::sim(
            pool7_id.clone(),
            SimSpec::scenario(
                ScenarioSpec::new("poisson").with_offered_load(light),
                MachineSpec::Misp(MISP_UP),
            ),
        )
        .with_seed(SERVICE_SEED),
    );
    grid.push(
        RunSpec::sim(
            format!("poisson/load{light}/pool1"),
            SimSpec::scenario(
                ScenarioSpec::new("poisson")
                    .with_offered_load(light)
                    .with_pool_width(1),
                MachineSpec::Misp(MISP_UP),
            ),
        )
        .with_seed(SERVICE_SEED)
        .with_baseline(pool7_id),
    );
    grid
}

/// The fleet sizes the `fleet_service` grid sweeps.
#[must_use]
pub fn fleet_machine_points() -> Vec<usize> {
    vec![4, 16]
}

/// Fleet service — the multi-machine request-serving study: a poisson
/// stream offered to a fleet of identical boxes through a seeded load
/// balancer, swept over fleet size × balancing policy × machine type at
/// nominal load, plus a 16-machine saturation pair at 90%.
///
/// Every point replays the same central customer stream
/// ([`SERVICE_SEED`]; the stream rate scales with the fleet so per-machine
/// load is held constant), so policies and machine types are compared under
/// common random numbers.  Per point the SMP run is baselined on the paired
/// MISP run, exactly as in [`service_load`].
#[must_use]
pub fn fleet_service() -> GridSpec {
    let mut grid = GridSpec::new(
        "fleet_service",
        "Fleet service: latency percentiles vs. fleet size x LB policy x MISP/SMP, \
         load-balanced poisson stream on common random numbers",
    )
    .with_family("scenarios");
    let machines = || {
        [
            ("misp", MachineSpec::Misp(MISP_UP)),
            ("smp", MachineSpec::Smp { cores: SEQUENCERS }),
        ]
    };
    let push_pair = |grid: &mut GridSpec, fleet: FleetSpec, load: u32| {
        let prefix = format!(
            "fleet{}/{}/load{load}",
            fleet.machines,
            fleet.policy.label()
        );
        let misp_id = format!("{prefix}/misp");
        for (label, machine) in machines() {
            let spec = SimSpec::scenario(
                ScenarioSpec::new("poisson").with_offered_load(load),
                machine,
            )
            .with_fleet(fleet);
            let mut run = RunSpec::sim(format!("{prefix}/{label}"), spec).with_seed(SERVICE_SEED);
            if label == "smp" {
                run = run.with_baseline(misp_id.clone());
            }
            grid.push(run);
        }
    };

    for machines in fleet_machine_points() {
        for policy in LoadBalancerPolicy::all() {
            push_pair(&mut grid, FleetSpec::new(machines, policy), 60);
        }
    }
    // The saturation point: the largest fleet under round-robin at 90%.
    push_pair(
        &mut grid,
        FleetSpec::new(16, LoadBalancerPolicy::RoundRobin),
        90,
    );
    grid
}

/// The names of every predefined grid, in a stable order.
#[must_use]
pub fn all_names() -> Vec<&'static str> {
    vec![
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "table1",
        "table2",
        "ablation_ring0",
        "ablation_pretouch",
        "cache_sensitivity",
        "service_load",
        "fleet_service",
    ]
}

/// Looks a predefined grid up by name.
#[must_use]
pub fn by_name(name: &str) -> Option<GridSpec> {
    match name {
        "fig4" => Some(fig4()),
        "fig5" => Some(fig5()),
        "fig6" => Some(fig6()),
        "fig7" => Some(fig7()),
        "table1" => Some(table1()),
        "table2" => Some(table2()),
        "ablation_ring0" => Some(ablation_ring0()),
        "ablation_pretouch" => Some(ablation_pretouch()),
        "cache_sensitivity" => Some(cache_sensitivity()),
        "service_load" => Some(service_load()),
        "fleet_service" => Some(fleet_service()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_named_grid_validates() {
        for name in all_names() {
            let grid = by_name(name).expect("named grid exists");
            assert_eq!(grid.name, name);
            assert!(!grid.runs.is_empty(), "{name} is non-empty");
            grid.validate();
        }
        assert!(by_name("no-such-grid").is_none());
    }

    #[test]
    fn grid_sizes_match_the_figures() {
        let workloads = catalog::all().len();
        assert_eq!(fig4().runs.len(), workloads * 3);
        assert_eq!(fig5().runs.len(), workloads * 4);
        assert_eq!(fig6().runs.len(), 7);
        assert_eq!(fig7().runs.len(), (2 + 7) * (MAX_LOAD + 1));
        assert_eq!(table1().runs.len(), workloads);
        assert_eq!(table2().runs.len(), catalog::table2_applications().len());
        assert_eq!(ablation_ring0().runs.len(), workloads * 2);
        assert_eq!(ablation_pretouch().runs.len(), workloads * 2);
        assert_eq!(
            cache_sensitivity().runs.len(),
            catalog::cache_variants().len() * 2 * cache_l2_points().len()
        );
        // 3 poisson loads x 2 machines + bursty/diurnal x 2 machines + the
        // pool-shape pair.
        assert_eq!(
            service_load().runs.len(),
            service_load_points().len() * 2 + 2 * 2 + 2
        );
        // fleet sizes x policies x 2 machines + the saturation pair.
        assert_eq!(
            fleet_service().runs.len(),
            fleet_machine_points().len() * LoadBalancerPolicy::all().len() * 2 + 2
        );
    }

    #[test]
    fn every_grid_declares_a_family() {
        for name in all_names() {
            let grid = by_name(name).expect("named grid exists");
            assert_ne!(grid.family, "misc", "{name} must declare its family");
        }
        assert_eq!(service_load().family, "scenarios");
        assert_eq!(fig4().family, "figures");
        assert_eq!(table2().family, "tables");
    }

    #[test]
    fn service_load_pairs_share_the_stream_seed_and_baselines() {
        let grid = service_load();
        for run in &grid.runs {
            assert_eq!(run.seed, SERVICE_SEED, "{}: CRN requires one seed", run.id);
            let crate::RunKind::Sim(spec) = &run.kind else {
                panic!("service grid holds only simulations");
            };
            let crate::spec::WorkSource::Scenario(sc) = &spec.source else {
                panic!("service grid holds only scenarios");
            };
            assert!(sc.offered_load.is_some(), "{}: load is explicit", run.id);
            if run.id.ends_with("/smp") {
                let baseline = run.baseline.as_deref().expect("smp pairs with misp");
                assert!(baseline.ends_with("/misp"), "{} -> {baseline}", run.id);
            }
            if run.id.ends_with("/pool1") {
                assert_eq!(sc.pool_width, Some(1));
                let baseline = run.baseline.as_deref().expect("pool1 pairs with pool7");
                assert!(baseline.ends_with("/pool7"), "{} -> {baseline}", run.id);
            }
        }
    }

    #[test]
    fn service_load_override_collapses_the_load_axis() {
        let grid = service_load_at(Some(75));
        assert_eq!(grid.runs.len(), 2 + 2 * 2 + 2);
        for run in &grid.runs {
            let crate::RunKind::Sim(spec) = &run.kind else {
                panic!("service grid holds only simulations");
            };
            let crate::spec::WorkSource::Scenario(sc) = &spec.source else {
                panic!("service grid holds only scenarios");
            };
            assert_eq!(sc.offered_load, Some(75), "{}", run.id);
        }
        grid.validate();
    }

    #[test]
    fn fleet_service_pairs_share_the_stream_seed_and_cover_a_16_machine_fleet() {
        let grid = fleet_service();
        let mut saw_16 = false;
        for run in &grid.runs {
            assert_eq!(run.seed, SERVICE_SEED, "{}: CRN requires one seed", run.id);
            let crate::RunKind::Sim(spec) = &run.kind else {
                panic!("fleet grid holds only simulations");
            };
            let fleet = spec.fleet.expect("every point declares its fleet");
            assert!(run.id.starts_with(&format!("fleet{}/", fleet.machines)));
            saw_16 |= fleet.machines >= 16;
            if run.id.ends_with("/smp") {
                let baseline = run.baseline.as_deref().expect("smp pairs with misp");
                assert!(baseline.ends_with("/misp"), "{} -> {baseline}", run.id);
            }
        }
        assert!(saw_16, "the grid exercises a 16-machine fleet");
        grid.validate();
    }

    #[test]
    fn cache_sensitivity_points_enable_the_cache_and_reference_the_largest_l2() {
        let grid = cache_sensitivity();
        for run in &grid.runs {
            let crate::RunKind::Sim(spec) = &run.kind else {
                panic!("cache grid holds only simulations");
            };
            let cache = spec.cache.expect("every point models the cache");
            assert!(cache.enabled);
            if run.id.ends_with("/l2_2m") {
                assert!(run.baseline.is_none(), "{} is its group's baseline", run.id);
            } else {
                let baseline = run.baseline.as_deref().expect("smaller L2s have one");
                assert!(baseline.ends_with("/l2_2m"), "{} -> {baseline}", run.id);
            }
        }
    }

    #[test]
    fn fig7_points_reference_the_unloaded_1x8_baseline() {
        let grid = fig7();
        for run in &grid.runs {
            if run.id == "1x8/load0" {
                assert!(run.baseline.is_none());
            } else {
                assert_eq!(run.baseline.as_deref(), Some("1x8/load0"));
            }
        }
    }
}
