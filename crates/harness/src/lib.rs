//! Parallel experiment-sweep harness for the MISP reproduction.
//!
//! Every figure and table of the paper is a *grid*: a cross product of
//! workloads, machines, topologies and configuration overrides.  This crate
//! declares grids as data ([`GridSpec`]/[`RunSpec`]), fans the points out
//! across OS threads with a work-stealing batch scheduler
//! ([`scheduler::run_batch`]), and aggregates the per-run
//! [`misp_sim::SimReport`]s into a versioned JSON document
//! ([`SweepResults`], schema version [`SCHEMA_VERSION`]).
//!
//! Because the simulation engine is strictly deterministic per run and every
//! record lands in its grid slot regardless of which worker produced it, the
//! aggregate is byte-identical for any `--threads` value.  [`run_grid`]
//! asserts exactly that invariant on every parallel sweep (see
//! [`VerifyMode`]), so a scheduling bug cannot silently corrupt results.
//!
//! # Example
//!
//! Run the Table 2 grid (the cheapest predefined sweep — pure analysis, no
//! simulation) and read one record back; `examples/custom_sweep.rs` shows a
//! simulation grid with baselines and speedups:
//!
//! ```
//! use misp_harness::{grids, run_grid, SweepOptions, VerifyMode};
//!
//! let options = SweepOptions { threads: 4, verify: VerifyMode::SpotCheck };
//! let results = run_grid(&grids::table2(), &options).unwrap();
//! assert_eq!(results.run_count, results.records.len() as u64);
//! let raytracer = results.record("RayTracer").unwrap();
//! assert!(raytracer.port.as_ref().unwrap().api_calls > 0);
//! ```
//!
//! The predefined grids live in [`grids`]; the `sweep` binary runs any of
//! them from the command line (`sweep fig4 --threads 8 --out
//! results/fig4.json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
mod exec;
mod results;
pub mod scheduler;
mod spec;

pub mod grids;

pub use exec::{
    config_with_signal, execute_run, execute_run_with_artifacts, experiment_config, RunArtifacts,
};
pub use results::{
    FleetMetrics, IntervalMetricsSummary, MachineMetrics, PortMetrics, RunRecord, ServiceMetrics,
    SimMetrics, SweepResults, TopologyMetrics, TraceMetrics, SCHEMA_VERSION,
};
pub use spec::{
    FleetSpec, GridSpec, MachineSpec, RunKind, RunSpec, ScenarioSpec, SimSpec, TopologySpec,
    WorkSource,
};

use misp_types::Result;

/// How [`run_grid`] re-checks that parallel fan-out reproduced serial
/// execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyMode {
    /// Trust the engine's determinism; no re-execution.
    Off,
    /// Re-execute one deterministic grid point on the caller's thread and
    /// assert its record is identical to the parallel one.  Cheap (one extra
    /// run per sweep) and catches cross-thread state leaks.
    #[default]
    SpotCheck,
    /// Re-execute the whole grid serially and assert every record matches.
    /// Doubles the sweep cost; used by the determinism test suite.
    Full,
}

/// Options of one sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepOptions {
    /// Number of OS threads to fan the grid out across.
    pub threads: usize,
    /// Determinism re-check mode.
    pub verify: VerifyMode,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            verify: VerifyMode::default(),
        }
    }
}

impl SweepOptions {
    /// Default options with the thread count taken from the
    /// `MISP_SWEEP_THREADS` environment variable when set (the figure/table
    /// binaries use this so CI can pin their parallelism).
    #[must_use]
    pub fn from_env() -> Self {
        let mut options = SweepOptions::default();
        if let Some(threads) = std::env::var("MISP_SWEEP_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            options.threads = threads.max(1);
        }
        options
    }
}

/// Runs every point of `grid` and aggregates the records into a
/// [`SweepResults`] document.
///
/// Points are distributed across `options.threads` OS threads by the
/// work-stealing batch scheduler; records are assembled in grid order, then
/// baseline references are resolved into `speedup_vs_baseline` values.  With
/// a parallel fan-out the determinism invariant is re-checked per
/// `options.verify`.
///
/// # Errors
///
/// Returns the first simulation or configuration error any grid point
/// produced (by grid order).
///
/// # Panics
///
/// Panics if the grid is malformed (duplicate ids, dangling baselines) or if
/// the determinism re-check fails — both are bugs, not input errors.
pub fn run_grid(grid: &GridSpec, options: &SweepOptions) -> Result<SweepResults> {
    run_grid_with_artifacts(grid, options).map(|(results, _)| results)
}

/// [`run_grid`] plus one [`RunArtifacts`] per grid point, in grid order.
///
/// The artifacts ride outside the [`SweepResults`] document: the results
/// schema stays free of bulk data, while callers that asked for tracing or
/// interval metrics can stream the by-products to sidecar files (see
/// [`artifacts`]).  Because each record lands in its grid slot regardless of
/// which worker produced it and every run is internally single-threaded, the
/// artifacts — like the records — are byte-identical for any thread count.
///
/// # Errors
///
/// Same failure modes as [`run_grid`].
///
/// # Panics
///
/// Same panic conditions as [`run_grid`].
pub fn run_grid_with_artifacts(
    grid: &GridSpec,
    options: &SweepOptions,
) -> Result<(SweepResults, Vec<RunArtifacts>)> {
    grid.validate();
    let outcomes = scheduler::run_batch(grid.runs.len(), options.threads, |index| {
        execute_run_with_artifacts(index, &grid.runs[index])
    });
    let mut records = Vec::with_capacity(outcomes.len());
    let mut artifacts = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        let (record, artifact) = outcome?;
        records.push(record);
        artifacts.push(artifact);
    }

    if options.threads > 1 && !records.is_empty() {
        match options.verify {
            VerifyMode::Off => {}
            VerifyMode::SpotCheck => {
                let index = records.len() / 2;
                verify_record(grid, index, &records[index]);
            }
            VerifyMode::Full => {
                for (index, record) in records.iter().enumerate() {
                    verify_record(grid, index, record);
                }
            }
        }
    }

    // Resolve baseline references into speedups.  Topology and port-analysis
    // records have no cycle counts, so only sim records participate.
    let cycles_by_id: std::collections::BTreeMap<String, u64> = records
        .iter()
        .filter_map(|r| r.sim.as_ref().map(|s| (r.id.clone(), s.total_cycles)))
        .collect();
    for record in &mut records {
        let Some(baseline_id) = record.baseline.clone() else {
            continue;
        };
        if let (Some(sim), Some(&baseline_cycles)) =
            (record.sim.as_mut(), cycles_by_id.get(&baseline_id))
        {
            sim.speedup_vs_baseline =
                SimMetrics::speedup_vs_baseline(&record.id, baseline_cycles, sim.total_cycles);
        }
    }

    Ok((
        SweepResults {
            schema_version: SCHEMA_VERSION,
            grid: grid.name.clone(),
            description: grid.description.clone(),
            run_count: records.len() as u64,
            records,
        },
        artifacts,
    ))
}

/// Re-executes grid point `index` serially and asserts the parallel record
/// matches bit for bit.
fn verify_record(grid: &GridSpec, index: usize, parallel: &RunRecord) {
    let serial = execute_run(index, &grid.runs[index])
        .expect("a grid point that succeeded in parallel must succeed serially");
    assert_eq!(
        &serial, parallel,
        "grid {}: point {} produced a different record under parallel \
         fan-out than under serial execution — the engine or the scheduler \
         violated determinism",
        grid.name, grid.runs[index].id
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> GridSpec {
        GridSpec::new("small", "three quick points")
            .run(RunSpec::sim(
                "dense_mvm/serial",
                SimSpec::workload("dense_mvm", MachineSpec::Serial, 4),
            ))
            .run(
                RunSpec::sim(
                    "dense_mvm/misp",
                    SimSpec::workload(
                        "dense_mvm",
                        MachineSpec::Misp(TopologySpec::Uniprocessor { ams: 3 }),
                        4,
                    ),
                )
                .with_baseline("dense_mvm/serial"),
            )
            .run(RunSpec::topology("1x8", TopologySpec::Single8))
    }

    #[test]
    fn parallel_and_serial_sweeps_are_byte_identical() {
        let grid = small_grid();
        let serial = run_grid(
            &grid,
            &SweepOptions {
                threads: 1,
                verify: VerifyMode::Off,
            },
        )
        .unwrap();
        let parallel = run_grid(
            &grid,
            &SweepOptions {
                threads: 4,
                verify: VerifyMode::Full,
            },
        )
        .unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(
            serial.to_canonical_json().unwrap(),
            parallel.to_canonical_json().unwrap()
        );
    }

    #[test]
    fn baselines_resolve_into_speedups() {
        let results = run_grid(&small_grid(), &SweepOptions::default()).unwrap();
        let misp = results.sim("dense_mvm/misp").unwrap();
        let speedup = misp.speedup_vs_baseline.expect("baseline resolved");
        assert!(speedup > 1.0, "4-sequencer run beats serial: {speedup}");
        assert!(
            results
                .sim("dense_mvm/serial")
                .unwrap()
                .speedup_vs_baseline
                .is_none(),
            "the baseline itself has no baseline"
        );
    }

    #[test]
    fn errors_propagate_from_grid_points() {
        let grid = GridSpec::new("bad", "").run(RunSpec::sim(
            "x",
            SimSpec::workload("no-such-workload", MachineSpec::Serial, 4),
        ));
        assert!(run_grid(&grid, &SweepOptions::default()).is_err());
    }

    #[test]
    fn from_env_respects_thread_override() {
        // Only exercises the parsing path with the variable unset: the
        // default must be at least one thread.
        let options = SweepOptions::from_env();
        assert!(options.threads >= 1);
    }
}
