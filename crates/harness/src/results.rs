//! The versioned sweep-results schema.
//!
//! A sweep aggregates one [`RunRecord`] per grid point into a
//! [`SweepResults`] document.  The document is what the `sweep` binary
//! writes, what the golden-figure tests diff, and what downstream tooling
//! parses — so it is versioned ([`SCHEMA_VERSION`]) and contains only
//! deterministic data: no wall-clock times, no thread counts, no hash-map
//! iteration order.  Running the same grid with any `--threads` value
//! produces byte-identical JSON.

use misp_cache::CacheStats;
use misp_sim::SimReport;
use serde::Serialize;

/// Version of the results schema.  Bump when a field is added, removed or
/// reinterpreted so downstream consumers can dispatch on it.
///
/// Version history:
///
/// * **1** — initial schema.
/// * **2** — simulation records gained machine-wide TLB totals
///   (`tlb_hits`/`tlb_misses`/`tlb_flushes`), an optional `cache` metrics
///   section (present when the cache model is enabled), and the run
///   metadata gained an optional `cache` geometry label.
/// * **3** — open-loop scenario runs: simulation metrics gained a `service`
///   section (request counts, latency percentiles, throughput) and the run
///   metadata gained `scenario` and `offered_load` fields.  All three are
///   *omitted* — not serialized as `null` — when absent, so every version-2
///   field of a pre-existing record re-serializes byte-identically.
/// * **4** — observability: simulation metrics gained a `trace` summary
///   (event count, overwrite count, ring digest — present exactly when the
///   run was traced) and an `interval_metrics` summary (sampling period,
///   sample count, stream digest — present exactly when the sampler ran).
///   Like the version-3 additions both are *omitted* when absent, so a
///   default sweep re-serializes every version-3 field byte-identically; the
///   bulk data itself (trace events, JSONL samples) is written to sidecar
///   artifact files, never into this document.
/// * **5** — fleet simulation: records of fleet scenario runs gained a
///   `fleet` section (machine count, network latency, load-balancer policy,
///   fleet digest, and one per-machine entry with cycles, event-log digest,
///   dispatch count and service metrics); the top-level `sim` section of such
///   a record aggregates the whole fleet (max cycles, summed counters, merged
///   service percentiles, fleet digest as `log_digest`).  The section is
///   *omitted* for single-machine runs, so every version-4 record
///   re-serializes byte-identically.
pub const SCHEMA_VERSION: u32 = 5;

/// Request-serving metrics of one scenario run, flattened from
/// [`misp_sim::ServiceStats`].  Latencies are in cycles from *scheduled*
/// arrival to completion (the open-loop discipline: queueing and generator
/// lag count as latency); percentiles are integral bucket upper bounds
/// clamped to the observed maximum.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServiceMetrics {
    /// Requests admitted into the system.
    pub admitted: u64,
    /// Requests that completed service.
    pub completed: u64,
    /// Requests dropped at a full bounded queue.
    pub dropped: u64,
    /// Median request latency, in cycles.
    pub latency_p50: u64,
    /// 95th-percentile request latency, in cycles.
    pub latency_p95: u64,
    /// 99th-percentile request latency, in cycles.
    pub latency_p99: u64,
    /// 99.9th-percentile request latency, in cycles.
    pub latency_p999: u64,
    /// Arithmetic mean request latency, in cycles.
    pub latency_mean: f64,
    /// High-water mark of outstanding requests (queued + in service).
    pub max_outstanding: u64,
    /// Completed requests per billion cycles of measured runtime — the
    /// throughput the offered-load sweep plots.
    pub throughput_per_gcycle: f64,
}

impl ServiceMetrics {
    /// Flattens the engine's service statistics, using `total_cycles` (the
    /// run's end-to-end cycle count) for the throughput denominator.
    #[must_use]
    pub fn from_stats(stats: &misp_sim::ServiceStats, total_cycles: u64) -> Self {
        let (latency_p50, latency_p95, latency_p99, latency_p999) = stats.latency.percentiles();
        ServiceMetrics {
            admitted: stats.admitted,
            completed: stats.completed,
            dropped: stats.dropped,
            latency_p50,
            latency_p95,
            latency_p99,
            latency_p999,
            latency_mean: stats.latency.mean(),
            max_outstanding: stats.max_outstanding,
            throughput_per_gcycle: if total_cycles == 0 {
                0.0
            } else {
                stats.completed as f64 * 1.0e9 / total_cycles as f64
            },
        }
    }
}

/// Summary of the trace ring of one traced run.  The events themselves live
/// in the sidecar trace artifact; the record keeps just enough to check that
/// an artifact matches its run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceMetrics {
    /// Events retained in the ring at the end of the run.
    pub events: u64,
    /// Events overwritten after the ring filled (0 means the ring saw
    /// everything).
    pub dropped: u64,
    /// Hex-encoded deterministic digest of the retained events.
    pub digest: String,
}

impl TraceMetrics {
    /// Summarizes a trace report.
    #[must_use]
    pub fn from_report(report: &misp_sim::TraceReport) -> Self {
        TraceMetrics {
            events: report.events.len() as u64,
            dropped: report.dropped,
            digest: format!("{:016x}", report.digest),
        }
    }
}

/// Summary of the interval-metrics stream of one sampled run.  The samples
/// themselves live in the sidecar JSONL artifact.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct IntervalMetricsSummary {
    /// Sampling period, in simulated cycles.
    pub interval: u64,
    /// Number of samples taken.
    pub samples: u64,
    /// Hex-encoded deterministic digest of the sample stream.
    pub digest: String,
}

impl IntervalMetricsSummary {
    /// Summarizes a metrics report.
    #[must_use]
    pub fn from_report(report: &misp_sim::MetricsReport) -> Self {
        IntervalMetricsSummary {
            interval: report.interval,
            samples: report.samples.len() as u64,
            digest: format!("{:016x}", report.digest),
        }
    }
}

/// Metrics of one simulation run, flattened from the [`SimReport`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SimMetrics {
    /// End-to-end cycles of the measured process(es).
    pub total_cycles: u64,
    /// Hex-encoded deterministic digest of the platform event log.
    pub log_digest: String,
    /// OMS-originated system calls.
    pub oms_syscalls: u64,
    /// OMS-originated page faults.
    pub oms_page_faults: u64,
    /// Timer interrupts taken on OMSs.
    pub oms_timer: u64,
    /// Other interrupts taken on OMSs.
    pub oms_other_interrupts: u64,
    /// AMS-originated system calls (proxy executions).
    pub ams_syscalls: u64,
    /// AMS-originated page faults (proxy executions).
    pub ams_page_faults: u64,
    /// Proxy-execution episodes.
    pub proxy_executions: u64,
    /// Serialization episodes (Ring 0 entries that suspended AMSs).
    pub serializations: u64,
    /// OS thread context switches.
    pub context_switches: u64,
    /// User-level `SIGNAL` instructions executed.
    pub signals_sent: u64,
    /// Total AMS cycles lost to suspension.
    pub suspension_cycles: u64,
    /// Machine-wide TLB hits.
    pub tlb_hits: u64,
    /// Machine-wide TLB misses.
    pub tlb_misses: u64,
    /// Machine-wide TLB flushes (CR3 writes and shootdowns).
    pub tlb_flushes: u64,
    /// Machine-wide cache totals; present exactly when the run modeled the
    /// cache hierarchy.
    pub cache: Option<CacheStats>,
    /// Speedup versus the run named by the spec's `baseline`
    /// (`baseline_cycles / total_cycles`); filled by the aggregator.
    pub speedup_vs_baseline: Option<f64>,
    /// Request-serving metrics; present exactly when the run drove an
    /// open-loop scenario (omitted from the JSON otherwise).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub service: Option<ServiceMetrics>,
    /// Trace-ring summary; present exactly when the run was traced (omitted
    /// from the JSON otherwise).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub trace: Option<TraceMetrics>,
    /// Interval-metrics summary; present exactly when the sampler ran
    /// (omitted from the JSON otherwise).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub interval_metrics: Option<IntervalMetricsSummary>,
}

impl SimMetrics {
    /// Computes `baseline_cycles / total_cycles` for the
    /// `speedup_vs_baseline` field.
    ///
    /// Returns `None` — and logs a warning to stderr — when either side is
    /// zero: a zero-cycle run would otherwise serialize `inf` (or, with a
    /// zero baseline, a meaningless `0`) into the results JSON, which is not
    /// representable in strict JSON and poisons downstream tooling.
    #[must_use]
    pub fn speedup_vs_baseline(
        run_id: &str,
        baseline_cycles: u64,
        total_cycles: u64,
    ) -> Option<f64> {
        if baseline_cycles == 0 || total_cycles == 0 {
            eprintln!(
                "warning: run {run_id:?}: cannot compute speedup_vs_baseline \
                 (baseline_cycles = {baseline_cycles}, total_cycles = {total_cycles}); \
                 recording null"
            );
            return None;
        }
        Some(baseline_cycles as f64 / total_cycles as f64)
    }

    /// Flattens a [`SimReport`] into the schema's metrics record.
    #[must_use]
    pub fn from_report(report: &SimReport) -> Self {
        let s = &report.stats;
        SimMetrics {
            total_cycles: report.total_cycles.as_u64(),
            log_digest: format!("{:016x}", report.log_digest),
            oms_syscalls: s.oms_events.syscalls,
            oms_page_faults: s.oms_events.page_faults,
            oms_timer: s.oms_events.timer,
            oms_other_interrupts: s.oms_events.other_interrupts,
            ams_syscalls: s.ams_events.syscalls,
            ams_page_faults: s.ams_events.page_faults,
            proxy_executions: s.proxy_executions,
            serializations: s.serializations,
            context_switches: s.context_switches,
            signals_sent: s.signals_sent,
            suspension_cycles: s.suspension_cycles.as_u64(),
            tlb_hits: s.tlb.hits,
            tlb_misses: s.tlb.misses,
            tlb_flushes: s.tlb.flushes,
            cache: s.cache,
            speedup_vs_baseline: None,
            service: s
                .service
                .as_ref()
                .map(|svc| ServiceMetrics::from_stats(svc, report.total_cycles.as_u64())),
            trace: report.trace.as_ref().map(TraceMetrics::from_report),
            interval_metrics: report
                .metrics
                .as_ref()
                .map(IntervalMetricsSummary::from_report),
        }
    }

    /// Total serializing events, the Table 1 bottom line.
    #[must_use]
    pub fn total_serializing_events(&self) -> u64 {
        self.oms_syscalls
            + self.oms_page_faults
            + self.oms_timer
            + self.oms_other_interrupts
            + self.ams_syscalls
            + self.ams_page_faults
    }
}

/// One machine's slice of a fleet record.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MachineMetrics {
    /// Machine index within the fleet (dispatch order).
    pub machine: u64,
    /// End-to-end cycles of this machine's measured process.
    pub total_cycles: u64,
    /// Hex-encoded deterministic digest of this machine's event log.
    pub log_digest: String,
    /// Requests the load balancer dispatched to this machine.
    pub requests_dispatched: u64,
    /// This machine's request-serving metrics; omitted when the machine's
    /// run carried no service model.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub service: Option<ServiceMetrics>,
}

/// Fleet-level metrics of one fleet scenario run (schema version 5).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetMetrics {
    /// Number of machines in the fleet.
    pub machines: u64,
    /// Cross-machine network latency, in cycles.
    pub network_latency: u64,
    /// Load-balancer policy label (`"rr"`, `"random"`, `"least"`).
    pub policy: String,
    /// Hex-encoded digest over every machine's event-log digest in machine
    /// order: the one number that proves two fleet runs identical.
    pub fleet_digest: String,
    /// One entry per machine, in machine order.
    pub per_machine: Vec<MachineMetrics>,
}

/// Structural metrics of one topology grid point (Figure 6).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TopologyMetrics {
    /// Human-readable shape, from `MispTopology::describe`.
    pub description: String,
    /// Number of MISP processors.
    pub processors: u64,
    /// Total sequencers across the machine.
    pub total_sequencers: u64,
    /// OS-visible CPUs (one per OMS).
    pub oms_count: u64,
    /// Application-managed sequencers.
    pub ams_count: u64,
    /// AMS count of each processor, in order.
    pub per_processor_ams: Vec<u64>,
}

/// Porting-coverage metrics of one Table 2 application.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PortMetrics {
    /// The paper's one-line description of the application.
    pub description: String,
    /// Threading-API calls analysed.
    pub api_calls: u64,
    /// Calls ShredLib's compatibility layer translates mechanically.
    pub mechanical: u64,
    /// Calls needing structural attention.
    pub structural: u64,
    /// Calls with no mapping at all.
    pub unmapped: u64,
    /// `mechanical / api_calls`, as a percentage.
    pub mechanical_percent: f64,
    /// Porting effort in days reported by the paper (reference only).
    pub paper_effort_days: f64,
    /// Whether the paper reports structural changes for this port.
    pub paper_structural_changes: bool,
}

/// One aggregated grid-point record: the run metadata plus exactly one of the
/// metric sections, depending on the run kind.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunRecord {
    /// Position of the point in the grid declaration.
    pub index: u64,
    /// Grid-point identifier.
    pub id: String,
    /// `"sim"`, `"topology"` or `"port-analysis"`.
    pub kind: String,
    /// Catalog workload name (simulation records only).
    pub workload: Option<String>,
    /// Machine label (simulation records only), e.g. `"misp:1x8"`.
    pub machine: Option<String>,
    /// Worker shred count (simulation records only).
    pub workers: Option<u64>,
    /// Signal cost in cycles (simulation records only; `None` means the
    /// default cost model).
    pub signal_cycles: Option<u64>,
    /// Whether page pre-touch was enabled.
    pub pretouch: bool,
    /// Ring-transition policy override, if any (`"suspend-all"` or
    /// `"speculative"`).
    pub ring_policy: Option<String>,
    /// Competitor-process load.
    pub competitors: u64,
    /// Whether the application spanned only AMS-carrying processors (the
    /// Figure 7 rule) rather than every processor.
    pub ams_span_only: bool,
    /// Cache-hierarchy geometry label (e.g. `"l1:64KiB/2w,l2:2MiB/8w"`);
    /// `None` when the run used the default disabled cache model.
    pub cache: Option<String>,
    /// Deterministic seed recorded for this point.
    pub seed: u64,
    /// The id of the baseline run, if the spec declared one.
    pub baseline: Option<String>,
    /// Simulation metrics (`kind == "sim"`).
    pub sim: Option<SimMetrics>,
    /// Topology metrics (`kind == "topology"`).
    pub topology: Option<TopologyMetrics>,
    /// Porting metrics (`kind == "port-analysis"`).
    pub port: Option<PortMetrics>,
    /// Scenario catalog name (scenario simulation records only; omitted from
    /// the JSON otherwise).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub scenario: Option<String>,
    /// Effective offered load in percent of pool capacity (scenario records
    /// only; omitted from the JSON otherwise).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub offered_load: Option<u32>,
    /// Fleet metrics (fleet scenario records only; omitted from the JSON
    /// otherwise).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub fleet: Option<FleetMetrics>,
}

/// The aggregated results of one grid sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepResults {
    /// The results schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The grid name.
    pub grid: String,
    /// The grid description.
    pub description: String,
    /// Number of grid points.
    pub run_count: u64,
    /// One record per grid point, in declaration order.
    pub records: Vec<RunRecord>,
}

impl SweepResults {
    /// Looks a record up by grid-point id.
    #[must_use]
    pub fn record(&self, id: &str) -> Option<&RunRecord> {
        self.records.iter().find(|r| r.id == id)
    }

    /// The simulation metrics of the record with the given id.
    #[must_use]
    pub fn sim(&self, id: &str) -> Option<&SimMetrics> {
        self.record(id).and_then(|r| r.sim.as_ref())
    }

    /// Serializes the document to the canonical pretty JSON form (trailing
    /// newline included) used by the `sweep` binary and the golden files.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures from the JSON emitter.
    pub fn to_canonical_json(&self) -> Result<String, serde_json::Error> {
        let mut json = serde_json::to_string_pretty(self)?;
        json.push('\n');
        Ok(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: &str) -> RunRecord {
        RunRecord {
            index: 0,
            id: id.to_string(),
            kind: "topology".to_string(),
            workload: None,
            machine: None,
            workers: None,
            signal_cycles: None,
            pretouch: false,
            ring_policy: None,
            competitors: 0,
            ams_span_only: false,
            cache: None,
            seed: 0,
            baseline: None,
            sim: None,
            topology: None,
            port: None,
            scenario: None,
            offered_load: None,
            fleet: None,
        }
    }

    #[test]
    fn speedup_guard_rejects_zero_on_either_side() {
        assert_eq!(SimMetrics::speedup_vs_baseline("r", 0, 100), None);
        assert_eq!(SimMetrics::speedup_vs_baseline("r", 100, 0), None);
        assert_eq!(SimMetrics::speedup_vs_baseline("r", 0, 0), None);
        let s = SimMetrics::speedup_vs_baseline("r", 200, 100).expect("both non-zero");
        assert!((s - 2.0).abs() < f64::EPSILON);
        let json = serde_json::to_string(&SimMetrics::speedup_vs_baseline("r", 0, 7)).unwrap();
        assert_eq!(
            json, "null",
            "guarded speedup serializes as null, not inf/NaN"
        );
    }

    #[test]
    fn lookup_by_id() {
        let results = SweepResults {
            schema_version: SCHEMA_VERSION,
            grid: "g".to_string(),
            description: String::new(),
            run_count: 2,
            records: vec![record("a"), record("b")],
        };
        assert_eq!(results.record("b").unwrap().id, "b");
        assert!(results.record("c").is_none());
        assert!(results.sim("a").is_none(), "topology record has no sim");
    }

    #[test]
    fn canonical_json_is_stable_and_newline_terminated() {
        let results = SweepResults {
            schema_version: SCHEMA_VERSION,
            grid: "g".to_string(),
            description: "d".to_string(),
            run_count: 1,
            records: vec![record("a")],
        };
        let a = results.to_canonical_json().unwrap();
        let b = results.to_canonical_json().unwrap();
        assert_eq!(a, b);
        assert!(a.ends_with('\n'));
        assert!(a.contains("\"schema_version\": 5"));
    }

    /// Version-2 compatibility: the fields added in version 3 are omitted
    /// when absent, so a record that predates them serializes without any
    /// mention of `scenario`, `offered_load` or `service`.
    #[test]
    fn absent_v3_fields_are_omitted_not_null() {
        let json = serde_json::to_string(&record("a")).unwrap();
        assert!(!json.contains("scenario"), "{json}");
        assert!(!json.contains("offered_load"), "{json}");
        assert!(!json.contains("service"), "{json}");
        // Pre-existing optional fields keep their null representation.
        assert!(json.contains("\"workload\":null"), "{json}");
    }

    /// Version-3 compatibility: the observability summaries added in
    /// version 4 are omitted when the run was not traced or sampled, so a
    /// default sweep's metrics serialize without any mention of them.
    #[test]
    fn absent_v4_fields_are_omitted_not_null() {
        let report = misp_sim::SimReport {
            total_cycles: misp_types::Cycles::new(1),
            completions: std::collections::BTreeMap::new(),
            stats: misp_sim::SimStats::default(),
            log_digest: 0,
            trace: None,
            metrics: None,
            queue: misp_sim::QueueProfile::default(),
        };
        let metrics = SimMetrics::from_report(&report);
        let json = serde_json::to_string(&metrics).unwrap();
        assert!(!json.contains("\"trace\""), "{json}");
        assert!(!json.contains("interval_metrics"), "{json}");
    }

    #[test]
    fn observability_summaries_flatten_counts_and_hex_digests() {
        let trace = misp_sim::TraceReport {
            events: vec![misp_sim::TraceEvent {
                time: 7,
                seq: 0,
                kind: misp_sim::TraceKind::ShredStart,
            }],
            dropped: 3,
            digest: 0xabc,
        };
        let t = TraceMetrics::from_report(&trace);
        assert_eq!(t.events, 1);
        assert_eq!(t.dropped, 3);
        assert_eq!(t.digest, "0000000000000abc");
        let metrics = misp_sim::MetricsReport {
            interval: 500,
            samples: vec![misp_sim::IntervalSample::default(); 2],
            digest: 0x1f,
        };
        let m = IntervalMetricsSummary::from_report(&metrics);
        assert_eq!(m.interval, 500);
        assert_eq!(m.samples, 2);
        assert_eq!(m.digest, "000000000000001f");
    }

    /// Version-4 compatibility: the fleet section added in version 5 is
    /// omitted from single-machine records, so they serialize without any
    /// mention of it.
    #[test]
    fn absent_v5_fields_are_omitted_not_null() {
        let json = serde_json::to_string(&record("a")).unwrap();
        assert!(!json.contains("\"fleet\""), "{json}");
        let fleet = FleetMetrics {
            machines: 2,
            network_latency: 200_000,
            policy: "rr".to_string(),
            fleet_digest: format!("{:016x}", 0xbeef_u64),
            per_machine: vec![MachineMetrics {
                machine: 0,
                total_cycles: 10,
                log_digest: format!("{:016x}", 1_u64),
                requests_dispatched: 5,
                service: None,
            }],
        };
        let json = serde_json::to_string(&fleet).unwrap();
        assert!(json.contains("\"policy\":\"rr\""), "{json}");
        assert!(
            !json.contains("\"service\""),
            "per-machine service is omitted when absent: {json}"
        );
    }

    #[test]
    fn service_metrics_flatten_counts_percentiles_and_throughput() {
        let mut stats = misp_sim::ServiceStats {
            admitted: 4,
            completed: 3,
            dropped: 1,
            max_outstanding: 2,
            ..misp_sim::ServiceStats::default()
        };
        for v in [10, 20, 30] {
            stats.latency.record(v);
        }
        let m = ServiceMetrics::from_stats(&stats, 1_000_000_000);
        assert_eq!(m.admitted, 4);
        assert_eq!(m.completed, 3);
        assert_eq!(m.dropped, 1);
        assert_eq!(m.latency_p50, 20);
        assert_eq!(m.latency_p999, 30);
        assert!((m.latency_mean - 20.0).abs() < f64::EPSILON);
        assert!((m.throughput_per_gcycle - 3.0).abs() < 1e-12);
        // The zero-cycle guard mirrors the speedup guard: no inf in JSON.
        let z = ServiceMetrics::from_stats(&stats, 0);
        assert_eq!(z.throughput_per_gcycle, 0.0);
    }
}
