//! The work-stealing batch scheduler.
//!
//! Grid points are independent, so the only scheduling concern is load
//! balance: run lengths vary by orders of magnitude across a grid (a Figure 7
//! multi-programming point simulates billions of cycles, a Figure 6 point
//! none at all).  The scheduler deals per-worker deques round-robin, then
//! lets idle workers steal from the back of their peers' deques — the
//! classic batch work-stealing shape, built on `std` threads and locks only.
//!
//! Determinism: every job writes its result into its own pre-allocated slot,
//! so the output order is the input order no matter which worker ran what
//! when.  Combined with a deterministic job function this makes the batch
//! output independent of the thread count — the property
//! [`crate::run_grid`] asserts.

use std::collections::VecDeque;
use std::sync::Mutex;

/// One worker's deque of job indices, lock-protected.
///
/// Contention is negligible: jobs are coarse (whole simulations), so queue
/// operations are rare relative to job run time.
struct WorkerQueue {
    jobs: Mutex<VecDeque<usize>>,
}

impl WorkerQueue {
    fn pop_front(&self) -> Option<usize> {
        self.jobs.lock().expect("queue lock poisoned").pop_front()
    }

    fn steal_back(&self) -> Option<usize> {
        self.jobs.lock().expect("queue lock poisoned").pop_back()
    }
}

/// Runs `count` jobs across `threads` OS threads and returns their results in
/// job order.  `job(i)` must be safe to call from any thread; results land in
/// slot `i` regardless of which worker executed the job.
///
/// With `threads <= 1` the batch runs inline on the caller's thread, which is
/// the serial reference the parallel path must reproduce bit-for-bit.
pub fn run_batch<T, F>(count: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || count <= 1 {
        return (0..count).map(job).collect();
    }

    let workers = threads.min(count);
    let queues: Vec<WorkerQueue> = (0..workers)
        .map(|_| WorkerQueue {
            jobs: Mutex::new(VecDeque::new()),
        })
        .collect();
    // Deal jobs round-robin so every worker starts with a share of the grid;
    // stealing evens out whatever imbalance the deal leaves.
    for index in 0..count {
        queues[index % workers]
            .jobs
            .lock()
            .expect("queue lock poisoned")
            .push_back(index);
    }

    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let job = &job;
            scope.spawn(move || {
                loop {
                    // Own work first (front), then steal from peers (back).
                    let next = queues[me].pop_front().or_else(|| {
                        (1..queues.len())
                            .map(|offset| (me + offset) % queues.len())
                            .find_map(|victim| queues[victim].steal_back())
                    });
                    let Some(index) = next else { break };
                    let result = job(index);
                    *slots[index].lock().expect("slot lock poisoned") = Some(result);
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock poisoned")
                .expect("every job index was executed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_job_order_for_any_thread_count() {
        let serial = run_batch(17, 1, |i| i * i);
        for threads in [2, 3, 8, 32] {
            assert_eq!(run_batch(17, threads, |i| i * i), serial);
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let executions = AtomicUsize::new(0);
        let out = run_batch(100, 4, |i| {
            executions.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(executions.load(Ordering::Relaxed), 100);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_job_lengths_are_balanced_by_stealing() {
        // One long job dealt to worker 0 plus many short ones: the batch must
        // still complete with correct results (stealing keeps peers busy).
        let out = run_batch(33, 4, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i + 1
        });
        assert_eq!(out, (1..=33).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_batches() {
        assert_eq!(run_batch(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(run_batch(1, 8, |i| i + 41), vec![41]);
    }
}
