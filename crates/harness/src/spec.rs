//! Declarative experiment-grid specifications.
//!
//! A [`GridSpec`] describes one sweep — the cross product of workloads,
//! platforms, topologies and configuration overrides behind one figure or
//! table — as plain data.  Every grid point is a [`RunSpec`]; the harness
//! executes grid points independently (they share no state), which is what
//! makes the fan-out in [`crate::run_grid`] embarrassingly parallel.

use misp_cache::CacheConfig;
use misp_core::{FleetTopology, LoadBalancerPolicy, MispTopology, RingPolicy};
use misp_types::{Cycles, SignalCost};

/// How the machine of one grid point is built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineSpec {
    /// A single MISP sequencer (the "1P" baseline the figures divide by).
    Serial,
    /// A MISP machine with the given topology.
    Misp(TopologySpec),
    /// The SMP baseline with the given core count.
    Smp {
        /// Number of OS-visible cores.
        cores: usize,
    },
}

impl MachineSpec {
    /// A short machine label for run metadata (`"serial"`, `"misp:1x8"`,
    /// `"smp:8"`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            MachineSpec::Serial => "serial".to_string(),
            MachineSpec::Misp(topo) => format!("misp:{}", topo.label()),
            MachineSpec::Smp { cores } => format!("smp:{cores}"),
        }
    }
}

/// The MISP machine partitionings the experiments use, as data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySpec {
    /// One MISP processor: 1 OMS + `ams` AMSs.
    Uniprocessor {
        /// Number of application-managed sequencers.
        ams: usize,
    },
    /// Four MISP processors of 1 OMS + 1 AMS each (the paper's 4×2).
    Quad2,
    /// Two MISP processors of 1 OMS + 3 AMS each (the paper's 2×4).
    Dual4,
    /// One MISP processor of 1 OMS + 7 AMS (the paper's 1×8).
    Single8,
    /// One MISP processor of 1 OMS + `ams` AMSs plus `singles`
    /// single-sequencer CPUs (the paper's uneven partitionings).
    Uneven {
        /// AMS count of the MISP processor.
        ams: usize,
        /// Number of additional plain CPUs.
        singles: usize,
    },
}

impl TopologySpec {
    /// Builds the concrete topology.
    ///
    /// # Panics
    ///
    /// Panics if a `Uniprocessor` spec exceeds the machine's sequencer
    /// budget; grid declarations are static data, so this is a programming
    /// error, not an input error.
    #[must_use]
    pub fn build(&self) -> MispTopology {
        match *self {
            TopologySpec::Uniprocessor { ams } => {
                MispTopology::uniprocessor(ams).expect("valid uniprocessor topology")
            }
            TopologySpec::Quad2 => MispTopology::config_4x2(),
            TopologySpec::Dual4 => MispTopology::config_2x4(),
            TopologySpec::Single8 => MispTopology::config_1x8(),
            TopologySpec::Uneven { ams, singles } => MispTopology::config_uneven(ams, singles),
        }
    }

    /// A short label for run metadata (`"1x8"`, `"4x2"`, `"1x4+4"`, …).
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            TopologySpec::Uniprocessor { ams } => format!("1x{}", ams + 1),
            TopologySpec::Quad2 => "4x2".to_string(),
            TopologySpec::Dual4 => "2x4".to_string(),
            TopologySpec::Single8 => "1x8".to_string(),
            TopologySpec::Uneven { ams, singles } => format!("1x{}+{singles}", ams + 1),
        }
    }
}

/// What a simulation grid point runs: a fixed-size catalog workload or an
/// open-loop request-serving scenario.  Grids declare both uniformly through
/// [`SimSpec::workload`] and [`SimSpec::scenario`].
#[derive(Debug, Clone, PartialEq)]
pub enum WorkSource {
    /// A catalog workload, by name (`misp_workloads::catalog`).
    Workload(String),
    /// An open-loop request-serving scenario with optional overrides.
    Scenario(ScenarioSpec),
}

/// A request-serving scenario reference: a catalog name
/// (`misp_workloads::scenario`) plus the grid-level overrides.  Everything
/// left `None` keeps the scenario's catalog default.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario catalog name (`"poisson"`, `"bursty"`, `"diurnal"`).
    pub name: String,
    /// Override of the number of requests in the stream.
    pub requests: Option<usize>,
    /// Override of the offered load, in percent of pool capacity.
    pub offered_load: Option<u32>,
    /// Override of the dispatch-gate pool width (the arrival rate stays
    /// derived from the nominal width — the common-random-numbers handle).
    pub pool_width: Option<usize>,
    /// Bound on outstanding requests; arrivals beyond it are dropped.
    pub queue_bound: Option<usize>,
}

impl ScenarioSpec {
    /// References the named catalog scenario with no overrides.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        ScenarioSpec {
            name: name.into(),
            requests: None,
            offered_load: None,
            pool_width: None,
            queue_bound: None,
        }
    }

    /// Overrides the number of requests in the stream.
    #[must_use]
    pub fn with_requests(mut self, requests: usize) -> Self {
        self.requests = Some(requests);
        self
    }

    /// Overrides the offered load (percent of pool capacity).
    #[must_use]
    pub fn with_offered_load(mut self, pct: u32) -> Self {
        self.offered_load = Some(pct);
        self
    }

    /// Overrides the dispatch-gate pool width.
    #[must_use]
    pub fn with_pool_width(mut self, width: usize) -> Self {
        self.pool_width = Some(width);
        self
    }

    /// Bounds outstanding requests.
    #[must_use]
    pub fn with_queue_bound(mut self, bound: usize) -> Self {
        self.queue_bound = Some(bound);
        self
    }
}

/// The fleet shape of a scenario grid point: how many identical machines the
/// request stream is balanced across, under which policy, and how far apart
/// they sit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetSpec {
    /// Number of identical machines in the fleet.
    pub machines: usize,
    /// The load-balancer policy dispatching requests to machines.
    pub policy: LoadBalancerPolicy,
    /// Cross-machine network latency override, in cycles; `None` keeps
    /// [`FleetTopology::DEFAULT_NETWORK_LATENCY`].
    pub network_latency: Option<u64>,
}

impl FleetSpec {
    /// A fleet of `machines` boxes under `policy` with the default network
    /// latency.
    #[must_use]
    pub fn new(machines: usize, policy: LoadBalancerPolicy) -> Self {
        FleetSpec {
            machines,
            policy,
            network_latency: None,
        }
    }

    /// Overrides the cross-machine network latency, in cycles.
    #[must_use]
    pub fn with_network_latency(mut self, cycles: u64) -> Self {
        self.network_latency = Some(cycles);
        self
    }

    /// Builds the concrete fleet topology.
    ///
    /// # Panics
    ///
    /// Panics on a zero machine count or zero latency; grid declarations are
    /// static data, so either is a programming error, not an input error.
    #[must_use]
    pub fn build(&self) -> FleetTopology {
        match self.network_latency {
            Some(cycles) => {
                FleetTopology::with_network_latency(self.machines, self.policy, Cycles::new(cycles))
            }
            None => FleetTopology::new(self.machines, self.policy),
        }
        .expect("valid fleet spec")
    }

    /// A short label for run ids (`"fleet16-rr"`).
    #[must_use]
    pub fn label(&self) -> String {
        format!("fleet{}-{}", self.machines, self.policy.label())
    }
}

/// What one grid point computes.
#[derive(Debug, Clone, PartialEq)]
pub enum RunKind {
    /// A full simulation of a catalog workload on a machine.  Boxed: the
    /// spec dwarfs the other variants, and grid declarations are cold data.
    Sim(Box<SimSpec>),
    /// A structural description of a topology (Figure 6 has no runtime
    /// component).
    Topology(TopologySpec),
    /// A ShredLib porting-coverage analysis of a Table 2 application.
    PortAnalysis {
        /// The application name, as in `catalog::table2_applications`.
        application: String,
    },
}

/// The simulation parameters of one grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSpec {
    /// What the point runs: a catalog workload or a scenario.
    pub source: WorkSource,
    /// The machine to run on.
    pub machine: MachineSpec,
    /// Number of worker shreds (workload runs; scenario runs size themselves
    /// from the recorded stream and carry 0 here).
    pub workers: usize,
    /// Signal-cost override; `None` uses the paper's 5000-cycle default.
    pub signal: Option<SignalCost>,
    /// Enable the Section 5.3 page pre-touch optimization.
    pub pretouch: bool,
    /// Ring-transition policy override (MISP machines only).
    pub ring_policy: Option<RingPolicy>,
    /// Number of single-threaded competitor processes (Figure 7 load).
    pub competitors: usize,
    /// Restrict the application's OS threads to MISP processors with AMSs
    /// (the Figure 7 spanning rule); plain single-sequencer CPUs are left to
    /// the OS.  Off by default: plain MP runs span every processor.
    pub ams_span_only: bool,
    /// Cache-hierarchy override; `None` keeps the default disabled cache
    /// model (the paper's flat memory cost).
    pub cache: Option<CacheConfig>,
    /// Whether the engine may use its macro-step fast path
    /// ([`misp_sim::SimConfig::batch`]).  On by default; results are
    /// byte-identical either way, so this knob exists for benchmarking the
    /// event-per-operation engine and is deliberately not recorded in the
    /// results schema.
    pub batch: bool,
    /// Record a structured trace ring during the run
    /// ([`misp_sim::TraceConfig::enabled`]).  Off by default; tracing never
    /// changes simulation results, only the artifacts attached to the run.
    pub trace: bool,
    /// Interval-metrics sampling period in simulated cycles; `0` (the
    /// default) disables the sampler.
    pub metrics_interval: u64,
    /// Fleet shape for scenario runs: the request stream is balanced across
    /// this many machines and the fleet is co-simulated under the
    /// conservative synchronizer.  `None` (the default) runs one machine.
    pub fleet: Option<FleetSpec>,
}

impl SimSpec {
    fn with_source(source: WorkSource, machine: MachineSpec, workers: usize) -> Self {
        SimSpec {
            source,
            machine,
            workers,
            signal: None,
            pretouch: false,
            ring_policy: None,
            competitors: 0,
            ams_span_only: false,
            cache: None,
            batch: true,
            trace: false,
            metrics_interval: 0,
            fleet: None,
        }
    }

    /// A plain dedicated-machine run of the named catalog workload on
    /// `machine` with `workers` worker shreds; chain the `with_*` setters for
    /// the non-default variants.
    #[must_use]
    pub fn workload(name: impl Into<String>, machine: MachineSpec, workers: usize) -> Self {
        SimSpec::with_source(WorkSource::Workload(name.into()), machine, workers)
    }

    /// An open-loop scenario run on `machine`.  Scenario runs size themselves
    /// from the recorded request stream, so there is no worker count; the
    /// stream seed lives on the enclosing [`RunSpec`]
    /// ([`RunSpec::with_seed`]).
    #[must_use]
    pub fn scenario(scenario: ScenarioSpec, machine: MachineSpec) -> Self {
        SimSpec::with_source(WorkSource::Scenario(scenario), machine, 0)
    }

    /// Sets the signal-cost override (Figure 5 sweep).
    #[must_use]
    pub fn with_signal(mut self, signal: SignalCost) -> Self {
        self.signal = Some(signal);
        self
    }

    /// Enables the Section 5.3 page pre-touch optimization.
    #[must_use]
    pub fn with_pretouch(mut self) -> Self {
        self.pretouch = true;
        self
    }

    /// Sets the ring-transition policy override.
    #[must_use]
    pub fn with_ring_policy(mut self, policy: RingPolicy) -> Self {
        self.ring_policy = Some(policy);
        self
    }

    /// Loads `competitors` single-threaded competitor processes alongside
    /// the measured application (Figure 7).
    #[must_use]
    pub fn with_competitors(mut self, competitors: usize) -> Self {
        self.competitors = competitors;
        self
    }

    /// Restricts the application's OS threads to AMS-carrying processors
    /// (the Figure 7 spanning rule).
    #[must_use]
    pub fn with_ams_span_only(mut self) -> Self {
        self.ams_span_only = true;
        self
    }

    /// Enables the cache-hierarchy model with the given geometry.
    #[must_use]
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Selects whether the engine may use its macro-step fast path.
    #[must_use]
    pub fn with_batch(mut self, batch: bool) -> Self {
        self.batch = batch;
        self
    }

    /// Records a structured trace ring during the run (off by default).
    #[must_use]
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Samples interval metrics every `interval` simulated cycles (`0`
    /// disables the sampler, the default).
    #[must_use]
    pub fn with_metrics_interval(mut self, interval: u64) -> Self {
        self.metrics_interval = interval;
        self
    }

    /// Balances the scenario's request stream across a fleet of identical
    /// machines (scenario runs only; the executor rejects fleet workload
    /// runs).
    #[must_use]
    pub fn with_fleet(mut self, fleet: FleetSpec) -> Self {
        self.fleet = Some(fleet);
        self
    }
}

/// One grid point: an identifier, what to run, an optional baseline
/// reference, and a seed.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Identifier, unique within the grid (e.g. `"dense_mvm/misp"`).
    pub id: String,
    /// What this point computes.
    pub kind: RunKind,
    /// The id of the run this point's speedup is measured against, if any.
    /// The aggregator resolves it after all runs complete.
    pub baseline: Option<String>,
    /// Deterministic seed recorded in the run metadata.  For scenario runs it
    /// selects the recorded request stream (the common-random-numbers
    /// object); the engine itself is strictly deterministic, so for workload
    /// runs it is metadata only.
    pub seed: u64,
}

impl RunSpec {
    /// Creates a simulation grid point.
    #[must_use]
    pub fn sim(id: impl Into<String>, spec: SimSpec) -> Self {
        RunSpec {
            id: id.into(),
            kind: RunKind::Sim(Box::new(spec)),
            baseline: None,
            seed: 0,
        }
    }

    /// Creates a topology-description grid point.
    #[must_use]
    pub fn topology(id: impl Into<String>, topo: TopologySpec) -> Self {
        RunSpec {
            id: id.into(),
            kind: RunKind::Topology(topo),
            baseline: None,
            seed: 0,
        }
    }

    /// Creates a porting-coverage grid point.
    #[must_use]
    pub fn port_analysis(application: impl Into<String>) -> Self {
        let application = application.into();
        RunSpec {
            id: application.clone(),
            kind: RunKind::PortAnalysis { application },
            baseline: None,
            seed: 0,
        }
    }

    /// Sets the baseline run id for speedup aggregation.
    #[must_use]
    pub fn with_baseline(mut self, baseline: impl Into<String>) -> Self {
        self.baseline = Some(baseline.into());
        self
    }

    /// Sets the stream seed (scenario runs; metadata-only for the rest).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A named experiment grid: an ordered list of grid points.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Grid name (also the default results file stem).
    pub name: String,
    /// One-line description of what the grid reproduces.
    pub description: String,
    /// Family label the CLI groups grids under (`"figures"`, `"tables"`,
    /// `"ablations"`, `"sensitivity"`, `"scenarios"`, …).
    pub family: String,
    /// The grid points, in presentation order.
    pub runs: Vec<RunSpec>,
}

impl GridSpec {
    /// Creates an empty grid in the default `"misc"` family.
    #[must_use]
    pub fn new(name: impl Into<String>, description: impl Into<String>) -> Self {
        GridSpec {
            name: name.into(),
            description: description.into(),
            family: "misc".to_string(),
            runs: Vec::new(),
        }
    }

    /// Sets the family label the CLI groups this grid under.
    #[must_use]
    pub fn with_family(mut self, family: impl Into<String>) -> Self {
        self.family = family.into();
        self
    }

    /// Appends a grid point.
    pub fn push(&mut self, run: RunSpec) {
        self.runs.push(run);
    }

    /// Appends a grid point, builder style.
    #[must_use]
    pub fn run(mut self, run: RunSpec) -> Self {
        self.runs.push(run);
        self
    }

    /// Asserts that every id is unique and every baseline reference resolves.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate id or a dangling baseline; grids are static
    /// declarations, so either is a bug in the grid, not in user input.
    pub fn validate(&self) {
        let mut seen = std::collections::BTreeSet::new();
        for run in &self.runs {
            assert!(
                seen.insert(run.id.as_str()),
                "grid {}: duplicate run id {}",
                self.name,
                run.id
            );
        }
        for run in &self.runs {
            if let Some(baseline) = &run.baseline {
                assert!(
                    seen.contains(baseline.as_str()),
                    "grid {}: run {} references unknown baseline {}",
                    self.name,
                    run.id,
                    baseline
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_labels_match_the_paper() {
        assert_eq!(TopologySpec::Quad2.label(), "4x2");
        assert_eq!(TopologySpec::Dual4.label(), "2x4");
        assert_eq!(TopologySpec::Single8.label(), "1x8");
        assert_eq!(TopologySpec::Uneven { ams: 3, singles: 4 }.label(), "1x4+4");
        assert_eq!(TopologySpec::Uniprocessor { ams: 7 }.label(), "1x8");
    }

    #[test]
    fn topology_specs_build_the_expected_shapes() {
        assert_eq!(TopologySpec::Quad2.build().processors().len(), 4);
        assert_eq!(TopologySpec::Single8.build().total_sequencers(), 8);
        let uneven = TopologySpec::Uneven { ams: 3, singles: 4 }.build();
        assert_eq!(uneven.processors().len(), 5);
        assert_eq!(uneven.total_sequencers(), 8);
    }

    #[test]
    fn machine_labels() {
        assert_eq!(MachineSpec::Serial.label(), "serial");
        assert_eq!(MachineSpec::Smp { cores: 8 }.label(), "smp:8");
        assert_eq!(MachineSpec::Misp(TopologySpec::Single8).label(), "misp:1x8");
    }

    #[test]
    #[should_panic(expected = "duplicate run id")]
    fn validate_rejects_duplicate_ids() {
        let mut grid = GridSpec::new("g", "");
        grid.push(RunSpec::topology("a", TopologySpec::Single8));
        grid.push(RunSpec::topology("a", TopologySpec::Quad2));
        grid.validate();
    }

    #[test]
    #[should_panic(expected = "unknown baseline")]
    fn validate_rejects_dangling_baselines() {
        let mut grid = GridSpec::new("g", "");
        grid.push(RunSpec::topology("a", TopologySpec::Single8).with_baseline("missing"));
        grid.validate();
    }

    #[test]
    fn sim_spec_builders_set_the_fields() {
        let spec = SimSpec::workload("dense_mvm", MachineSpec::Serial, 4)
            .with_signal(SignalCost::Ideal)
            .with_pretouch()
            .with_ring_policy(RingPolicy::Speculative)
            .with_competitors(2)
            .with_ams_span_only()
            .with_batch(false)
            .with_trace(true)
            .with_metrics_interval(10_000);
        assert_eq!(spec.source, WorkSource::Workload("dense_mvm".to_string()));
        assert_eq!(spec.signal, Some(SignalCost::Ideal));
        assert!(spec.pretouch);
        assert_eq!(spec.ring_policy, Some(RingPolicy::Speculative));
        assert_eq!(spec.competitors, 2);
        assert!(spec.ams_span_only);
        assert!(!spec.batch);
        assert!(spec.cache.is_none());
        assert!(spec.trace);
        assert_eq!(spec.metrics_interval, 10_000);
        let plain = SimSpec::workload("dense_mvm", MachineSpec::Serial, 4);
        assert!(!plain.trace, "tracing is off by default");
        assert_eq!(plain.metrics_interval, 0, "sampler is off by default");
    }

    #[test]
    fn scenario_spec_carries_overrides_and_defaults() {
        let plain = ScenarioSpec::new("poisson");
        assert_eq!(plain.offered_load, None);
        assert_eq!(plain.pool_width, None);
        let tuned = ScenarioSpec::new("poisson")
            .with_requests(200)
            .with_offered_load(90)
            .with_pool_width(1)
            .with_queue_bound(16);
        assert_eq!(tuned.requests, Some(200));
        assert_eq!(tuned.offered_load, Some(90));
        assert_eq!(tuned.pool_width, Some(1));
        assert_eq!(tuned.queue_bound, Some(16));
        let spec = SimSpec::scenario(tuned, MachineSpec::Smp { cores: 8 });
        assert_eq!(spec.workers, 0, "scenarios size themselves");
        assert!(matches!(spec.source, WorkSource::Scenario(_)));
    }

    #[test]
    fn grid_builder_sets_family_and_seed() {
        let grid = GridSpec::new("g", "d")
            .with_family("scenarios")
            .run(RunSpec::topology("a", TopologySpec::Single8).with_seed(7));
        assert_eq!(grid.family, "scenarios");
        assert_eq!(grid.runs[0].seed, 7);
        assert_eq!(GridSpec::new("h", "").family, "misc");
    }

    #[test]
    fn fleet_spec_builds_and_labels_the_topology() {
        let spec = FleetSpec::new(16, LoadBalancerPolicy::RoundRobin);
        assert_eq!(spec.label(), "fleet16-rr");
        let topo = spec.build();
        assert_eq!(topo.machines(), 16);
        assert_eq!(
            topo.network_latency(),
            FleetTopology::DEFAULT_NETWORK_LATENCY
        );
        let near = FleetSpec::new(2, LoadBalancerPolicy::LeastOutstanding)
            .with_network_latency(50_000)
            .build();
        assert_eq!(near.network_latency(), Cycles::new(50_000));
        let sim = SimSpec::scenario(ScenarioSpec::new("poisson"), MachineSpec::Serial)
            .with_fleet(FleetSpec::new(4, LoadBalancerPolicy::Random));
        assert_eq!(sim.fleet.unwrap().machines, 4);
    }
}
