//! Declarative experiment-grid specifications.
//!
//! A [`GridSpec`] describes one sweep — the cross product of workloads,
//! platforms, topologies and configuration overrides behind one figure or
//! table — as plain data.  Every grid point is a [`RunSpec`]; the harness
//! executes grid points independently (they share no state), which is what
//! makes the fan-out in [`crate::run_grid`] embarrassingly parallel.

use misp_cache::CacheConfig;
use misp_core::{MispTopology, RingPolicy};
use misp_types::SignalCost;

/// How the machine of one grid point is built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineSpec {
    /// A single MISP sequencer (the "1P" baseline the figures divide by).
    Serial,
    /// A MISP machine with the given topology.
    Misp(TopologySpec),
    /// The SMP baseline with the given core count.
    Smp {
        /// Number of OS-visible cores.
        cores: usize,
    },
}

impl MachineSpec {
    /// A short machine label for run metadata (`"serial"`, `"misp:1x8"`,
    /// `"smp:8"`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            MachineSpec::Serial => "serial".to_string(),
            MachineSpec::Misp(topo) => format!("misp:{}", topo.label()),
            MachineSpec::Smp { cores } => format!("smp:{cores}"),
        }
    }
}

/// The MISP machine partitionings the experiments use, as data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySpec {
    /// One MISP processor: 1 OMS + `ams` AMSs.
    Uniprocessor {
        /// Number of application-managed sequencers.
        ams: usize,
    },
    /// Four MISP processors of 1 OMS + 1 AMS each (the paper's 4×2).
    Quad2,
    /// Two MISP processors of 1 OMS + 3 AMS each (the paper's 2×4).
    Dual4,
    /// One MISP processor of 1 OMS + 7 AMS (the paper's 1×8).
    Single8,
    /// One MISP processor of 1 OMS + `ams` AMSs plus `singles`
    /// single-sequencer CPUs (the paper's uneven partitionings).
    Uneven {
        /// AMS count of the MISP processor.
        ams: usize,
        /// Number of additional plain CPUs.
        singles: usize,
    },
}

impl TopologySpec {
    /// Builds the concrete topology.
    ///
    /// # Panics
    ///
    /// Panics if a `Uniprocessor` spec exceeds the machine's sequencer
    /// budget; grid declarations are static data, so this is a programming
    /// error, not an input error.
    #[must_use]
    pub fn build(&self) -> MispTopology {
        match *self {
            TopologySpec::Uniprocessor { ams } => {
                MispTopology::uniprocessor(ams).expect("valid uniprocessor topology")
            }
            TopologySpec::Quad2 => MispTopology::config_4x2(),
            TopologySpec::Dual4 => MispTopology::config_2x4(),
            TopologySpec::Single8 => MispTopology::config_1x8(),
            TopologySpec::Uneven { ams, singles } => MispTopology::config_uneven(ams, singles),
        }
    }

    /// A short label for run metadata (`"1x8"`, `"4x2"`, `"1x4+4"`, …).
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            TopologySpec::Uniprocessor { ams } => format!("1x{}", ams + 1),
            TopologySpec::Quad2 => "4x2".to_string(),
            TopologySpec::Dual4 => "2x4".to_string(),
            TopologySpec::Single8 => "1x8".to_string(),
            TopologySpec::Uneven { ams, singles } => format!("1x{}+{singles}", ams + 1),
        }
    }
}

/// What one grid point computes.
#[derive(Debug, Clone, PartialEq)]
pub enum RunKind {
    /// A full simulation of a catalog workload on a machine.
    Sim(SimSpec),
    /// A structural description of a topology (Figure 6 has no runtime
    /// component).
    Topology(TopologySpec),
    /// A ShredLib porting-coverage analysis of a Table 2 application.
    PortAnalysis {
        /// The application name, as in `catalog::table2_applications`.
        application: String,
    },
}

/// The simulation parameters of one grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSpec {
    /// Catalog workload name.
    pub workload: String,
    /// The machine to run on.
    pub machine: MachineSpec,
    /// Number of worker shreds.
    pub workers: usize,
    /// Signal-cost override; `None` uses the paper's 5000-cycle default.
    pub signal: Option<SignalCost>,
    /// Enable the Section 5.3 page pre-touch optimization.
    pub pretouch: bool,
    /// Ring-transition policy override (MISP machines only).
    pub ring_policy: Option<RingPolicy>,
    /// Number of single-threaded competitor processes (Figure 7 load).
    pub competitors: usize,
    /// Restrict the application's OS threads to MISP processors with AMSs
    /// (the Figure 7 spanning rule); plain single-sequencer CPUs are left to
    /// the OS.  Off by default: plain MP runs span every processor.
    pub ams_span_only: bool,
    /// Cache-hierarchy override; `None` keeps the default disabled cache
    /// model (the paper's flat memory cost).
    pub cache: Option<CacheConfig>,
    /// Whether the engine may use its macro-step fast path
    /// ([`misp_sim::SimConfig::batch`]).  On by default; results are
    /// byte-identical either way, so this knob exists for benchmarking the
    /// event-per-operation engine and is deliberately not recorded in the
    /// results schema.
    pub batch: bool,
}

impl SimSpec {
    /// A plain dedicated-machine run of `workload` on `machine` with the
    /// standard worker count.
    #[must_use]
    pub fn new(workload: impl Into<String>, machine: MachineSpec, workers: usize) -> Self {
        SimSpec {
            workload: workload.into(),
            machine,
            workers,
            signal: None,
            pretouch: false,
            ring_policy: None,
            competitors: 0,
            ams_span_only: false,
            cache: None,
            batch: true,
        }
    }
}

/// One grid point: an identifier, what to run, an optional baseline
/// reference, and a seed.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Identifier, unique within the grid (e.g. `"dense_mvm/misp"`).
    pub id: String,
    /// What this point computes.
    pub kind: RunKind,
    /// The id of the run this point's speedup is measured against, if any.
    /// The aggregator resolves it after all runs complete.
    pub baseline: Option<String>,
    /// Deterministic seed recorded in the run metadata.  The engine itself is
    /// strictly deterministic, so today the seed only disambiguates scenario
    /// variants; it is carried in the schema for forward compatibility.
    pub seed: u64,
}

impl RunSpec {
    /// Creates a simulation grid point.
    #[must_use]
    pub fn sim(id: impl Into<String>, spec: SimSpec) -> Self {
        RunSpec {
            id: id.into(),
            kind: RunKind::Sim(spec),
            baseline: None,
            seed: 0,
        }
    }

    /// Creates a topology-description grid point.
    #[must_use]
    pub fn topology(id: impl Into<String>, topo: TopologySpec) -> Self {
        RunSpec {
            id: id.into(),
            kind: RunKind::Topology(topo),
            baseline: None,
            seed: 0,
        }
    }

    /// Creates a porting-coverage grid point.
    #[must_use]
    pub fn port_analysis(application: impl Into<String>) -> Self {
        let application = application.into();
        RunSpec {
            id: application.clone(),
            kind: RunKind::PortAnalysis { application },
            baseline: None,
            seed: 0,
        }
    }

    /// Sets the baseline run id for speedup aggregation.
    #[must_use]
    pub fn with_baseline(mut self, baseline: impl Into<String>) -> Self {
        self.baseline = Some(baseline.into());
        self
    }
}

/// A named experiment grid: an ordered list of grid points.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Grid name (also the default results file stem).
    pub name: String,
    /// One-line description of what the grid reproduces.
    pub description: String,
    /// The grid points, in presentation order.
    pub runs: Vec<RunSpec>,
}

impl GridSpec {
    /// Creates an empty grid.
    #[must_use]
    pub fn new(name: impl Into<String>, description: impl Into<String>) -> Self {
        GridSpec {
            name: name.into(),
            description: description.into(),
            runs: Vec::new(),
        }
    }

    /// Appends a grid point.
    pub fn push(&mut self, run: RunSpec) {
        self.runs.push(run);
    }

    /// Asserts that every id is unique and every baseline reference resolves.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate id or a dangling baseline; grids are static
    /// declarations, so either is a bug in the grid, not in user input.
    pub fn validate(&self) {
        let mut seen = std::collections::BTreeSet::new();
        for run in &self.runs {
            assert!(
                seen.insert(run.id.as_str()),
                "grid {}: duplicate run id {}",
                self.name,
                run.id
            );
        }
        for run in &self.runs {
            if let Some(baseline) = &run.baseline {
                assert!(
                    seen.contains(baseline.as_str()),
                    "grid {}: run {} references unknown baseline {}",
                    self.name,
                    run.id,
                    baseline
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_labels_match_the_paper() {
        assert_eq!(TopologySpec::Quad2.label(), "4x2");
        assert_eq!(TopologySpec::Dual4.label(), "2x4");
        assert_eq!(TopologySpec::Single8.label(), "1x8");
        assert_eq!(TopologySpec::Uneven { ams: 3, singles: 4 }.label(), "1x4+4");
        assert_eq!(TopologySpec::Uniprocessor { ams: 7 }.label(), "1x8");
    }

    #[test]
    fn topology_specs_build_the_expected_shapes() {
        assert_eq!(TopologySpec::Quad2.build().processors().len(), 4);
        assert_eq!(TopologySpec::Single8.build().total_sequencers(), 8);
        let uneven = TopologySpec::Uneven { ams: 3, singles: 4 }.build();
        assert_eq!(uneven.processors().len(), 5);
        assert_eq!(uneven.total_sequencers(), 8);
    }

    #[test]
    fn machine_labels() {
        assert_eq!(MachineSpec::Serial.label(), "serial");
        assert_eq!(MachineSpec::Smp { cores: 8 }.label(), "smp:8");
        assert_eq!(MachineSpec::Misp(TopologySpec::Single8).label(), "misp:1x8");
    }

    #[test]
    #[should_panic(expected = "duplicate run id")]
    fn validate_rejects_duplicate_ids() {
        let mut grid = GridSpec::new("g", "");
        grid.push(RunSpec::topology("a", TopologySpec::Single8));
        grid.push(RunSpec::topology("a", TopologySpec::Quad2));
        grid.validate();
    }

    #[test]
    #[should_panic(expected = "unknown baseline")]
    fn validate_rejects_dangling_baselines() {
        let mut grid = GridSpec::new("g", "");
        grid.push(RunSpec::topology("a", TopologySpec::Single8).with_baseline("missing"));
        grid.validate();
    }
}
