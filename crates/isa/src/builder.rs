//! Fluent construction of shred programs.

use crate::{Op, ProgramItem, ProgramRef, RuntimeOp, ShredProgram, SyscallKind};
use misp_types::{Cycles, LockId, ShredId, VirtAddr};

/// Builder for [`ShredProgram`]s.
///
/// Workload generators use the builder to express each shred's behaviour as a
/// compact mixture of compute phases, memory touches, system calls and
/// ShredLib runtime calls.
///
/// # Examples
///
/// ```
/// use misp_isa::{ProgramBuilder, SyscallKind};
/// use misp_types::{Cycles, LockId, VirtAddr};
///
/// let queue_mutex = LockId::new(0);
/// let worker = ProgramBuilder::new("worker")
///     .repeat(100, |iter| {
///         iter.mutex_lock(queue_mutex)
///             .compute(Cycles::new(50))
///             .mutex_unlock(queue_mutex)
///             .compute(Cycles::new(10_000))
///             .load(VirtAddr::new(0x10_0000))
///     })
///     .syscall(SyscallKind::Io)
///     .build();
/// assert!(worker.flat_len() > 500);
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    items: Vec<ProgramItem>,
}

impl ProgramBuilder {
    /// Starts building a program with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            items: Vec::new(),
        }
    }

    /// Appends a raw operation.
    #[must_use]
    pub fn op(mut self, op: Op) -> Self {
        self.items.push(ProgramItem::Op(op));
        self
    }

    /// Appends a compute phase of `cycles` cycles.
    #[must_use]
    pub fn compute(self, cycles: Cycles) -> Self {
        self.op(Op::Compute(cycles))
    }

    /// Appends a load from `addr`.
    #[must_use]
    pub fn load(self, addr: VirtAddr) -> Self {
        self.op(Op::load(addr))
    }

    /// Appends a store to `addr`.
    #[must_use]
    pub fn store(self, addr: VirtAddr) -> Self {
        self.op(Op::store(addr))
    }

    /// Appends a system call of the given kind.
    #[must_use]
    pub fn syscall(self, kind: SyscallKind) -> Self {
        self.op(Op::Syscall(kind))
    }

    /// Appends a shred-creation runtime call for `program`.
    #[must_use]
    pub fn shred_create(self, program: ProgramRef) -> Self {
        self.op(Op::Runtime(RuntimeOp::ShredCreate { program }))
    }

    /// Appends a shred-exit runtime call.
    #[must_use]
    pub fn shred_exit(self) -> Self {
        self.op(Op::Runtime(RuntimeOp::ShredExit))
    }

    /// Appends a voluntary yield.
    #[must_use]
    pub fn shred_yield(self) -> Self {
        self.op(Op::Runtime(RuntimeOp::ShredYield))
    }

    /// Appends a join on `target`.
    #[must_use]
    pub fn shred_join(self, target: ShredId) -> Self {
        self.op(Op::Runtime(RuntimeOp::ShredJoin { target }))
    }

    /// Appends a mutex acquisition.
    #[must_use]
    pub fn mutex_lock(self, id: LockId) -> Self {
        self.op(Op::Runtime(RuntimeOp::MutexLock(id)))
    }

    /// Appends a mutex release.
    #[must_use]
    pub fn mutex_unlock(self, id: LockId) -> Self {
        self.op(Op::Runtime(RuntimeOp::MutexUnlock(id)))
    }

    /// Appends a semaphore wait.
    #[must_use]
    pub fn sem_wait(self, id: LockId) -> Self {
        self.op(Op::Runtime(RuntimeOp::SemWait(id)))
    }

    /// Appends a semaphore post.
    #[must_use]
    pub fn sem_post(self, id: LockId) -> Self {
        self.op(Op::Runtime(RuntimeOp::SemPost(id)))
    }

    /// Appends a condition-variable wait (releasing `mutex`).
    #[must_use]
    pub fn cond_wait(self, cond: LockId, mutex: LockId) -> Self {
        self.op(Op::Runtime(RuntimeOp::CondWait { cond, mutex }))
    }

    /// Appends a condition-variable signal.
    #[must_use]
    pub fn cond_signal(self, cond: LockId) -> Self {
        self.op(Op::Runtime(RuntimeOp::CondSignal(cond)))
    }

    /// Appends a condition-variable broadcast.
    #[must_use]
    pub fn cond_broadcast(self, cond: LockId) -> Self {
        self.op(Op::Runtime(RuntimeOp::CondBroadcast(cond)))
    }

    /// Appends a barrier wait.
    #[must_use]
    pub fn barrier_wait(self, id: LockId) -> Self {
        self.op(Op::Runtime(RuntimeOp::BarrierWait(id)))
    }

    /// Appends an event wait.
    #[must_use]
    pub fn event_wait(self, id: LockId) -> Self {
        self.op(Op::Runtime(RuntimeOp::EventWait(id)))
    }

    /// Appends an event set.
    #[must_use]
    pub fn event_set(self, id: LockId) -> Self {
        self.op(Op::Runtime(RuntimeOp::EventSet(id)))
    }

    /// Appends a counted loop whose body is built by `f`.
    ///
    /// The closure receives a fresh builder for the loop body; its name is
    /// irrelevant and discarded.
    #[must_use]
    pub fn repeat(mut self, count: u64, f: impl FnOnce(ProgramBuilder) -> ProgramBuilder) -> Self {
        let body_builder = f(ProgramBuilder::new("body"));
        self.items.push(ProgramItem::Loop {
            count,
            body: body_builder.items,
        });
        self
    }

    /// Appends a sweep of load operations touching `pages` consecutive pages
    /// starting at `base`, one access per page.  This is the canonical way to
    /// express a working set that incurs compulsory page faults.
    #[must_use]
    pub fn touch_pages(mut self, base: VirtAddr, pages: u64) -> Self {
        for i in 0..pages {
            self.items.push(ProgramItem::Op(Op::load(
                base.offset(i * misp_types::PAGE_SIZE),
            )));
        }
        self
    }

    /// Number of items appended so far (top-level, not flattened).
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when no items have been appended.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Finishes the builder, producing the program.
    #[must_use]
    pub fn build(self) -> ShredProgram {
        ShredProgram::from_items(self.name, self.items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use misp_types::PAGE_SIZE;

    #[test]
    fn builder_produces_expected_sequence() {
        let p = ProgramBuilder::new("t")
            .compute(Cycles::new(5))
            .load(VirtAddr::new(0x1000))
            .store(VirtAddr::new(0x2000))
            .syscall(SyscallKind::Time)
            .build();
        let ops: Vec<Op> = p.iter_flat().collect();
        assert_eq!(ops.len(), 5);
        assert_eq!(ops[0], Op::Compute(Cycles::new(5)));
        assert_eq!(ops[3], Op::Syscall(SyscallKind::Time));
    }

    #[test]
    fn repeat_builds_loops() {
        let p = ProgramBuilder::new("t")
            .repeat(4, |b| b.compute(Cycles::new(1)))
            .build();
        assert_eq!(p.flat_len(), 5);
    }

    #[test]
    fn touch_pages_touches_each_page_once() {
        let p = ProgramBuilder::new("t")
            .touch_pages(VirtAddr::new(0), 8)
            .build();
        let pages: Vec<u64> = p
            .iter_flat()
            .filter_map(|op| match op {
                Op::Touch { addr, .. } => Some(addr.page().number()),
                _ => None,
            })
            .collect();
        assert_eq!(pages, (0..8).collect::<Vec<u64>>());
        // Base not page aligned still advances by a page at a time.
        let p = ProgramBuilder::new("t")
            .touch_pages(VirtAddr::new(PAGE_SIZE / 2), 2)
            .build();
        let pages: Vec<u64> = p
            .iter_flat()
            .filter_map(|op| match op {
                Op::Touch { addr, .. } => Some(addr.page().number()),
                _ => None,
            })
            .collect();
        assert_eq!(pages, vec![0, 1]);
    }

    #[test]
    fn runtime_helpers() {
        let m = LockId::new(1);
        let p = ProgramBuilder::new("t")
            .mutex_lock(m)
            .mutex_unlock(m)
            .sem_wait(m)
            .sem_post(m)
            .cond_wait(LockId::new(2), m)
            .cond_signal(LockId::new(2))
            .cond_broadcast(LockId::new(2))
            .barrier_wait(LockId::new(3))
            .event_wait(LockId::new(4))
            .event_set(LockId::new(4))
            .shred_create(ProgramRef::new(0))
            .shred_join(ShredId::new(0))
            .shred_yield()
            .shred_exit()
            .build();
        assert_eq!(p.flat_len(), 15);
        assert!(p.iter_flat().take(14).all(|op| op.is_runtime()));
    }

    #[test]
    fn len_and_is_empty() {
        let b = ProgramBuilder::new("t");
        assert!(b.is_empty());
        let b = b.compute(Cycles::new(1));
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }
}
