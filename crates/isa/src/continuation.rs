//! Shred continuations.

use crate::ProgramRef;
use core::fmt;
use misp_types::VirtAddr;
use serde::{Deserialize, Serialize};

/// A shred continuation: the `<EIP, ESP>` pair the paper's `SIGNAL`
/// instruction delivers to a destination sequencer, plus the program the
/// simulator should execute when the continuation is resumed.
///
/// In real MISP hardware the EIP alone identifies the code to run; the
/// simulator additionally carries a [`ProgramRef`] because shred code is an
/// abstract instruction stream rather than bytes in memory.
///
/// # Examples
///
/// ```
/// use misp_isa::{Continuation, ProgramRef};
/// use misp_types::VirtAddr;
///
/// let k = Continuation::new(ProgramRef::new(2), VirtAddr::new(0x401000), VirtAddr::new(0x7fff_0000));
/// assert_eq!(k.program(), ProgramRef::new(2));
/// assert_eq!(k.eip(), VirtAddr::new(0x401000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Continuation {
    program: ProgramRef,
    eip: VirtAddr,
    esp: VirtAddr,
}

impl Continuation {
    /// Creates a continuation for `program` with the given instruction and
    /// stack pointers.
    #[must_use]
    pub const fn new(program: ProgramRef, eip: VirtAddr, esp: VirtAddr) -> Self {
        Continuation { program, eip, esp }
    }

    /// Creates a continuation whose EIP/ESP are synthesized from the program
    /// reference (useful when the simulated addresses are irrelevant).
    #[must_use]
    pub const fn for_program(program: ProgramRef) -> Self {
        // Synthetic code addresses start at 4 MiB, stacks grow down from 2 GiB;
        // the values only matter for display and for distinguishing shreds.
        Continuation {
            program,
            eip: VirtAddr::new(0x0040_0000 + (program.index() as u64) * 0x1000),
            esp: VirtAddr::new(0x8000_0000 - (program.index() as u64) * 0x10_000),
        }
    }

    /// The program this continuation resumes.
    #[must_use]
    pub const fn program(&self) -> ProgramRef {
        self.program
    }

    /// The starting instruction pointer.
    #[must_use]
    pub const fn eip(&self) -> VirtAddr {
        self.eip
    }

    /// The stack pointer.
    #[must_use]
    pub const fn esp(&self) -> VirtAddr {
        self.esp
    }
}

impl fmt::Display for Continuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<eip={}, esp={}, {}>", self.eip, self.esp, self.program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let k = Continuation::new(
            ProgramRef::new(1),
            VirtAddr::new(0x1000),
            VirtAddr::new(0x2000),
        );
        assert_eq!(k.program(), ProgramRef::new(1));
        assert_eq!(k.eip(), VirtAddr::new(0x1000));
        assert_eq!(k.esp(), VirtAddr::new(0x2000));
        assert!(k.to_string().contains("0x1000"));
    }

    #[test]
    fn for_program_is_deterministic_and_distinct() {
        let a = Continuation::for_program(ProgramRef::new(0));
        let b = Continuation::for_program(ProgramRef::new(1));
        assert_eq!(a, Continuation::for_program(ProgramRef::new(0)));
        assert_ne!(a.eip(), b.eip());
        assert_ne!(a.esp(), b.esp());
    }
}
