//! Owned, resumable cursors over shred programs.
//!
//! [`ProgramCursor`](crate::ProgramCursor) borrows its program, which is ideal
//! for analysis but awkward for the execution engine, where a shred's position
//! must outlive individual borrows and travel with the shred as it migrates
//! between sequencers.  [`OwnedCursor`] holds the program behind an [`Arc`]
//! and keeps its position as plain indices, so it is `Send`, cheap to clone,
//! and can be stored inside the simulator's shred table.

use crate::{Op, ProgramItem, ShredProgram};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Position within a (possibly nested) program, stored as indices so it does
/// not borrow the program.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CursorState {
    /// Index of the next top-level item.
    top_index: usize,
    /// Stack of `(path, next_index, remaining_iterations)` for nested loops.
    /// `path` is the chain of item indices from the top level down to the loop
    /// whose body is being walked.
    frames: Vec<Frame>,
    exhausted: bool,
    executed: u64,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Frame {
    /// Path of item indices leading to this loop (from the top level).
    path: Vec<usize>,
    /// Next item index within the loop body.
    index: usize,
    /// Remaining full iterations after the current one.
    remaining: u64,
}

impl CursorState {
    /// Creates a cursor positioned at the start of any program.
    #[must_use]
    pub fn new() -> Self {
        CursorState::default()
    }

    /// The number of operations yielded so far (the implicit trailing `Halt`
    /// counts once).
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Returns `true` once the program has been fully executed.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    fn body_at<'p>(program: &'p ShredProgram, path: &[usize]) -> &'p [ProgramItem] {
        let mut items = program.items();
        for &idx in path {
            match &items[idx] {
                ProgramItem::Loop { body, .. } => items = body.as_slice(),
                ProgramItem::Op(_) => unreachable!("cursor path never points at an op"),
            }
        }
        items
    }

    /// Returns the next operation of `program`, advancing this cursor.
    ///
    /// The caller must pass the same program on every call; passing a
    /// different program results in unspecified (but memory-safe) traversal.
    pub fn next_op(&mut self, program: &ShredProgram) -> Op {
        loop {
            if self.exhausted {
                return Op::Halt;
            }
            if let Some(frame) = self.frames.last() {
                // Resolve the loop body through an immutable borrow first so
                // the frame can be advanced afterwards without cloning `path`
                // on every operation (this is the engine's hottest path).
                let body = Self::body_at(program, &frame.path);
                let item_index = frame.index;
                if item_index < body.len() {
                    match &body[item_index] {
                        ProgramItem::Op(op) => {
                            let op = op.clone();
                            self.frames.last_mut().expect("frame exists").index += 1;
                            self.executed += 1;
                            return op;
                        }
                        ProgramItem::Loop { count, body } => {
                            let enter = *count > 0 && !body.is_empty();
                            let remaining = count.saturating_sub(1);
                            let frame = self.frames.last_mut().expect("frame exists");
                            frame.index += 1;
                            if enter {
                                let mut new_path = frame.path.clone();
                                new_path.push(item_index);
                                self.frames.push(Frame {
                                    path: new_path,
                                    index: 0,
                                    remaining,
                                });
                            }
                            continue;
                        }
                    }
                }
                let frame = self.frames.last_mut().expect("frame exists");
                if frame.remaining > 0 {
                    frame.remaining -= 1;
                    frame.index = 0;
                } else {
                    self.frames.pop();
                }
                continue;
            }
            if self.top_index < program.items().len() {
                let item_index = self.top_index;
                self.top_index += 1;
                match &program.items()[item_index] {
                    ProgramItem::Op(op) => {
                        self.executed += 1;
                        return op.clone();
                    }
                    ProgramItem::Loop { count, body } => {
                        if *count > 0 && !body.is_empty() {
                            self.frames.push(Frame {
                                path: vec![item_index],
                                index: 0,
                                remaining: count - 1,
                            });
                        }
                        continue;
                    }
                }
            }
            self.exhausted = true;
            self.executed += 1;
            return Op::Halt;
        }
    }
}

/// A cursor that owns (shares) its program.
///
/// # Examples
///
/// ```
/// use misp_isa::{OwnedCursor, ProgramBuilder, Op};
/// use misp_types::Cycles;
/// use std::sync::Arc;
///
/// let program = Arc::new(ProgramBuilder::new("p").compute(Cycles::new(3)).build());
/// let mut cursor = OwnedCursor::new(program);
/// assert_eq!(cursor.next_op(), Op::Compute(Cycles::new(3)));
/// assert_eq!(cursor.next_op(), Op::Halt);
/// ```
#[derive(Debug, Clone)]
pub struct OwnedCursor {
    program: Arc<ShredProgram>,
    state: CursorState,
    /// One-operation lookahead buffer filled by [`OwnedCursor::peek_op`] and
    /// drained by the next [`OwnedCursor::next_op`] call.
    lookahead: Option<Op>,
}

impl OwnedCursor {
    /// Creates a cursor at the start of `program`.
    #[must_use]
    pub fn new(program: Arc<ShredProgram>) -> Self {
        OwnedCursor {
            program,
            state: CursorState::new(),
            lookahead: None,
        }
    }

    /// The program being executed.
    #[must_use]
    pub fn program(&self) -> &Arc<ShredProgram> {
        &self.program
    }

    /// The number of operations yielded so far.  An operation that has only
    /// been peeked does not count until it is consumed by
    /// [`OwnedCursor::next_op`].
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.state.executed() - u64::from(self.lookahead.is_some())
    }

    /// Returns `true` once the program has been fully executed.  Peeking the
    /// trailing `Halt` does not exhaust the cursor; consuming it does.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.state.is_exhausted() && self.lookahead.is_none()
    }

    /// Returns the next operation, advancing the cursor.
    pub fn next_op(&mut self) -> Op {
        match self.lookahead.take() {
            Some(op) => op,
            None => self.state.next_op(&self.program),
        }
    }

    /// Returns the next operation *without* consuming it: the following
    /// [`OwnedCursor::next_op`] call returns the same operation.
    ///
    /// This is how the execution engine detects macro-step batch boundaries
    /// (see [`Op::classify`](crate::Op::classify)) before committing to
    /// executing an operation inline.
    pub fn peek_op(&mut self) -> &Op {
        if self.lookahead.is_none() {
            self.lookahead = Some(self.state.next_op(&self.program));
        }
        self.lookahead.as_ref().expect("lookahead just filled")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;
    use misp_types::{Cycles, VirtAddr};

    fn program() -> ShredProgram {
        ProgramBuilder::new("t")
            .compute(Cycles::new(1))
            .repeat(3, |b| b.load(VirtAddr::new(0x1000)).compute(Cycles::new(2)))
            .compute(Cycles::new(9))
            .build()
    }

    #[test]
    fn owned_cursor_matches_borrowing_cursor() {
        let p = program();
        let borrowed: Vec<Op> = p.iter_flat().collect();
        let mut owned = OwnedCursor::new(Arc::new(p));
        let mut owned_ops = Vec::new();
        loop {
            let op = owned.next_op();
            let halt = matches!(op, Op::Halt);
            owned_ops.push(op);
            if halt {
                break;
            }
        }
        assert_eq!(borrowed, owned_ops);
        assert!(owned.is_exhausted());
        assert_eq!(owned.executed(), borrowed.len() as u64);
    }

    #[test]
    fn nested_loops_with_owned_cursor() {
        let p = ProgramBuilder::new("nested")
            .repeat(2, |outer| {
                outer
                    .compute(Cycles::new(1))
                    .repeat(3, |inner| inner.compute(Cycles::new(2)))
            })
            .build();
        let expected: Vec<Op> = p.iter_flat().collect();
        let mut cursor = OwnedCursor::new(Arc::new(p));
        let mut got = Vec::new();
        loop {
            let op = cursor.next_op();
            let halt = matches!(op, Op::Halt);
            got.push(op);
            if halt {
                break;
            }
        }
        assert_eq!(expected, got);
    }

    #[test]
    fn clone_preserves_position() {
        let p = Arc::new(program());
        let mut a = OwnedCursor::new(Arc::clone(&p));
        a.next_op();
        a.next_op();
        let mut b = a.clone();
        assert_eq!(a.next_op(), b.next_op());
        assert_eq!(a.executed(), b.executed());
    }

    #[test]
    fn halt_repeats_after_exhaustion() {
        let p = Arc::new(ProgramBuilder::new("e").build());
        let mut c = OwnedCursor::new(p);
        assert_eq!(c.next_op(), Op::Halt);
        assert_eq!(c.next_op(), Op::Halt);
        assert_eq!(c.executed(), 1);
    }

    #[test]
    fn peek_does_not_consume() {
        let p = Arc::new(program());
        let mut c = OwnedCursor::new(Arc::clone(&p));
        let mut plain = OwnedCursor::new(p);
        loop {
            let peeked = c.peek_op().clone();
            assert_eq!(c.executed(), plain.executed(), "peek must not count");
            let got = c.next_op();
            assert_eq!(peeked, got, "peek then next must agree");
            assert_eq!(got, plain.next_op(), "peeking must not change the stream");
            assert_eq!(c.executed(), plain.executed());
            assert_eq!(c.is_exhausted(), plain.is_exhausted());
            if matches!(got, Op::Halt) {
                break;
            }
        }
        assert!(c.is_exhausted());
    }

    #[test]
    fn peeking_trailing_halt_does_not_exhaust() {
        let p = Arc::new(ProgramBuilder::new("e").compute(Cycles::new(1)).build());
        let mut c = OwnedCursor::new(p);
        assert_eq!(c.next_op(), Op::Compute(Cycles::new(1)));
        assert_eq!(*c.peek_op(), Op::Halt);
        assert!(!c.is_exhausted(), "peeked Halt is not yet consumed");
        assert_eq!(c.executed(), 1);
        assert_eq!(c.next_op(), Op::Halt);
        assert!(c.is_exhausted());
        assert_eq!(c.executed(), 2);
    }

    #[test]
    fn clone_preserves_pending_peek() {
        let p = Arc::new(program());
        let mut a = OwnedCursor::new(p);
        a.next_op();
        let peeked = a.peek_op().clone();
        let mut b = a.clone();
        assert_eq!(a.next_op(), peeked);
        assert_eq!(b.next_op(), peeked);
    }

    #[test]
    fn cursor_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<OwnedCursor>();
        assert_send::<CursorState>();
    }
}
