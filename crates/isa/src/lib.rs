//! Abstract instruction streams for the MISP simulator.
//!
//! The MISP paper (Hankins et al., ISCA 2006) evaluates the architecture by
//! running real IA-32 binaries on a firmware-emulated prototype.  This
//! reproduction instead executes *abstract instruction streams*: sequences of
//! [`Op`] items that capture exactly the behaviours the architecture reacts to
//! — computation, memory touches (which may page-fault), system calls (which
//! trap to Ring 0), the sequencer-aware `SIGNAL` operation, and the user-level
//! runtime primitives ShredLib provides.
//!
//! A shred's code is a [`ShredProgram`]: a compact, loop-structured list of
//! operations that can be iterated lazily by a [`ProgramCursor`].  Workload
//! generators in the `misp-workloads` crate build programs with
//! [`ProgramBuilder`] and collect them into a [`ProgramLibrary`] so that
//! dynamically-created shreds can reference their code by [`ProgramRef`].
//!
//! # Examples
//!
//! ```
//! use misp_isa::{Op, ProgramBuilder, SyscallKind};
//! use misp_types::{Cycles, VirtAddr};
//!
//! let program = ProgramBuilder::new("example")
//!     .compute(Cycles::new(1_000))
//!     .load(VirtAddr::new(0x1000))
//!     .repeat(3, |body| body.compute(Cycles::new(10)).store(VirtAddr::new(0x2000)))
//!     .syscall(SyscallKind::Io)
//!     .build();
//!
//! // 1 compute + 1 load + 3 * (compute + store) + 1 syscall + implicit exit
//! assert_eq!(program.flat_len(), 1 + 1 + 3 * 2 + 1 + 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod continuation;
mod cursor;
mod library;
mod op;
mod program;
mod syscall;

pub use builder::ProgramBuilder;
pub use continuation::Continuation;
pub use cursor::{CursorState, OwnedCursor};
pub use library::{ProgramLibrary, ProgramRef};
pub use op::{AccessKind, Op, OpClass, RuntimeOp};
pub use program::{ProgramCursor, ProgramItem, ShredProgram};
pub use syscall::SyscallKind;
