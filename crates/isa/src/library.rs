//! Program libraries: indexed collections of shred programs.

use crate::ShredProgram;
use core::fmt;
use serde::{Deserialize, Serialize};

/// A reference to a program inside a [`ProgramLibrary`].
///
/// Dynamically-created shreds (via `RuntimeOp::ShredCreate`) name their code
/// by `ProgramRef`, keeping the operation alphabet small and cloneable.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct ProgramRef(u32);

impl ProgramRef {
    /// Creates a reference to the program at `index`.
    #[inline]
    #[must_use]
    pub const fn new(index: u32) -> Self {
        ProgramRef(index)
    }

    /// The index into the owning library.
    #[inline]
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// The index as a `usize` for slice indexing.
    #[inline]
    #[must_use]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProgramRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PRG{}", self.0)
    }
}

/// An indexed, append-only collection of shred programs.
///
/// A workload builds one library containing every distinct program its shreds
/// run; the runtime resolves [`ProgramRef`]s against it.
///
/// # Examples
///
/// ```
/// use misp_isa::{ProgramBuilder, ProgramLibrary};
/// use misp_types::Cycles;
///
/// let mut lib = ProgramLibrary::new();
/// let worker = lib.insert(ProgramBuilder::new("worker").compute(Cycles::new(100)).build());
/// assert_eq!(lib.get(worker).unwrap().name(), "worker");
/// assert_eq!(lib.len(), 1);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramLibrary {
    programs: Vec<ShredProgram>,
}

impl ProgramLibrary {
    /// Creates an empty library.
    #[must_use]
    pub fn new() -> Self {
        ProgramLibrary {
            programs: Vec::new(),
        }
    }

    /// Adds a program, returning the reference by which it can be retrieved.
    pub fn insert(&mut self, program: ShredProgram) -> ProgramRef {
        let r = ProgramRef::new(self.programs.len() as u32);
        self.programs.push(program);
        r
    }

    /// Retrieves a program by reference.
    #[must_use]
    pub fn get(&self, r: ProgramRef) -> Option<&ShredProgram> {
        self.programs.get(r.as_usize())
    }

    /// Number of programs in the library.
    #[must_use]
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// Returns `true` when the library holds no programs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }

    /// Iterates over `(reference, program)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (ProgramRef, &ShredProgram)> {
        self.programs
            .iter()
            .enumerate()
            .map(|(i, p)| (ProgramRef::new(i as u32), p))
    }
}

impl FromIterator<ShredProgram> for ProgramLibrary {
    fn from_iter<I: IntoIterator<Item = ShredProgram>>(iter: I) -> Self {
        ProgramLibrary {
            programs: iter.into_iter().collect(),
        }
    }
}

impl Extend<ShredProgram> for ProgramLibrary {
    fn extend<I: IntoIterator<Item = ShredProgram>>(&mut self, iter: I) {
        self.programs.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;
    use misp_types::Cycles;

    #[test]
    fn insert_and_get() {
        let mut lib = ProgramLibrary::new();
        assert!(lib.is_empty());
        let a = lib.insert(ProgramBuilder::new("a").compute(Cycles::new(1)).build());
        let b = lib.insert(ProgramBuilder::new("b").compute(Cycles::new(2)).build());
        assert_ne!(a, b);
        assert_eq!(lib.len(), 2);
        assert_eq!(lib.get(a).unwrap().name(), "a");
        assert_eq!(lib.get(b).unwrap().name(), "b");
        assert!(lib.get(ProgramRef::new(5)).is_none());
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut lib = ProgramLibrary::new();
        for name in ["x", "y", "z"] {
            lib.insert(ProgramBuilder::new(name).build());
        }
        let names: Vec<&str> = lib.iter().map(|(_, p)| p.name()).collect();
        assert_eq!(names, vec!["x", "y", "z"]);
        let refs: Vec<u32> = lib.iter().map(|(r, _)| r.index()).collect();
        assert_eq!(refs, vec![0, 1, 2]);
    }

    #[test]
    fn from_iterator_and_extend() {
        let programs = vec![
            ProgramBuilder::new("p0").build(),
            ProgramBuilder::new("p1").build(),
        ];
        let mut lib: ProgramLibrary = programs.into_iter().collect();
        assert_eq!(lib.len(), 2);
        lib.extend(vec![ProgramBuilder::new("p2").build()]);
        assert_eq!(lib.len(), 3);
        assert_eq!(lib.get(ProgramRef::new(2)).unwrap().name(), "p2");
    }

    #[test]
    fn program_ref_display() {
        assert_eq!(ProgramRef::new(3).to_string(), "PRG3");
        assert_eq!(ProgramRef::new(3).index(), 3);
        assert_eq!(ProgramRef::new(3).as_usize(), 3);
    }
}
