//! The operation alphabet executed by simulated sequencers.

use crate::{Continuation, ProgramRef, SyscallKind};
use core::fmt;
use misp_types::{Cycles, LockId, SequencerId, ShredId, VirtAddr};
use serde::{Deserialize, Serialize};

/// Whether a memory access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load (read) access.
    Load,
    /// A store (write) access.
    Store,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Load => f.write_str("load"),
            AccessKind::Store => f.write_str("store"),
        }
    }
}

/// A user-level runtime operation serviced by ShredLib rather than by the
/// architecture directly.
///
/// The paper's ShredLib implements these primitives over shared memory using
/// ordinary Ring 3 instructions (Section 4.2); in the simulator they are
/// interpreted by the runtime attached to the execution engine, which charges
/// the appropriate user-level costs and never requires a ring transition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuntimeOp {
    /// Create a new shred whose code is `program`; the shred continuation is
    /// pushed onto the runtime's work queue (Figure 3's `Shred_create`).
    ShredCreate {
        /// The program the new shred will execute.
        program: ProgramRef,
    },
    /// Terminate the current shred.  The sequencer returns to the gang
    /// scheduler, which pops the next ready shred from the work queue.
    ShredExit,
    /// Voluntarily yield the sequencer: the current shred is placed back on
    /// the work queue and the next ready shred (possibly the same one) runs.
    ShredYield,
    /// Block until the shred identified by `target` has exited.
    ShredJoin {
        /// The shred to wait for.
        target: ShredId,
    },
    /// Acquire a mutex, blocking (yielding the sequencer) if it is held.
    MutexLock(LockId),
    /// Release a mutex previously acquired by this shred.
    MutexUnlock(LockId),
    /// Decrement a counting semaphore, blocking while its value is zero.
    SemWait(LockId),
    /// Increment a counting semaphore, waking one waiter if any.
    SemPost(LockId),
    /// Atomically release `mutex` and wait on condition variable `cond`.
    CondWait {
        /// The condition variable to wait on.
        cond: LockId,
        /// The mutex released while waiting and re-acquired before returning.
        mutex: LockId,
    },
    /// Wake one waiter of a condition variable.
    CondSignal(LockId),
    /// Wake all waiters of a condition variable.
    CondBroadcast(LockId),
    /// Wait at a barrier until all participants have arrived.
    BarrierWait(LockId),
    /// Block until an event object becomes signaled.
    EventWait(LockId),
    /// Signal an event object, releasing all current and future waiters.
    EventSet(LockId),
    /// Reset an event object to the non-signaled state.
    EventReset(LockId),
}

impl fmt::Display for RuntimeOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeOp::ShredCreate { program } => write!(f, "shred_create({program})"),
            RuntimeOp::ShredExit => f.write_str("shred_exit"),
            RuntimeOp::ShredYield => f.write_str("shred_yield"),
            RuntimeOp::ShredJoin { target } => write!(f, "shred_join({target})"),
            RuntimeOp::MutexLock(id) => write!(f, "mutex_lock({id})"),
            RuntimeOp::MutexUnlock(id) => write!(f, "mutex_unlock({id})"),
            RuntimeOp::SemWait(id) => write!(f, "sem_wait({id})"),
            RuntimeOp::SemPost(id) => write!(f, "sem_post({id})"),
            RuntimeOp::CondWait { cond, mutex } => write!(f, "cond_wait({cond}, {mutex})"),
            RuntimeOp::CondSignal(id) => write!(f, "cond_signal({id})"),
            RuntimeOp::CondBroadcast(id) => write!(f, "cond_broadcast({id})"),
            RuntimeOp::BarrierWait(id) => write!(f, "barrier_wait({id})"),
            RuntimeOp::EventWait(id) => write!(f, "event_wait({id})"),
            RuntimeOp::EventSet(id) => write!(f, "event_set({id})"),
            RuntimeOp::EventReset(id) => write!(f, "event_reset({id})"),
        }
    }
}

/// One operation in a shred's instruction stream.
///
/// An `Op` is deliberately coarse: a single `Compute` may stand for millions
/// of arithmetic instructions.  Only behaviours the MISP architecture reacts
/// to — memory touches, Ring 0 traps, inter-sequencer signaling, and runtime
/// calls — are modeled as distinct operations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Execute for the given number of cycles without touching memory or the
    /// OS.
    Compute(Cycles),
    /// Access memory at `addr`.  The first access by a process to a page
    /// raises a compulsory page fault; on an AMS that fault triggers proxy
    /// execution.
    Touch {
        /// The virtual address accessed.
        addr: VirtAddr,
        /// Whether the access is a load or a store.
        kind: AccessKind,
    },
    /// Trap to the OS for a system-call service.  On the OMS this is a direct
    /// Ring 3 → Ring 0 transition; on an AMS it triggers proxy execution.
    Syscall(SyscallKind),
    /// The MISP `SIGNAL` instruction: deliver `continuation` to the sequencer
    /// identified by `target` within the current MISP processor.
    Signal {
        /// Destination sequencer (the SID operand).
        target: SequencerId,
        /// The shred continuation (EIP/ESP pair plus its program).
        continuation: Continuation,
    },
    /// Register a trigger→response mapping via the YIELD-CONDITIONAL
    /// mechanism, e.g. the proxy handler the OMS installs before starting any
    /// shreds (Figure 3, "Register Proxy Handler").
    RegisterHandler,
    /// A user-level runtime (ShredLib) operation.
    Runtime(RuntimeOp),
    /// Terminate the instruction stream.  Every program implicitly ends with
    /// `Halt`; streams may also contain it explicitly for early exits.
    Halt,
}

/// The engine-facing classification of an operation, used by the macro-step
/// fast path to decide whether an upcoming operation can be executed inline
/// (without re-entering the event queue) or marks a batch boundary.
///
/// The classification is purely syntactic: a [`OpClass::Memory`] access may
/// still be a boundary at runtime (it page-faults, or the cache model is on),
/// which the engine decides with the access peeked but not consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Pure local computation with no architectural side effects beyond the
    /// executing sequencer's busy time.  Always safe to execute inline.
    Local,
    /// A memory access.  Chargeable inline when the flat memory model is in
    /// effect and the access does not page-fault; otherwise a boundary.
    Memory,
    /// Everything the platform or the user-level runtime observes: ring
    /// transitions, signals, handler registration, synchronization and
    /// scheduling operations, and stream termination.  Always a boundary.
    Boundary,
}

impl Op {
    /// Classifies this operation for the engine's macro-step fast path; see
    /// [`OpClass`].
    #[must_use]
    pub const fn classify(&self) -> OpClass {
        match self {
            Op::Compute(_) => OpClass::Local,
            Op::Touch { .. } => OpClass::Memory,
            Op::Syscall(_)
            | Op::Signal { .. }
            | Op::RegisterHandler
            | Op::Runtime(_)
            | Op::Halt => OpClass::Boundary,
        }
    }

    /// Convenience constructor for a load access.
    #[must_use]
    pub const fn load(addr: VirtAddr) -> Self {
        Op::Touch {
            addr,
            kind: AccessKind::Load,
        }
    }

    /// Convenience constructor for a store access.
    #[must_use]
    pub const fn store(addr: VirtAddr) -> Self {
        Op::Touch {
            addr,
            kind: AccessKind::Store,
        }
    }

    /// Returns `true` if executing this operation may require OS services
    /// (and therefore a ring transition or proxy execution).
    #[must_use]
    pub const fn may_trap(&self) -> bool {
        matches!(self, Op::Syscall(_) | Op::Touch { .. })
    }

    /// Returns `true` if this operation is handled by the user-level runtime.
    #[must_use]
    pub const fn is_runtime(&self) -> bool {
        matches!(self, Op::Runtime(_))
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Compute(c) => write!(f, "compute({c})"),
            Op::Touch { addr, kind } => write!(f, "{kind}({addr})"),
            Op::Syscall(kind) => write!(f, "syscall({kind})"),
            Op::Signal { target, .. } => write!(f, "signal({target})"),
            Op::RegisterHandler => f.write_str("register_handler"),
            Op::Runtime(op) => write!(f, "{op}"),
            Op::Halt => f.write_str("halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convenience_constructors() {
        let addr = VirtAddr::new(0x4000);
        assert_eq!(
            Op::load(addr),
            Op::Touch {
                addr,
                kind: AccessKind::Load
            }
        );
        assert_eq!(
            Op::store(addr),
            Op::Touch {
                addr,
                kind: AccessKind::Store
            }
        );
    }

    #[test]
    fn trap_classification() {
        assert!(Op::Syscall(SyscallKind::Io).may_trap());
        assert!(Op::load(VirtAddr::new(0)).may_trap());
        assert!(!Op::Compute(Cycles::new(10)).may_trap());
        assert!(!Op::Halt.may_trap());
        assert!(Op::Runtime(RuntimeOp::ShredExit).is_runtime());
        assert!(!Op::Halt.is_runtime());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Op::Compute(Cycles::new(5)).to_string(), "compute(5 cycles)");
        assert_eq!(Op::load(VirtAddr::new(0x1000)).to_string(), "load(0x1000)");
        assert_eq!(Op::Syscall(SyscallKind::Io).to_string(), "syscall(io)");
        assert_eq!(Op::Halt.to_string(), "halt");
        assert_eq!(
            Op::Runtime(RuntimeOp::MutexLock(LockId::new(1))).to_string(),
            "mutex_lock(LCK1)"
        );
        assert_eq!(
            Op::Runtime(RuntimeOp::CondWait {
                cond: LockId::new(2),
                mutex: LockId::new(3)
            })
            .to_string(),
            "cond_wait(LCK2, LCK3)"
        );
    }

    #[test]
    fn runtime_op_display_covers_all_variants() {
        let id = LockId::new(0);
        let ops = vec![
            RuntimeOp::ShredCreate {
                program: ProgramRef::new(0),
            },
            RuntimeOp::ShredExit,
            RuntimeOp::ShredYield,
            RuntimeOp::ShredJoin {
                target: ShredId::new(1),
            },
            RuntimeOp::MutexLock(id),
            RuntimeOp::MutexUnlock(id),
            RuntimeOp::SemWait(id),
            RuntimeOp::SemPost(id),
            RuntimeOp::CondSignal(id),
            RuntimeOp::CondBroadcast(id),
            RuntimeOp::BarrierWait(id),
            RuntimeOp::EventWait(id),
            RuntimeOp::EventSet(id),
            RuntimeOp::EventReset(id),
        ];
        for op in ops {
            assert!(!op.to_string().is_empty());
        }
    }
}
