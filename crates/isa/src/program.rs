//! Shred programs and their cursors.

use crate::Op;
use core::fmt;
use serde::{Deserialize, Serialize};

/// One item of a [`ShredProgram`]: either a single operation or a loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProgramItem {
    /// A single operation.
    Op(Op),
    /// A counted loop over a nested body.  Loops keep programs compact: a
    /// dense matrix-multiply shred that touches the same working set millions
    /// of times is a few items, not millions.
    Loop {
        /// Number of iterations (zero is allowed and executes nothing).
        count: u64,
        /// The loop body.
        body: Vec<ProgramItem>,
    },
}

impl ProgramItem {
    /// The number of operations this item expands to when flattened.
    #[must_use]
    pub fn flat_len(&self) -> u64 {
        match self {
            ProgramItem::Op(_) => 1,
            ProgramItem::Loop { count, body } => {
                count * body.iter().map(ProgramItem::flat_len).sum::<u64>()
            }
        }
    }
}

/// The code of a shred: a loop-structured sequence of operations.
///
/// Programs are immutable once built (see
/// [`ProgramBuilder`](crate::ProgramBuilder)) and are executed by walking a
/// [`ProgramCursor`].  A program always behaves as if it ends with an implicit
/// [`Op::Halt`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShredProgram {
    name: String,
    items: Vec<ProgramItem>,
}

impl ShredProgram {
    /// Creates a program from a name and item list.
    ///
    /// Most callers should use [`ProgramBuilder`](crate::ProgramBuilder)
    /// instead.
    #[must_use]
    pub fn from_items(name: impl Into<String>, items: Vec<ProgramItem>) -> Self {
        ShredProgram {
            name: name.into(),
            items,
        }
    }

    /// An empty program that immediately halts.
    #[must_use]
    pub fn empty(name: impl Into<String>) -> Self {
        ShredProgram {
            name: name.into(),
            items: Vec::new(),
        }
    }

    /// The program's human-readable name (used in logs and statistics).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The top-level items of the program.
    #[must_use]
    pub fn items(&self) -> &[ProgramItem] {
        &self.items
    }

    /// The total number of operations the program executes when run to
    /// completion, including the implicit final `Halt`.
    #[must_use]
    pub fn flat_len(&self) -> u64 {
        self.items.iter().map(ProgramItem::flat_len).sum::<u64>() + 1
    }

    /// Creates a cursor positioned at the first operation.
    #[must_use]
    pub fn cursor(&self) -> ProgramCursor<'_> {
        ProgramCursor::new(self)
    }

    /// Iterates over every operation of the program in execution order,
    /// ending with the implicit `Halt`.  Intended for tests and analysis of
    /// small programs; the per-cycle engine uses [`ShredProgram::cursor`].
    pub fn iter_flat(&self) -> impl Iterator<Item = Op> + '_ {
        let mut cursor = self.cursor();
        let mut done = false;
        core::iter::from_fn(move || {
            if done {
                return None;
            }
            let op = cursor.next_op();
            if matches!(op, Op::Halt) {
                done = true;
            }
            Some(op)
        })
    }
}

impl fmt::Display for ShredProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "program `{}` ({} ops)", self.name, self.flat_len())
    }
}

/// One frame of the cursor's loop stack.
#[derive(Debug, Clone)]
struct Frame {
    /// Remaining full iterations of this loop *after* the current one.
    remaining: u64,
    /// Index of the next item to execute within the loop body.
    index: usize,
}

/// A lazy iterator over a [`ShredProgram`]'s operations.
///
/// The cursor borrows the program and maintains a small stack of loop frames,
/// so even programs that expand to billions of operations need O(depth)
/// memory.  After the program is exhausted the cursor yields [`Op::Halt`]
/// forever.
#[derive(Debug, Clone)]
pub struct ProgramCursor<'p> {
    program: &'p ShredProgram,
    /// Index of the next top-level item.
    top_index: usize,
    /// Stack of in-progress loops; each entry pairs a loop item reference
    /// (by path) with its frame.
    stack: Vec<(&'p [ProgramItem], Frame)>,
    exhausted: bool,
    executed: u64,
}

impl<'p> ProgramCursor<'p> {
    /// Creates a cursor at the beginning of `program`.
    #[must_use]
    pub fn new(program: &'p ShredProgram) -> Self {
        ProgramCursor {
            program,
            top_index: 0,
            stack: Vec::new(),
            exhausted: false,
            executed: 0,
        }
    }

    /// The number of operations the cursor has yielded so far (excluding the
    /// trailing implicit halts).
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Returns `true` once the program has been fully executed (the next call
    /// to [`ProgramCursor::next_op`] will return `Halt`).
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Returns the next operation, advancing the cursor.  Once the program is
    /// exhausted this returns [`Op::Halt`] indefinitely.
    pub fn next_op(&mut self) -> Op {
        loop {
            if self.exhausted {
                return Op::Halt;
            }
            // Resolve the item list and index we are currently walking.
            if let Some((body, frame)) = self.stack.last_mut() {
                if frame.index < body.len() {
                    let item = &body[frame.index];
                    frame.index += 1;
                    match item {
                        ProgramItem::Op(op) => {
                            self.executed += 1;
                            return op.clone();
                        }
                        ProgramItem::Loop { count, body } => {
                            if *count > 0 && !body.is_empty() {
                                self.stack.push((
                                    body.as_slice(),
                                    Frame {
                                        remaining: count - 1,
                                        index: 0,
                                    },
                                ));
                            }
                            continue;
                        }
                    }
                }
                // Body finished: either repeat or pop.
                if frame.remaining > 0 {
                    frame.remaining -= 1;
                    frame.index = 0;
                } else {
                    self.stack.pop();
                }
                continue;
            }
            // Walking the top level.
            if self.top_index < self.program.items.len() {
                let item = &self.program.items[self.top_index];
                self.top_index += 1;
                match item {
                    ProgramItem::Op(op) => {
                        self.executed += 1;
                        return op.clone();
                    }
                    ProgramItem::Loop { count, body } => {
                        if *count > 0 && !body.is_empty() {
                            self.stack.push((
                                body.as_slice(),
                                Frame {
                                    remaining: count - 1,
                                    index: 0,
                                },
                            ));
                        }
                        continue;
                    }
                }
            }
            self.exhausted = true;
            self.executed += 1;
            return Op::Halt;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use misp_types::{Cycles, VirtAddr};

    fn compute(c: u64) -> ProgramItem {
        ProgramItem::Op(Op::Compute(Cycles::new(c)))
    }

    #[test]
    fn empty_program_halts_immediately() {
        let p = ShredProgram::empty("empty");
        let mut c = p.cursor();
        assert_eq!(c.next_op(), Op::Halt);
        assert!(c.is_exhausted());
        assert_eq!(c.next_op(), Op::Halt, "halt repeats forever");
        assert_eq!(p.flat_len(), 1);
    }

    #[test]
    fn sequential_ops_in_order() {
        let p = ShredProgram::from_items("seq", vec![compute(1), compute(2), compute(3)]);
        let ops: Vec<Op> = p.iter_flat().collect();
        assert_eq!(
            ops,
            vec![
                Op::Compute(Cycles::new(1)),
                Op::Compute(Cycles::new(2)),
                Op::Compute(Cycles::new(3)),
                Op::Halt
            ]
        );
        assert_eq!(p.flat_len(), 4);
    }

    #[test]
    fn loops_expand_correctly() {
        let p = ShredProgram::from_items(
            "loop",
            vec![ProgramItem::Loop {
                count: 3,
                body: vec![compute(7), ProgramItem::Op(Op::load(VirtAddr::new(0x1000)))],
            }],
        );
        let ops: Vec<Op> = p.iter_flat().collect();
        assert_eq!(ops.len(), 3 * 2 + 1);
        assert_eq!(ops[0], Op::Compute(Cycles::new(7)));
        assert_eq!(ops[1], Op::load(VirtAddr::new(0x1000)));
        assert_eq!(ops[4], Op::Compute(Cycles::new(7)));
        assert_eq!(*ops.last().unwrap(), Op::Halt);
        assert_eq!(p.flat_len(), 7);
    }

    #[test]
    fn nested_loops() {
        let p = ShredProgram::from_items(
            "nested",
            vec![
                compute(1),
                ProgramItem::Loop {
                    count: 2,
                    body: vec![
                        compute(2),
                        ProgramItem::Loop {
                            count: 3,
                            body: vec![compute(3)],
                        },
                    ],
                },
                compute(4),
            ],
        );
        // 1 + 2*(1 + 3*1) + 1 + halt = 1 + 8 + 1 + 1 = 11
        assert_eq!(p.flat_len(), 11);
        let ops: Vec<Op> = p.iter_flat().collect();
        assert_eq!(ops.len(), 11);
        let inner_count = ops
            .iter()
            .filter(|o| matches!(o, Op::Compute(c) if c.as_u64() == 3))
            .count();
        assert_eq!(inner_count, 6);
    }

    #[test]
    fn zero_count_loop_is_skipped() {
        let p = ShredProgram::from_items(
            "zero",
            vec![
                ProgramItem::Loop {
                    count: 0,
                    body: vec![compute(9)],
                },
                compute(1),
            ],
        );
        let ops: Vec<Op> = p.iter_flat().collect();
        assert_eq!(ops, vec![Op::Compute(Cycles::new(1)), Op::Halt]);
    }

    #[test]
    fn empty_loop_body_is_skipped() {
        let p = ShredProgram::from_items(
            "emptybody",
            vec![
                ProgramItem::Loop {
                    count: 1_000_000,
                    body: vec![],
                },
                compute(1),
            ],
        );
        let ops: Vec<Op> = p.iter_flat().collect();
        assert_eq!(ops.len(), 2);
    }

    #[test]
    fn executed_counter_tracks_progress() {
        let p = ShredProgram::from_items("count", vec![compute(1), compute(2)]);
        let mut c = p.cursor();
        assert_eq!(c.executed(), 0);
        c.next_op();
        assert_eq!(c.executed(), 1);
        c.next_op();
        c.next_op(); // halt
        assert_eq!(c.executed(), 3);
        c.next_op(); // extra halts do not count further
        assert_eq!(c.executed(), 3);
    }

    #[test]
    fn large_loop_is_lazy() {
        // A loop that would expand to 10^9 ops must not allocate memory
        // proportional to its length.
        let p = ShredProgram::from_items(
            "huge",
            vec![ProgramItem::Loop {
                count: 1_000_000_000,
                body: vec![compute(1)],
            }],
        );
        assert_eq!(p.flat_len(), 1_000_000_001);
        let mut c = p.cursor();
        for _ in 0..10 {
            assert_eq!(c.next_op(), Op::Compute(Cycles::new(1)));
        }
        assert!(!c.is_exhausted());
    }

    #[test]
    fn display() {
        let p = ShredProgram::from_items("disp", vec![compute(1)]);
        assert_eq!(p.to_string(), "program `disp` (2 ops)");
        assert_eq!(p.name(), "disp");
        assert_eq!(p.items().len(), 1);
    }
}
