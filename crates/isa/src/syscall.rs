//! System-call classification.

use core::fmt;
use serde::{Deserialize, Serialize};

/// The class of a system call issued by a shred or thread.
///
/// The paper's Table 1 counts system calls as one of the serializing-event
/// categories; the class does not change the architectural handling (every
/// syscall is a Ring 3 → Ring 0 transition on the OMS, or a proxy-execution
/// request on an AMS), but it lets workloads and the event log describe *why*
/// the program trapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SyscallKind {
    /// File or console I/O (the dominant source in swim/equake, which log
    /// progress output).
    Io,
    /// Virtual-memory management (e.g. `VirtualAlloc`) — gauss, kmeans and
    /// svm_c allocate large intermediate buffers.
    Memory,
    /// Querying the OS clock or performance counters.
    Time,
    /// Thread-management calls issued by the legacy threading API before it is
    /// mapped onto shreds (e.g. priority changes).
    ThreadControl,
    /// Any other OS service.
    Other,
}

impl SyscallKind {
    /// All syscall classes, useful for exhaustive statistics tables.
    #[must_use]
    pub const fn all() -> [SyscallKind; 5] {
        [
            SyscallKind::Io,
            SyscallKind::Memory,
            SyscallKind::Time,
            SyscallKind::ThreadControl,
            SyscallKind::Other,
        ]
    }
}

impl fmt::Display for SyscallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SyscallKind::Io => "io",
            SyscallKind::Memory => "memory",
            SyscallKind::Time => "time",
            SyscallKind::ThreadControl => "thread-control",
            SyscallKind::Other => "other",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_every_variant() {
        let all = SyscallKind::all();
        assert_eq!(all.len(), 5);
        // Display names are unique.
        let mut names: Vec<String> = all.iter().map(|k| k.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn display() {
        assert_eq!(SyscallKind::Io.to_string(), "io");
        assert_eq!(SyscallKind::ThreadControl.to_string(), "thread-control");
    }
}
