//! `lint.toml` — the committed rule configuration.
//!
//! The parser is a deliberately small TOML subset covering exactly what
//! `lint.toml` uses: `[section]` and `[[array-of-tables]]` headers, string
//! values, string arrays and booleans, with `#` comments.  Unknown sections
//! and keys are rejected, so a typoed rule name fails loudly instead of
//! silently disabling a gate.

use std::collections::BTreeMap;

/// Severity of a finding.  `Error` findings fail the run; `Warn` findings
/// are reported but do not affect the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Reported and fails the run.
    Error,
    /// Reported only.
    Warn,
    /// Rule disabled entirely.
    Off,
}

impl Severity {
    /// Parses `"error"`, `"warn"` or `"off"`.
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "error" => Ok(Severity::Error),
            "warn" => Ok(Severity::Warn),
            "off" => Ok(Severity::Off),
            other => Err(format!("unknown severity {other:?} (error|warn|off)")),
        }
    }

    /// The canonical name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
            Severity::Off => "off",
        }
    }
}

/// One committed allowlist entry: findings of `rule` in files whose
/// workspace-relative path contains `path` are suppressed, with the reason
/// recorded in the report.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule name the entry suppresses (e.g. `"determinism"`).
    pub rule: String,
    /// Path substring the entry applies to (workspace-relative).
    pub path: String,
    /// Why the exemption exists — required, so `lint.toml` documents itself.
    pub reason: String,
}

/// The full lint configuration.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Package names whose sources sit on the simulation path and must obey
    /// the determinism / ordering / arena rules.
    pub sim_path: Vec<String>,
    /// The package owning the arena-id newtypes; exempt from the
    /// arena-discipline rule (it implements the discipline).
    pub types_crate: String,
    /// Workspace-relative directory prefixes never linted (external-crate
    /// stand-ins, build output).
    pub skip_dirs: Vec<String>,
    /// Per-rule severities, keyed by rule name.
    pub severity: BTreeMap<String, Severity>,
    /// Hash-container type names whose iteration order is unordered.
    pub map_types: Vec<String>,
    /// Arena-id newtype names covered by the arena-discipline rule.
    pub id_types: Vec<String>,
    /// Committed exemptions.
    pub allow: Vec<AllowEntry>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            sim_path: [
                "misp-types",
                "misp-core",
                "misp-isa",
                "misp-mem",
                "misp-os",
                "shredlib",
                "misp-sim",
                "misp-smp",
                "misp-cache",
                "misp-workloads",
                "misp-trace",
            ]
            .iter()
            .map(ToString::to_string)
            .collect(),
            types_crate: "misp-types".to_string(),
            skip_dirs: vec!["compat".to_string(), "target".to_string()],
            severity: BTreeMap::new(),
            map_types: ["HashMap", "HashSet", "FxHashMap", "FxHashSet"]
                .iter()
                .map(ToString::to_string)
                .collect(),
            id_types: [
                "SequencerId",
                "MispProcessorId",
                "OsThreadId",
                "ShredId",
                "ProcessId",
                "MachineId",
                "LockId",
            ]
            .iter()
            .map(ToString::to_string)
            .collect(),
            allow: Vec::new(),
        }
    }
}

impl LintConfig {
    /// The severity of `rule` (default `Error`).
    #[must_use]
    pub fn severity_of(&self, rule: &str) -> Severity {
        self.severity.get(rule).copied().unwrap_or(Severity::Error)
    }

    /// Whether package `name` is on the simulation path.
    #[must_use]
    pub fn is_sim_path(&self, name: &str) -> bool {
        self.sim_path.iter().any(|c| c == name)
    }

    /// The allowlist entry covering `(rule, file)`, if any.
    #[must_use]
    pub fn allow_entry(&self, rule: &str, file: &str) -> Option<&AllowEntry> {
        self.allow
            .iter()
            .find(|a| a.rule == rule && file.contains(a.path.as_str()))
    }

    /// Parses a `lint.toml` document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line for syntax errors, unknown
    /// sections/keys, unknown rule names and incomplete `[[allow]]` entries.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut cfg = LintConfig {
            severity: BTreeMap::new(),
            allow: Vec::new(),
            ..LintConfig::default()
        };
        // Section currently open; `[[allow]]` entries accumulate separately.
        let mut section = String::new();
        let mut pending_allow: Option<(Option<String>, Option<String>, Option<String>)> = None;

        fn flush_allow(
            pending: &mut Option<(Option<String>, Option<String>, Option<String>)>,
            out: &mut Vec<AllowEntry>,
        ) -> Result<(), String> {
            if let Some((rule, path, reason)) = pending.take() {
                let rule = rule.ok_or("[[allow]] entry missing `rule`")?;
                let path = path.ok_or("[[allow]] entry missing `path`")?;
                let reason = reason.ok_or_else(|| {
                    format!("[[allow]] entry for {rule}/{path} missing `reason` — exemptions must document themselves")
                })?;
                out.push(AllowEntry { rule, path, reason });
            }
            Ok(())
        }

        let lines: Vec<&str> = text.lines().collect();
        let mut idx = 0;
        while idx < lines.len() {
            let lineno = idx + 1;
            let mut line = strip_comment(lines[idx]).trim().to_string();
            idx += 1;
            if line.is_empty() {
                continue;
            }
            // Multi-line arrays: keep appending lines until brackets balance.
            while bracket_balance(&line) > 0 && idx < lines.len() {
                line.push(' ');
                line.push_str(strip_comment(lines[idx]).trim());
                idx += 1;
            }
            let line = line.as_str();
            if let Some(name) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
                flush_allow(&mut pending_allow, &mut cfg.allow)?;
                if name.trim() != "allow" {
                    return Err(format!("line {lineno}: unknown array section [[{name}]]"));
                }
                section = "allow".to_string();
                pending_allow = Some((None, None, None));
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                flush_allow(&mut pending_allow, &mut cfg.allow)?;
                let name = name.trim();
                match name {
                    "workspace" | "arena" | "unordered" => {}
                    _ if name.starts_with("rules.") => {
                        let rule = &name["rules.".len()..];
                        if !crate::rules::RULE_NAMES.contains(&rule) {
                            return Err(format!(
                                "line {lineno}: unknown rule [rules.{rule}] (rules: {})",
                                crate::rules::RULE_NAMES.join(", ")
                            ));
                        }
                    }
                    _ => return Err(format!("line {lineno}: unknown section [{name}]")),
                }
                section = name.to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "line {lineno}: expected `key = value`, got {line:?}"
                ));
            };
            let key = key.trim();
            let value = value.trim();
            match section.as_str() {
                "workspace" => match key {
                    "sim_path" => cfg.sim_path = parse_string_array(value, lineno)?,
                    "types_crate" => cfg.types_crate = parse_string(value, lineno)?,
                    "skip" => cfg.skip_dirs = parse_string_array(value, lineno)?,
                    _ => return Err(format!("line {lineno}: unknown [workspace] key {key:?}")),
                },
                "arena" => match key {
                    "id_types" => cfg.id_types = parse_string_array(value, lineno)?,
                    _ => return Err(format!("line {lineno}: unknown [arena] key {key:?}")),
                },
                "unordered" => match key {
                    "map_types" => cfg.map_types = parse_string_array(value, lineno)?,
                    _ => return Err(format!("line {lineno}: unknown [unordered] key {key:?}")),
                },
                "allow" => {
                    let entry = pending_allow
                        .as_mut()
                        .expect("inside [[allow]] a pending entry exists");
                    let v = parse_string(value, lineno)?;
                    match key {
                        "rule" => {
                            if !crate::rules::RULE_NAMES.contains(&v.as_str()) {
                                return Err(format!(
                                    "line {lineno}: [[allow]] names unknown rule {v:?}"
                                ));
                            }
                            entry.0 = Some(v);
                        }
                        "path" => entry.1 = Some(v),
                        "reason" => entry.2 = Some(v),
                        _ => return Err(format!("line {lineno}: unknown [[allow]] key {key:?}")),
                    }
                }
                rules if rules.starts_with("rules.") => {
                    let rule = &rules["rules.".len()..];
                    match key {
                        "severity" => {
                            let sev = Severity::parse(&parse_string(value, lineno)?)
                                .map_err(|e| format!("line {lineno}: {e}"))?;
                            cfg.severity.insert(rule.to_string(), sev);
                        }
                        _ => {
                            return Err(format!(
                                "line {lineno}: unknown [rules.{rule}] key {key:?}"
                            ))
                        }
                    }
                }
                "" => return Err(format!("line {lineno}: key {key:?} outside any section")),
                other => return Err(format!("line {lineno}: key in unhandled section {other:?}")),
            }
        }
        flush_allow(&mut pending_allow, &mut cfg.allow)?;
        Ok(cfg)
    }
}

/// Net count of unquoted `[` minus `]` — positive while a multi-line array
/// is still open.
fn bracket_balance(line: &str) -> i32 {
    let b = line.as_bytes();
    let mut balance = 0;
    let mut in_str = false;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'[' if !in_str => balance += 1,
            b']' if !in_str => balance -= 1,
            _ => {}
        }
        i += 1;
    }
    balance
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let b = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].replace("\\\"", "\""))
    } else {
        Err(format!(
            "line {lineno}: expected a quoted string, got {v:?}"
        ))
    }
}

fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let v = value.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("line {lineno}: expected [\"…\", …], got {v:?}"))?;
    let mut out = Vec::new();
    for part in split_top_level(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_string(part, lineno)?);
    }
    Ok(out)
}

/// Splits on commas outside quotes.
fn split_top_level(s: &str) -> Vec<&str> {
    let b = s.as_bytes();
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_document() {
        let toml = r#"
            # comment
            [workspace]
            sim_path = ["misp-sim", "misp-core"]  # trailing comment
            types_crate = "misp-types"
            skip = ["compat"]

            [rules.determinism]
            severity = "error"

            [rules.unordered-iteration]
            severity = "warn"

            [arena]
            id_types = ["SequencerId"]

            [[allow]]
            rule = "determinism"
            path = "crates/harness/src/bin/sweep.rs"
            reason = "wall-clock phase timers"
        "#;
        let cfg = LintConfig::parse(toml).unwrap();
        assert_eq!(cfg.sim_path, vec!["misp-sim", "misp-core"]);
        assert_eq!(cfg.severity_of("determinism"), Severity::Error);
        assert_eq!(cfg.severity_of("unordered-iteration"), Severity::Warn);
        assert_eq!(cfg.severity_of("no-alloc"), Severity::Error, "default");
        assert_eq!(cfg.id_types, vec!["SequencerId"]);
        assert_eq!(cfg.allow.len(), 1);
        assert!(cfg
            .allow_entry("determinism", "crates/harness/src/bin/sweep.rs")
            .is_some());
        assert!(cfg
            .allow_entry("determinism", "crates/sim/src/lib.rs")
            .is_none());
        assert!(cfg
            .allow_entry("no-alloc", "crates/harness/src/bin/sweep.rs")
            .is_none());
    }

    #[test]
    fn unknown_rule_section_is_rejected() {
        let err = LintConfig::parse("[rules.no-such-rule]\nseverity = \"warn\"\n").unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
    }

    #[test]
    fn unknown_key_is_rejected() {
        let err = LintConfig::parse("[workspace]\nfrobnicate = \"x\"\n").unwrap_err();
        assert!(err.contains("unknown [workspace] key"), "{err}");
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let toml = "[[allow]]\nrule = \"determinism\"\npath = \"x.rs\"\n";
        let err = LintConfig::parse(toml).unwrap_err();
        assert!(err.contains("missing `reason`"), "{err}");
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let toml = "[[allow]]\nrule = \"determinism\"\npath = \"a#b.rs\"\nreason = \"r # r\"\n";
        let cfg = LintConfig::parse(toml).unwrap();
        assert_eq!(cfg.allow[0].path, "a#b.rs");
        assert_eq!(cfg.allow[0].reason, "r # r");
    }
}
