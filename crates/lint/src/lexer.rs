//! A line/comment/string-aware Rust lexer.
//!
//! The lint rules work on token streams, never on raw text, so a `HashMap`
//! inside a string literal or a doc comment can never trip the determinism
//! rule.  The lexer handles everything the workspace's sources actually
//! contain: nested block comments, raw strings (`r"…"`, `r#"…"#`), byte and
//! raw-byte strings, char literals vs. lifetimes, raw identifiers
//! (`r#ident`), numeric literals with suffixes, and multi-byte UTF-8 text.
//!
//! It is intentionally *not* a full Rust lexer: tokens the rules never
//! inspect (shebangs, frontmatter, …) are simply skipped or folded into
//! punctuation, and no token carries more structure than the rules need.

/// What kind of token a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `unsafe`, `fn`, `r#type`, …).
    Ident,
    /// A numeric literal (`0`, `1.5`, `0xFF`, `1_000u64`).
    Number,
    /// A string, raw-string, byte-string or char literal (contents opaque).
    Literal,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A single punctuation byte (`.`, `:`, `(`, `[`, `!`, …).
    Punct,
    /// A `//…` line comment, text without the newline.
    LineComment,
    /// A `/* … */` block comment (possibly nested), full text.
    BlockComment,
}

/// One lexed token: kind, source slice and 1-based line number of its first
/// character.
#[derive(Debug, Clone, Copy)]
pub struct Tok<'a> {
    /// Token kind.
    pub kind: TokKind,
    /// The token's text, borrowed from the source.
    pub text: &'a str,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl<'a> Tok<'a> {
    /// Whether this token is the punctuation byte `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// Whether this token is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is a comment (line or block).
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens, comments included.
///
/// The lexer never fails: malformed trailing input (an unterminated string or
/// comment) is folded into one final token so the rules still see everything
/// before the error point.
#[must_use]
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Counts the newlines inside src[start..end] into `line`.
    fn advance_lines(b: &[u8], start: usize, end: usize, line: &mut u32) {
        for &c in &b[start..end] {
            if c == b'\n' {
                *line += 1;
            }
        }
    }

    while i < b.len() {
        let start = i;
        let start_line = line;
        let c = b[i];

        // Whitespace.
        if c.is_ascii_whitespace() {
            if c == b'\n' {
                line += 1;
            }
            i += 1;
            continue;
        }

        // Comments.
        if c == b'/' && i + 1 < b.len() {
            match b[i + 1] {
                b'/' => {
                    while i < b.len() && b[i] != b'\n' {
                        i += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::LineComment,
                        text: &src[start..i],
                        line: start_line,
                    });
                    continue;
                }
                b'*' => {
                    let mut depth = 1u32;
                    i += 2;
                    while i < b.len() && depth > 0 {
                        if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                            depth += 1;
                            i += 2;
                        } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                            depth -= 1;
                            i += 2;
                        } else {
                            i += 1;
                        }
                    }
                    advance_lines(b, start, i, &mut line);
                    toks.push(Tok {
                        kind: TokKind::BlockComment,
                        text: &src[start..i],
                        line: start_line,
                    });
                    continue;
                }
                _ => {}
            }
        }

        // Raw strings / raw identifiers / byte strings: r"…", r#"…"#,
        // r#ident, b"…", br#"…"#, b'…'.
        if (c == b'r' || c == b'b') && i + 1 < b.len() {
            let (prefix_len, rest) = if c == b'b' && i + 1 < b.len() && b[i + 1] == b'r' {
                (2usize, &b[i + 2..])
            } else {
                (1usize, &b[i + 1..])
            };
            let mut hashes = 0usize;
            while hashes < rest.len() && rest[hashes] == b'#' {
                hashes += 1;
            }
            let quote_next = hashes < rest.len() && rest[hashes] == b'"';
            // r"…", r#"…"#, br"…", br#"…"#, b"…" — everything but a plain
            // b"…" may carry hashes.
            let is_raw_string =
                quote_next && (c == b'r' || prefix_len == 2 || (c == b'b' && hashes == 0));
            if is_raw_string {
                // Scan for `"` followed by `hashes` hashes.  Escapes are
                // active only without an `r` in the prefix (b"…" has them,
                // r"…"/br"…" do not).
                let escapes = c == b'b' && prefix_len == 1;
                let mut j = i + prefix_len + hashes + 1;
                'scan: while j < b.len() {
                    if escapes && b[j] == b'\\' {
                        j += 2;
                        continue 'scan;
                    }
                    if b[j] == b'"' {
                        let mut k = 0usize;
                        while k < hashes && j + 1 + k < b.len() && b[j + 1 + k] == b'#' {
                            k += 1;
                        }
                        if k == hashes {
                            j += 1 + hashes;
                            break 'scan;
                        }
                    }
                    j += 1;
                }
                let j = j.min(b.len());
                advance_lines(b, start, j, &mut line);
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: &src[start..j],
                    line: start_line,
                });
                i = j;
                continue;
            }
            if c == b'r' && hashes > 0 && hashes < rest.len() && is_ident_start(rest[hashes]) {
                // Raw identifier r#ident: token text excludes the r# prefix
                // so `r#unsafe` (an ident, not the keyword) never matches
                // rule keywords — the `#` distinction is deliberate.
                let mut j = i + 1 + hashes;
                while j < b.len() && is_ident_continue(b[j]) {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: &src[i + 1 + hashes..j],
                    line: start_line,
                });
                i = j;
                continue;
            }
            if c == b'b' && i + 1 < b.len() && b[i + 1] == b'\'' {
                // Byte char literal b'…'.
                let mut j = i + 2;
                while j < b.len() {
                    if b[j] == b'\\' {
                        j += 2;
                    } else if b[j] == b'\'' {
                        j += 1;
                        break;
                    } else {
                        j += 1;
                    }
                }
                advance_lines(b, start, j.min(b.len()), &mut line);
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: &src[start..j.min(b.len())],
                    line: start_line,
                });
                i = j.min(b.len());
                continue;
            }
            // Fall through: plain ident starting with r/b.
        }

        // Strings.
        if c == b'"' {
            let mut j = i + 1;
            while j < b.len() {
                if b[j] == b'\\' {
                    j += 2;
                } else if b[j] == b'"' {
                    j += 1;
                    break;
                } else {
                    j += 1;
                }
            }
            let j = j.min(b.len());
            advance_lines(b, start, j, &mut line);
            toks.push(Tok {
                kind: TokKind::Literal,
                text: &src[start..j],
                line: start_line,
            });
            i = j;
            continue;
        }

        // Char literal vs. lifetime.
        if c == b'\'' {
            let next = b.get(i + 1).copied().unwrap_or(0);
            let after = b.get(i + 2).copied().unwrap_or(0);
            if next == b'\\' || (after == b'\'' && next != b'\'') {
                // Char literal: '\n' or 'x'.
                let mut j = i + 1;
                while j < b.len() {
                    if b[j] == b'\\' {
                        j += 2;
                    } else if b[j] == b'\'' {
                        j += 1;
                        break;
                    } else {
                        j += 1;
                    }
                }
                let j = j.min(b.len());
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: &src[start..j],
                    line: start_line,
                });
                i = j;
                continue;
            }
            if is_ident_start(next) {
                // Lifetime 'a / 'static / '_.
                let mut j = i + 1;
                while j < b.len() && is_ident_continue(b[j]) {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: &src[start..j],
                    line: start_line,
                });
                i = j;
                continue;
            }
            // Lone quote (malformed): punctuation.
            toks.push(Tok {
                kind: TokKind::Punct,
                text: &src[i..i + 1],
                line: start_line,
            });
            i += 1;
            continue;
        }

        // Numbers (incl. 0x…, 1_000u64, 1.5; `1..2` stops before the range).
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < b.len() {
                let d = b[j];
                let in_number = d.is_ascii_alphanumeric()
                    || d == b'_'
                    // A decimal point glues only when digits follow and the
                    // literal has none yet (`1..2` stops before the range).
                    || (d == b'.'
                        && j + 1 < b.len()
                        && b[j + 1].is_ascii_digit()
                        && !src[i..j].contains('.'));
                if in_number {
                    j += 1;
                } else {
                    break;
                }
            }
            toks.push(Tok {
                kind: TokKind::Number,
                text: &src[i..j],
                line: start_line,
            });
            i = j;
            continue;
        }

        // Identifiers and keywords.
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < b.len() && is_ident_continue(b[j]) {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: &src[i..j],
                line: start_line,
            });
            i = j;
            continue;
        }

        // Everything else: one punctuation byte.
        toks.push(Tok {
            kind: TokKind::Punct,
            text: &src[i..i + 1],
            line: start_line,
        });
        i += 1;
    }
    toks
}

/// Returns the tokens of `toks` with comments removed, preserving order.
#[must_use]
pub fn code_tokens<'a>(toks: &[Tok<'a>]) -> Vec<Tok<'a>> {
    toks.iter().filter(|t| !t.is_comment()).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text.to_string()))
            .collect()
    }

    #[test]
    fn idents_numbers_punct() {
        let got = kinds("let x = 42;");
        assert_eq!(
            got,
            vec![
                (TokKind::Ident, "let".into()),
                (TokKind::Ident, "x".into()),
                (TokKind::Punct, "=".into()),
                (TokKind::Number, "42".into()),
                (TokKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn banned_words_inside_strings_and_comments_are_not_idents() {
        let src = r#"
            // HashMap in a comment
            /* Instant in a block /* nested */ comment */
            let s = "HashMap::new()";
        "#;
        let idents: Vec<&str> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect();
        assert_eq!(idents, vec!["let", "s"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r##"let x = r#"HashMap "quoted" inside"#; y"##;
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.kind == TokKind::Literal));
        assert!(toks.iter().any(|t| t.is_ident("y")));
        assert!(!toks.iter().any(|t| t.is_ident("HashMap")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text)
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Literal && t.text == "'x'"));
    }

    #[test]
    fn line_numbers_are_tracked() {
        let src = "a\nb\n\nc";
        let toks = lex(src);
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn line_numbers_cross_block_comments_and_strings() {
        let src = "/* one\ntwo */ x\n\"a\nb\" y";
        let toks = lex(src);
        let x = toks.iter().find(|t| t.is_ident("x")).unwrap();
        let y = toks.iter().find(|t| t.is_ident("y")).unwrap();
        assert_eq!(x.line, 2);
        assert_eq!(y.line, 4);
    }

    #[test]
    fn tuple_field_access_lexes_as_dot_number() {
        let got = kinds("id.0");
        assert_eq!(
            got,
            vec![
                (TokKind::Ident, "id".into()),
                (TokKind::Punct, ".".into()),
                (TokKind::Number, "0".into()),
            ]
        );
    }

    #[test]
    fn float_literals_stay_whole() {
        let got = kinds("1.5 0.0 1..3 1.max(2)");
        let nums: Vec<String> = got
            .iter()
            .filter(|(k, _)| *k == TokKind::Number)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(nums, vec!["1.5", "0.0", "1", "3", "1", "2"]);
    }

    #[test]
    fn raw_identifier_drops_prefix() {
        let toks = lex("r#type");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, TokKind::Ident);
        assert_eq!(toks[0].text, "type");
    }

    #[test]
    fn byte_strings_and_chars() {
        let toks = lex(r##"b"bytes" b'x' br#"raw"# ident"##);
        assert!(toks.iter().any(|t| t.is_ident("ident")));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Literal).count(),
            3
        );
    }
}
