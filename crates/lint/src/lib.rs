//! misp-lint — workspace-wide determinism & hot-path static analysis.
//!
//! The simulator's headline guarantees — byte-identical digests at any
//! thread count, zero steady-state allocations on the step path, opaque
//! arena-typed indices — are invariants of the *source*, not just of any one
//! test run.  This crate enforces them as named, suppressible lint rules
//! over a hand-rolled comment/string-aware Rust lexer (no external deps, in
//! the spirit of the `compat/` stand-ins):
//!
//! | rule | meaning |
//! |------|---------|
//! | `determinism` | no `HashMap`/`HashSet`/`RandomState` in sim-path crates; no `Instant`/`SystemTime`/rand anywhere linted |
//! | `unordered-iteration` | hash-map iteration must be sorted or annotated `// lint: unordered-ok(reason)` |
//! | `no-alloc` | fns under `// lint: no-alloc` may not allocate |
//! | `arena-discipline` | arena-id newtypes are opaque outside `misp-types` |
//! | `unsafe-hygiene` | `unsafe` needs `// SAFETY:`; sim-path crates forbid it |
//!
//! Configuration (scoping, severities, the committed allowlist) lives in
//! `lint.toml` at the workspace root.  The binary exits non-zero on any
//! unsuppressed error-severity finding, making it usable as a CI gate.

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

use config::{LintConfig, Severity};
use rules::{FileCtx, Suppressions};
use std::fs;
use std::io;
use std::path::Path;

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule that fired (one of [`rules::RULE_NAMES`]).
    pub rule: &'static str,
    /// Configured severity.
    pub severity: Severity,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Diagnostic text.
    pub message: String,
}

/// The result of linting a workspace.
#[derive(Debug)]
pub struct LintReport {
    /// Workspace root the walk started from.
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Unsuppressed findings (errors and warnings).
    pub findings: Vec<Finding>,
    /// Findings waived by `lint.toml` `[[allow]]` entries, with the reason.
    pub allowlisted: Vec<(Finding, String)>,
}

impl LintReport {
    /// Number of error-severity findings.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    #[must_use]
    pub fn warn_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warn)
            .count()
    }

    /// Whether the run should fail (any error-severity finding).
    #[must_use]
    pub fn failed(&self) -> bool {
        self.error_count() > 0
    }
}

/// Lints one source file.  In-source suppressions are honoured; the
/// `lint.toml` allowlist is **not** applied here (that is workspace-level
/// policy, handled by [`lint_workspace`]).
#[must_use]
pub fn lint_source(
    rel_path: &str,
    crate_name: &str,
    is_crate_root: bool,
    src: &str,
    cfg: &LintConfig,
) -> Vec<Finding> {
    let toks = lexer::lex(src);
    let code = lexer::code_tokens(&toks);
    let ctx = FileCtx {
        rel_path,
        crate_name,
        is_sim_path: cfg.is_sim_path(crate_name),
        is_crate_root,
        toks: &toks,
        code: &code,
    };
    let sup = Suppressions::collect(&toks);

    let mut raw = Vec::new();
    if cfg.severity_of(rules::determinism::NAME) != Severity::Off {
        raw.extend(rules::determinism::check(&ctx, &sup));
    }
    if cfg.severity_of(rules::unordered::NAME) != Severity::Off && ctx.is_sim_path {
        raw.extend(rules::unordered::check(&ctx, &sup, cfg));
    }
    if cfg.severity_of(rules::no_alloc::NAME) != Severity::Off {
        raw.extend(rules::no_alloc::check(&ctx, &sup));
    }
    if cfg.severity_of(rules::arena::NAME) != Severity::Off
        && ctx.is_sim_path
        && crate_name != cfg.types_crate
    {
        raw.extend(rules::arena::check(&ctx, &sup, cfg));
    }
    if cfg.severity_of(rules::unsafe_hygiene::NAME) != Severity::Off {
        raw.extend(rules::unsafe_hygiene::check(&ctx));
    }

    let mut out: Vec<Finding> = raw
        .into_iter()
        .map(|r| Finding {
            rule: r.rule,
            severity: cfg.severity_of(r.rule),
            file: rel_path.to_string(),
            line: r.line,
            message: r.message,
        })
        .collect();
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Lints the whole workspace rooted at `root`.
///
/// # Errors
///
/// Propagates I/O failures from the walk and file reads.
pub fn lint_workspace(root: &Path, cfg: &LintConfig) -> io::Result<LintReport> {
    let files = walk::collect(root, cfg)?;
    let mut findings = Vec::new();
    let mut allowlisted = Vec::new();
    let files_scanned = files.len();
    for f in &files {
        let src = fs::read_to_string(&f.abs)?;
        for finding in lint_source(&f.rel, &f.crate_name, f.is_crate_root, &src, cfg) {
            match cfg.allow_entry(finding.rule, &finding.file) {
                Some(entry) => allowlisted.push((finding, entry.reason.clone())),
                None => findings.push(finding),
            }
        }
    }
    Ok(LintReport {
        root: root.display().to_string(),
        files_scanned,
        findings,
        allowlisted,
    })
}
