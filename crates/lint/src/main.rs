//! The `misp-lint` CLI.
//!
//! ```text
//! misp-lint --workspace [--root DIR] [--config FILE] [--format text|json] [--out FILE]
//! ```
//!
//! Exit codes: 0 clean, 1 unsuppressed error-severity findings, 2 usage or
//! I/O error.

#![forbid(unsafe_code)]

use misp_lint::config::LintConfig;
use misp_lint::{lint_workspace, report};
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    root: PathBuf,
    config: Option<PathBuf>,
    json: bool,
    out: Option<PathBuf>,
}

fn usage() -> &'static str {
    "usage: misp-lint --workspace [--root DIR] [--config FILE] [--format text|json] [--out FILE]"
}

fn parse_cli() -> Result<Cli, String> {
    let mut args = std::env::args().skip(1);
    let mut workspace = false;
    let mut cli = Cli {
        root: PathBuf::from("."),
        config: None,
        json: false,
        out: None,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--root" => cli.root = PathBuf::from(args.next().ok_or("--root needs a value")?),
            "--config" => {
                cli.config = Some(PathBuf::from(args.next().ok_or("--config needs a value")?));
            }
            "--format" => match args.next().as_deref() {
                Some("text") => cli.json = false,
                Some("json") => cli.json = true,
                other => return Err(format!("--format text|json, got {other:?}")),
            },
            "--out" => cli.out = Some(PathBuf::from(args.next().ok_or("--out needs a value")?)),
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if !workspace {
        return Err("missing --workspace (the only supported mode)".to_string());
    }
    Ok(cli)
}

/// Walks up from `start` to the directory holding `lint.toml` (the
/// workspace root), so the binary works from any subdirectory.
fn find_root(start: PathBuf) -> PathBuf {
    let mut dir = start.canonicalize().unwrap_or(start);
    loop {
        if dir.join("lint.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn run() -> Result<bool, String> {
    let cli = parse_cli()?;
    let root = find_root(cli.root);
    let config_path = cli.config.unwrap_or_else(|| root.join("lint.toml"));
    let cfg = if config_path.is_file() {
        let text = std::fs::read_to_string(&config_path)
            .map_err(|e| format!("{}: {e}", config_path.display()))?;
        LintConfig::parse(&text).map_err(|e| format!("{}: {e}", config_path.display()))?
    } else {
        LintConfig::default()
    };
    let rep = lint_workspace(&root, &cfg).map_err(|e| format!("lint walk failed: {e}"))?;
    let rendered = if cli.json {
        report::render_json(&rep)
    } else {
        report::render_text(&rep)
    };
    match &cli.out {
        Some(path) => {
            std::fs::write(path, &rendered).map_err(|e| format!("{}: {e}", path.display()))?
        }
        None => print!("{rendered}"),
    }
    Ok(rep.failed())
}

fn main() -> ExitCode {
    match run() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::from(1),
        Err(e) => {
            eprintln!("misp-lint: {e}");
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}
