//! Report rendering: human-readable text and machine-readable JSON.
//!
//! The JSON emitter is hand-rolled (the crate is dependency-free by design);
//! the schema is versioned and covered by `tests/json_schema.rs`.

use crate::{Finding, LintReport};
use std::fmt::Write as _;

/// Renders the report as compiler-style text diagnostics.
#[must_use]
pub fn render_text(r: &LintReport) -> String {
    let mut out = String::new();
    for f in &r.findings {
        let _ = writeln!(
            out,
            "{}: [{}] {}:{}: {}",
            f.severity.name(),
            f.rule,
            f.file,
            f.line,
            f.message
        );
    }
    for (f, reason) in &r.allowlisted {
        let _ = writeln!(
            out,
            "allowed: [{}] {}:{}: {} (lint.toml: {})",
            f.rule, f.file, f.line, f.message, reason
        );
    }
    let _ = writeln!(
        out,
        "misp-lint: {} file(s) scanned, {} error(s), {} warning(s), {} allowlisted",
        r.files_scanned,
        r.error_count(),
        r.warn_count(),
        r.allowlisted.len()
    );
    out
}

/// Renders the report as JSON (schema version 1).
#[must_use]
pub fn render_json(r: &LintReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"root\": {},", json_str(&r.root));
    let _ = writeln!(out, "  \"files_scanned\": {},", r.files_scanned);
    let _ = writeln!(out, "  \"errors\": {},", r.error_count());
    let _ = writeln!(out, "  \"warnings\": {},", r.warn_count());
    out.push_str("  \"findings\": [");
    push_findings(&mut out, r.findings.iter().map(|f| (f, None)));
    out.push_str("],\n");
    out.push_str("  \"allowlisted\": [");
    push_findings(
        &mut out,
        r.allowlisted
            .iter()
            .map(|(f, reason)| (f, Some(reason.as_str()))),
    );
    out.push_str("]\n}\n");
    out
}

fn push_findings<'a, I>(out: &mut String, findings: I)
where
    I: Iterator<Item = (&'a Finding, Option<&'a str>)>,
{
    let mut first = true;
    for (f, reason) in findings {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    {");
        let _ = write!(
            out,
            "\"rule\": {}, \"severity\": {}, \"file\": {}, \"line\": {}, \"message\": {}",
            json_str(f.rule),
            json_str(f.severity.name()),
            json_str(&f.file),
            f.line,
            json_str(&f.message)
        );
        if let Some(reason) = reason {
            let _ = write!(out, ", \"reason\": {}", json_str(reason));
        }
        out.push('}');
    }
    if !first {
        out.push_str("\n  ");
    }
}

/// Escapes `s` as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
