//! Rule `arena-discipline`: arena-id newtypes are opaque outside
//! `misp-types`.
//!
//! The `arena_id!` newtypes (`SequencerId`, `ShredId`, …) exist so the step
//! path cannot mix up index spaces.  Outside the types crate, code must go
//! through the sanctioned API — `T::new(u32)`, `.index()`, `.as_usize()` and
//! `Arena`/`ArenaMap` indexing — never raw tuple construction, pattern
//! destructuring, `.0` access, or `.index()` fed straight into a slice
//! subscript (that is what `.as_usize()` spells).  The id fields are private
//! today, so most violations also fail to compile; this rule keeps the
//! discipline when a refactor makes a field `pub` or adds a new id type.

use super::{typed_bindings, FileCtx, RawFinding, Suppressions};
use crate::config::LintConfig;
use crate::lexer::TokKind;

/// Rule name.
pub const NAME: &str = "arena-discipline";
/// Suppression short-name.
pub const SUPPRESS: &str = "arena-ok";

/// Runs the rule.
#[must_use]
pub fn check(ctx: &FileCtx<'_>, sup: &Suppressions, cfg: &LintConfig) -> Vec<RawFinding> {
    let code = ctx.code;
    let ids = typed_bindings(code, &cfg.id_types);
    let is_id_type = |s: &str| cfg.id_types.iter().any(|t| t == s);
    let mut out = Vec::new();
    let mut flag = |line: u32, message: String| {
        if sup.allows(SUPPRESS, line) {
            return;
        }
        out.push(RawFinding {
            rule: NAME,
            line,
            message,
        });
    };
    let mut bracket_depth = 0i32;
    let mut i = 0;
    while i < code.len() {
        let t = &code[i];
        if t.is_punct('[') {
            bracket_depth += 1;
        } else if t.is_punct(']') {
            bracket_depth -= 1;
        }
        if t.kind == TokKind::Ident {
            // (a) `SequencerId(x)` — raw construction or destructuring.
            // Sanctioned `SequencerId::new(x)` has `::` between, not `(`.
            if is_id_type(t.text) && i + 1 < code.len() && code[i + 1].is_punct('(') {
                flag(
                    t.line,
                    format!(
                        "raw tuple construction/destructuring of arena id `{}`; \
                         use `{}::new(..)` / `.index()` instead",
                        t.text, t.text
                    ),
                );
            }
            // (b) `binding.0` where `binding: SequencerId`.
            if ids.contains(t.text)
                && i + 2 < code.len()
                && code[i + 1].is_punct('.')
                && code[i + 2].kind == TokKind::Number
                && code[i + 2].text == "0"
            {
                flag(
                    code[i + 2].line,
                    format!(
                        "`.0` field access on arena id `{}`; use `.index()` or `.as_usize()`",
                        t.text
                    ),
                );
            }
            // (c) `slice[id.index() as usize]`-style raw indexing: `.index()`
            // inside a subscript.  `.as_usize()` is the sanctioned spelling
            // and already carries the cast.
            if bracket_depth > 0
                && t.text == "index"
                && i > 0
                && code[i - 1].is_punct('.')
                && i + 1 < code.len()
                && code[i + 1].is_punct('(')
            {
                flag(
                    t.line,
                    "raw `.index()` inside a slice subscript; \
                     spell hot-path indexing `.as_usize()`"
                        .to_string(),
                );
            }
        }
        i += 1;
    }
    out
}
