//! Rule `determinism`: no nondeterminism sources in simulation code.
//!
//! Two classes of bans:
//!
//! * **Hash-randomised containers** (`HashMap`, `HashSet`, `RandomState`) in
//!   sim-path crates.  The sanctioned spellings are `FxHashMap`/`FxHashSet`
//!   (fixed-seed) or `BTreeMap`/`BTreeSet` (ordered).
//! * **Wall-clock / entropy sources** (`Instant`, `SystemTime`, the
//!   `rand`-family identifiers) in every linted crate — simulated time is the
//!   only clock; harness/bench phase timers live on the committed allowlist
//!   in `lint.toml`.

use super::{FileCtx, RawFinding, Suppressions};
use crate::lexer::TokKind;

/// Rule name.
pub const NAME: &str = "determinism";
/// Suppression short-name.
pub const SUPPRESS: &str = "determinism-ok";

/// Containers with a randomised default hasher — banned on the sim path.
const HASHED_TYPES: &[&str] = &["HashMap", "HashSet", "RandomState"];
/// Wall-clock and entropy identifiers — banned everywhere linted.
const CLOCK_AND_RAND: &[&str] = &[
    "Instant",
    "SystemTime",
    "thread_rng",
    "getrandom",
    "StdRng",
    "SmallRng",
    "from_entropy",
];

/// Runs the rule.
#[must_use]
pub fn check(ctx: &FileCtx<'_>, sup: &Suppressions) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for t in ctx.code {
        if t.kind != TokKind::Ident {
            continue;
        }
        let (what, hint) = if ctx.is_sim_path && HASHED_TYPES.contains(&t.text) {
            (
                t.text,
                "randomised hasher breaks replay determinism; use FxHashMap/FxHashSet or BTreeMap",
            )
        } else if CLOCK_AND_RAND.contains(&t.text) {
            (
                t.text,
                "wall-clock/entropy source; simulated Cycles are the only clock in sim code",
            )
        } else {
            continue;
        };
        if sup.allows(SUPPRESS, t.line) {
            continue;
        }
        out.push(RawFinding {
            rule: NAME,
            line: t.line,
            message: format!("`{what}` is banned here: {hint}"),
        });
    }
    out
}
