//! The lint rules.
//!
//! Each rule is a pure function from a lexed file to raw findings; scoping
//! (which crates a rule applies to), severity and the committed allowlist
//! are applied by the caller in `lib.rs`.  Rules work on token streams, so
//! banned names inside strings or comments never trip them.

pub mod arena;
pub mod determinism;
pub mod no_alloc;
pub mod unordered;
pub mod unsafe_hygiene;

use crate::lexer::{Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// Every rule name, in report order.  `lint.toml` sections and `[[allow]]`
/// entries are validated against this list.
pub const RULE_NAMES: &[&str] = &[
    determinism::NAME,
    unordered::NAME,
    no_alloc::NAME,
    arena::NAME,
    unsafe_hygiene::NAME,
];

/// Everything a rule needs to know about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path, `/`-separated (diagnostics and allowlist).
    pub rel_path: &'a str,
    /// Owning package name (e.g. `misp-sim`).
    pub crate_name: &'a str,
    /// Whether the owning package is on the simulation path.
    pub is_sim_path: bool,
    /// Whether this file is the package's library root (`src/lib.rs`).
    pub is_crate_root: bool,
    /// Full token stream, comments included.
    pub toks: &'a [Tok<'a>],
    /// Code tokens only (comments stripped).
    pub code: &'a [Tok<'a>],
}

/// A finding before file path / severity / allowlist are attached.
#[derive(Debug)]
pub struct RawFinding {
    /// Rule that fired.
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable diagnostic.
    pub message: String,
}

/// In-source suppressions: `// lint: <short>-ok(reason)`.
///
/// A suppression covers findings on its own line and on the line directly
/// below it, so both trailing and preceding-line placement work:
///
/// ```text
/// // lint: unordered-ok(commutative count)
/// self.sparse.values().filter(…)            // covered (line above)
/// map.retain(|_, v| v.live); // lint: unordered-ok(pure filter)   covered
/// ```
pub struct Suppressions {
    /// Comment line → suppression short-names found on it.
    by_line: BTreeMap<u32, BTreeSet<String>>,
}

impl Suppressions {
    /// Scans the full token stream for suppression comments.
    #[must_use]
    pub fn collect(toks: &[Tok<'_>]) -> Self {
        let mut by_line: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
        for t in toks {
            if !t.is_comment() {
                continue;
            }
            let mut rest = t.text;
            while let Some(pos) = rest.find("lint:") {
                rest = rest[pos + "lint:".len()..].trim_start();
                // `<short>-ok(reason)` — the reason is required syntax; an
                // empty `()` still parses but reads as undocumented.
                if let Some(paren) = rest.find('(') {
                    let short = rest[..paren].trim();
                    if short.ends_with("-ok") && !short.contains(char::is_whitespace) {
                        by_line.entry(t.line).or_default().insert(short.to_string());
                    }
                }
            }
        }
        Suppressions { by_line }
    }

    /// Whether a finding of suppression-class `short` at `line` is waived.
    #[must_use]
    pub fn allows(&self, short: &str, line: u32) -> bool {
        let covering = [line, line.saturating_sub(1)];
        covering
            .iter()
            .any(|l| self.by_line.get(l).is_some_and(|s| s.contains(short)))
    }
}

/// Collects identifiers bound (via `name: Type` annotations, struct fields,
/// params, struct-literal inits, or `let name = Type::…`) to one of `types`.
///
/// This is deliberately head-type-only: `Vec<FxHashMap<…>>` does not record
/// the binding, because iterating the `Vec` is ordered.
#[must_use]
pub fn typed_bindings<'a>(code: &[Tok<'a>], types: &[String]) -> BTreeSet<&'a str> {
    let is_target = |s: &str| types.iter().any(|t| t == s);
    let mut out = BTreeSet::new();
    let mut i = 0;
    while i < code.len() {
        // `let [mut] name = Type::…`
        if code[i].is_ident("let") {
            let mut j = i + 1;
            if j < code.len() && code[j].is_ident("mut") {
                j += 1;
            }
            if j + 2 < code.len()
                && code[j].kind == TokKind::Ident
                && code[j + 1].is_punct('=')
                && !code[j + 2].is_punct('=')
            {
                if let Some(head) = path_head(code, j + 2) {
                    if is_target(head) {
                        out.insert(code[j].text);
                    }
                }
            }
            i += 1;
            continue;
        }
        // `name : Type` — but not `::` on either side.
        if code[i].kind == TokKind::Ident
            && i + 2 < code.len()
            && code[i + 1].is_punct(':')
            && !code[i + 2].is_punct(':')
            && (i == 0 || !code[i - 1].is_punct(':'))
        {
            if let Some(head) = path_head(code, i + 2) {
                if is_target(head) {
                    out.insert(code[i].text);
                }
            }
        }
        i += 1;
    }
    out
}

/// The head type identifier of the path starting at `code[i]`, skipping
/// leading `&`, lifetimes, `mut` and `dyn`, and following `::` segments up
/// to (not into) any generic argument list.
fn path_head<'a>(code: &[Tok<'a>], mut i: usize) -> Option<&'a str> {
    while i < code.len()
        && (code[i].is_punct('&')
            || code[i].kind == TokKind::Lifetime
            || code[i].is_ident("mut")
            || code[i].is_ident("dyn"))
    {
        i += 1;
    }
    if i >= code.len() || code[i].kind != TokKind::Ident {
        return None;
    }
    let mut head = code[i].text;
    while i + 3 < code.len()
        && code[i + 1].is_punct(':')
        && code[i + 2].is_punct(':')
        && code[i + 3].kind == TokKind::Ident
    {
        i += 3;
        head = code[i].text;
    }
    Some(head)
}

/// Whether the statement containing `code[start]` (or the next one) sorts
/// its result: scans forward past at most two `;` terminators looking for a
/// `sort*` method or a `BTreeMap`/`BTreeSet` re-collection.
#[must_use]
pub fn followed_by_sort(code: &[Tok<'_>], start: usize) -> bool {
    let mut semis = 0;
    for t in code.iter().skip(start) {
        if t.is_punct(';') {
            semis += 1;
            if semis >= 2 {
                return false;
            }
        }
        if t.kind == TokKind::Ident && (t.text.starts_with("sort") || t.text.starts_with("BTree")) {
            return true;
        }
    }
    false
}
