//! Rule `no-alloc`: marker-gated allocation ban.
//!
//! A `// lint: no-alloc` comment arms the rule for the next `fn`: its body
//! (brace-matched) may not contain the allocating constructors and adapters
//! below.  This is the static complement to the `CountingAllocator` audit in
//! `tests/zero_alloc.rs` — the runtime test proves steady state allocates
//! nothing; the marker keeps allocation from being *introduced* on the step
//! path in the first place.  Individual sites inside a marked body (e.g. a
//! lazily-evaluated trace closure that only runs when tracing is enabled)
//! can be waived with `// lint: alloc-ok(reason)`.

use super::{FileCtx, RawFinding, Suppressions};
use crate::lexer::{Tok, TokKind};

/// Rule name.
pub const NAME: &str = "no-alloc";
/// Suppression short-name.
pub const SUPPRESS: &str = "alloc-ok";
/// Marker comment text that arms the rule for the following `fn`.
pub const MARKER: &str = "lint: no-alloc";

/// `Type::method` paths that allocate.
const PATH_BANS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
];
/// Macros that allocate.
const MACRO_BANS: &[&str] = &["vec", "format"];
/// Method calls that allocate.
const METHOD_BANS: &[&str] = &["to_string", "to_owned", "to_vec", "collect"];

/// Runs the rule.
#[must_use]
pub fn check(ctx: &FileCtx<'_>, sup: &Suppressions) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for (idx, t) in ctx.toks.iter().enumerate() {
        // The marker must be the comment's entire content — prose that
        // merely *mentions* the marker does not arm the rule.
        let is_marker = t.is_comment()
            && t.text
                .trim_start_matches(['/', '*'])
                .trim_end_matches(['/', '*'])
                .trim()
                == MARKER;
        if is_marker {
            if let Some((fn_name, body)) = marked_fn_body(ctx, idx) {
                scan_body(ctx, fn_name, body, sup, &mut out);
            } else {
                out.push(RawFinding {
                    rule: NAME,
                    line: t.line,
                    message: "`// lint: no-alloc` marker is not followed by a `fn`".to_string(),
                });
            }
        }
    }
    out
}

/// Locates the `fn` following the marker at `ctx.toks[marker_idx]` and
/// returns its name plus the code-token range of its brace-matched body.
fn marked_fn_body<'a>(ctx: &'a FileCtx<'_>, marker_idx: usize) -> Option<(&'a str, &'a [Tok<'a>])> {
    // Map the marker position into the code-token stream: the first code
    // token at or after the marker's line.
    let marker_line = ctx.toks[marker_idx].line;
    let start = ctx.code.iter().position(|t| t.line >= marker_line)?;
    let code = ctx.code;
    let fn_idx = (start..code.len()).find(|&i| code[i].is_ident("fn"))?;
    let name = code
        .get(fn_idx + 1)
        .filter(|t| t.kind == TokKind::Ident)?
        .text;
    // First `{` at bracket depth 0 after the signature opens the body
    // (`->` return types and generic bounds contain no braces; closure or
    // struct-expression defaults in signatures do not occur in this tree).
    let mut depth = 0i32;
    let mut open = None;
    for (i, t) in code.iter().enumerate().skip(fn_idx) {
        if t.kind == TokKind::Punct {
            match t.text.as_bytes()[0] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => {
                    open = Some(i);
                    break;
                }
                _ => {}
            }
        }
    }
    let open = open?;
    let mut braces = 0i32;
    for (i, t) in code.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            braces += 1;
        } else if t.is_punct('}') {
            braces -= 1;
            if braces == 0 {
                return Some((name, &code[open..=i]));
            }
        }
    }
    None
}

/// Flags banned allocation sites inside one marked body.
fn scan_body(
    ctx: &FileCtx<'_>,
    fn_name: &str,
    body: &[Tok<'_>],
    sup: &Suppressions,
    out: &mut Vec<RawFinding>,
) {
    let _ = ctx;
    let mut flag = |line: u32, what: &str| {
        if sup.allows(SUPPRESS, line) {
            return;
        }
        out.push(RawFinding {
            rule: NAME,
            line,
            message: format!(
                "`{what}` allocates inside `// lint: no-alloc` fn `{fn_name}`; \
                 preallocate, or annotate the site `// lint: alloc-ok(reason)`"
            ),
        });
    };
    let mut i = 0;
    while i < body.len() {
        let t = &body[i];
        if t.kind == TokKind::Ident {
            // `vec![…]` / `format!(…)`
            if MACRO_BANS.contains(&t.text) && i + 1 < body.len() && body[i + 1].is_punct('!') {
                flag(t.line, &format!("{}!", t.text));
            }
            // `Vec::new(…)` and friends
            if i + 3 < body.len()
                && body[i + 1].is_punct(':')
                && body[i + 2].is_punct(':')
                && body[i + 3].kind == TokKind::Ident
                && PATH_BANS
                    .iter()
                    .any(|(ty, m)| *ty == t.text && *m == body[i + 3].text)
            {
                flag(t.line, &format!("{}::{}", t.text, body[i + 3].text));
            }
            // `.to_string()` / `.collect::<…>()`
            if METHOD_BANS.contains(&t.text) && i > 0 && body[i - 1].is_punct('.') {
                flag(t.line, &format!(".{}()", t.text));
            }
        }
        i += 1;
    }
}
