//! Rule `unordered-iteration`: iterating a hash map in sim-path code.
//!
//! Even `FxHashMap` (deterministic hasher) iterates in insertion-layout
//! order, which shifts under refactors and capacity changes — any iteration
//! that feeds events, stats or digests must either be sorted afterwards or
//! carry a `// lint: unordered-ok(reason)` annotation stating why order
//! cannot matter (commutative fold, pure filter, …).
//!
//! Detection is binding-based: the rule first collects every identifier the
//! file binds to a hash-container type (fields, params, lets, struct-literal
//! inits), then flags iteration-flavoured calls on those names and
//! `for … in [&]name` loops.  A statement that sorts its result within the
//! next two statements is waived automatically.

use super::{followed_by_sort, typed_bindings, FileCtx, RawFinding, Suppressions};
use crate::config::LintConfig;
use crate::lexer::TokKind;

/// Rule name.
pub const NAME: &str = "unordered-iteration";
/// Suppression short-name.
pub const SUPPRESS: &str = "unordered-ok";

/// Methods whose results (or visit order) depend on map layout.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Runs the rule.
#[must_use]
pub fn check(ctx: &FileCtx<'_>, sup: &Suppressions, cfg: &LintConfig) -> Vec<RawFinding> {
    let maps = typed_bindings(ctx.code, &cfg.map_types);
    if maps.is_empty() {
        return Vec::new();
    }
    let code = ctx.code;
    let mut out = Vec::new();
    let mut flag = |line: u32, name: &str, how: &str, site: usize| {
        if sup.allows(SUPPRESS, line) || followed_by_sort(code, site) {
            return;
        }
        out.push(RawFinding {
            rule: NAME,
            line,
            message: format!(
                "{how} over hash map `{name}` has layout-dependent order; \
                 sort the result, or annotate `// lint: unordered-ok(reason)`"
            ),
        });
    };
    let mut i = 0;
    while i < code.len() {
        let t = &code[i];
        // `name.iter()` / `name.retain(…)` / …
        if t.kind == TokKind::Ident
            && maps.contains(t.text)
            && i + 2 < code.len()
            && code[i + 1].is_punct('.')
            && code[i + 2].kind == TokKind::Ident
            && ITER_METHODS.contains(&code[i + 2].text)
        {
            let how = format!("`.{}()`", code[i + 2].text);
            flag(code[i + 2].line, t.text, &how, i);
        }
        // `for pat in [&[mut]] name {`
        if t.is_ident("for") {
            // Find the matching `in` at pattern depth 0 (tuples in the
            // pattern contain no `in` keyword, so a bounded scan suffices).
            let mut j = i + 1;
            let limit = (i + 24).min(code.len());
            while j < limit && !code[j].is_ident("in") {
                j += 1;
            }
            if j < limit {
                let mut k = j + 1;
                while k < code.len() && (code[k].is_punct('&') || code[k].is_ident("mut")) {
                    k += 1;
                }
                // `self.name` and `name` both iterate the binding `name`.
                if k + 2 < code.len() && code[k].is_ident("self") && code[k + 1].is_punct('.') {
                    k += 2;
                }
                if k + 1 < code.len()
                    && code[k].kind == TokKind::Ident
                    && maps.contains(code[k].text)
                    && code[k + 1].is_punct('{')
                {
                    flag(code[k].line, code[k].text, "`for` loop", i);
                }
            }
        }
        i += 1;
    }
    out
}
