//! Rule `unsafe-hygiene`: `unsafe` needs a `// SAFETY:` comment, and
//! sim-path crates must forbid it outright.
//!
//! Two checks:
//!
//! * every `unsafe` keyword (block, fn, impl) must have a comment containing
//!   `SAFETY:` on its own line or within the two lines above it (one line of
//!   slack for an interleaved attribute);
//! * the library root (`src/lib.rs`) of every sim-path crate must carry
//!   `#![forbid(unsafe_code)]`, so `unsafe` cannot even parse there.

use super::{FileCtx, RawFinding};
use crate::lexer::TokKind;
use std::collections::BTreeSet;

/// Rule name.
pub const NAME: &str = "unsafe-hygiene";

/// Runs the rule.
#[must_use]
pub fn check(ctx: &FileCtx<'_>) -> Vec<RawFinding> {
    let mut out = Vec::new();

    // Lines carrying a SAFETY comment, and lines carrying any comment at
    // all (continuation lines of a multi-line SAFETY block are transparent
    // when walking upward from an `unsafe` keyword).
    let mut safety_lines: BTreeSet<u32> = BTreeSet::new();
    let mut comment_lines: BTreeSet<u32> = BTreeSet::new();
    for t in ctx.toks {
        if t.is_comment() {
            let lines = t.text.matches('\n').count() as u32;
            for l in t.line..=t.line + lines {
                comment_lines.insert(l);
            }
            if t.text.contains("SAFETY:") {
                safety_lines.insert(t.line);
            }
        }
    }
    let documented = |line: u32| {
        // Walk upward: comment lines are transparent without limit; up to
        // two non-comment lines (an attribute, a signature continuation)
        // may sit between the comment and the `unsafe`.
        let mut slack = 2;
        let mut l = line;
        loop {
            if safety_lines.contains(&l) {
                return true;
            }
            if l == 0 {
                return false;
            }
            if !comment_lines.contains(&l) && l != line {
                if slack == 0 {
                    return false;
                }
                slack -= 1;
            }
            l -= 1;
        }
    };

    for t in ctx.code {
        if t.kind == TokKind::Ident && t.text == "unsafe" && !documented(t.line) {
            out.push(RawFinding {
                rule: NAME,
                line: t.line,
                message: "`unsafe` without a preceding `// SAFETY:` comment".to_string(),
            });
        }
    }

    if ctx.is_sim_path && ctx.is_crate_root && !has_forbid_unsafe(ctx) {
        out.push(RawFinding {
            rule: NAME,
            line: 1,
            message: format!(
                "sim-path crate `{}` must carry `#![forbid(unsafe_code)]` in its crate root",
                ctx.crate_name
            ),
        });
    }
    out
}

/// Whether the token stream contains `#![forbid(unsafe_code)]` (possibly
/// alongside other lint names in the same attribute).
fn has_forbid_unsafe(ctx: &FileCtx<'_>) -> bool {
    let code = ctx.code;
    (0..code.len()).any(|i| {
        code[i].is_ident("forbid")
            && code[i + 1..]
                .iter()
                .take(16)
                .take_while(|t| !t.is_punct(']'))
                .any(|t| t.is_ident("unsafe_code"))
    })
}
