//! Workspace discovery: which packages exist, which `.rs` files they own.
//!
//! The walk covers every member package's `src/`, `benches/` and
//! `examples/` trees plus the root facade package's `src/` and the
//! top-level `examples/`.  `tests/` directories are deliberately excluded:
//! integration tests legitimately use reference models (std `HashMap`
//! liveness mirrors, wall-clock watchdogs) and the lint crate's own test
//! fixtures contain seeded violations.

use crate::config::LintConfig;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One source file scheduled for linting.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Workspace-relative `/`-separated path (diagnostics, allowlist).
    pub rel: String,
    /// Owning package name.
    pub crate_name: String,
    /// Whether this file is the owning package's `src/lib.rs`.
    pub is_crate_root: bool,
}

/// Collects every file to lint under `root`, in deterministic (sorted) order.
///
/// # Errors
///
/// Propagates I/O failures and malformed `Cargo.toml` manifests.
pub fn collect(root: &Path, cfg: &LintConfig) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();

    // Member packages under crates/.
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    members.sort();
    for member in members {
        let name = package_name(&member.join("Cargo.toml"))?;
        for sub in ["src", "benches", "examples"] {
            collect_rs(&member.join(sub), root, &name, cfg, &mut out)?;
        }
    }

    // The root facade package.
    let root_name = package_name(&root.join("Cargo.toml"))?;
    collect_rs(&root.join("src"), root, &root_name, cfg, &mut out)?;
    collect_rs(&root.join("examples"), root, &root_name, cfg, &mut out)?;

    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

/// Recursively gathers `.rs` files under `dir` (if it exists).
fn collect_rs(
    dir: &Path,
    root: &Path,
    crate_name: &str,
    cfg: &LintConfig,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&d)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .collect();
        entries.sort();
        for p in entries {
            let rel = rel_path(root, &p);
            if cfg
                .skip_dirs
                .iter()
                .any(|s| rel == *s || rel.starts_with(&format!("{s}/")))
            {
                continue;
            }
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                let is_crate_root = rel.ends_with("src/lib.rs");
                out.push(SourceFile {
                    abs: p,
                    rel,
                    crate_name: crate_name.to_string(),
                    is_crate_root,
                });
            }
        }
    }
    Ok(())
}

/// Workspace-relative `/`-separated form of `p`.
fn rel_path(root: &Path, p: &Path) -> String {
    let rel = p.strip_prefix(root).unwrap_or(p);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// The `name = "…"` of the `[package]` section of a manifest.
///
/// A line-oriented scan is enough for this tree's manifests: `[package]` is
/// the first section and `name` its first key.
fn package_name(manifest: &Path) -> io::Result<String> {
    let text = fs::read_to_string(manifest)?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(v) = line.strip_prefix("name") {
                let v = v.trim_start();
                if let Some(v) = v.strip_prefix('=') {
                    let v = v.trim().trim_matches('"');
                    return Ok(v.to_string());
                }
            }
        }
    }
    Err(io::Error::new(
        io::ErrorKind::InvalidData,
        format!("no [package] name in {}", manifest.display()),
    ))
}
