//! Fixture: arena-id newtypes treated as raw tuples (linted as a sim-path
//! crate other than misp-types).
#![forbid(unsafe_code)]

use misp_types::{SequencerId, ShredId};

fn construct() -> SequencerId {
    SequencerId(3)
}

fn destructure(id: ShredId) -> u32 {
    let ShredId(raw) = id;
    raw
}

fn field_access(seq: SequencerId) -> u32 {
    seq.0
}

fn raw_subscript(table: &[u64], seq: SequencerId) -> u64 {
    table[seq.index() as usize]
}
