//! Fixture: the sanctioned arena-id API.
#![forbid(unsafe_code)]

use misp_types::{Arena, SequencerId};

fn construct(raw: u32) -> SequencerId {
    SequencerId::new(raw)
}

fn read(seq: SequencerId) -> u32 {
    seq.index()
}

fn subscript(table: &[u64], seq: SequencerId) -> u64 {
    table[seq.as_usize()]
}

fn arena_lookup(arena: &Arena<SequencerId, u64>, seq: SequencerId) -> u64 {
    arena[seq]
}

fn index_outside_subscript(seq: SequencerId) -> usize {
    // `.index()` is fine when not feeding a slice subscript directly.
    let idx = seq.index();
    idx as usize
}
