//! Fixture: every determinism ban, unsuppressed.  Linted as a sim-path
//! crate; never compiled.
#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::collections::HashSet;
use std::collections::hash_map::RandomState;
use std::time::Instant;
use std::time::SystemTime;

fn clocks() {
    let _t = Instant::now();
    let _w = SystemTime::now();
}

fn tables() {
    let _m: HashMap<u32, u32> = HashMap::new();
    let _s: HashSet<u32> = HashSet::new();
    let _r = RandomState::new();
}
