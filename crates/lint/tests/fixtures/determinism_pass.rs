//! Fixture: the sanctioned spellings, plus banned names that sit only in
//! strings and comments (the lexer must not see them as code).
#![forbid(unsafe_code)]

use misp_types::{FxHashMap, FxHashSet};
use std::collections::BTreeMap;

// A comment mentioning HashMap, Instant::now() and SystemTime is fine.

fn tables() {
    let _m: FxHashMap<u32, u32> = FxHashMap::default();
    let _s: FxHashSet<u32> = FxHashSet::default();
    let _b: BTreeMap<u32, u32> = BTreeMap::new();
    let _msg = "HashMap and Instant inside a string literal are opaque";
    let _raw = r#"SystemTime::now() in a raw string is opaque too"#;
}
