//! Fixture: a sim-path crate root WITHOUT `#![forbid(unsafe_code)]` — the
//! unsafe-hygiene rule must demand the attribute when this file is linted
//! as `src/lib.rs` of a sim-path crate.

pub fn safe_but_unforbidden() {}
