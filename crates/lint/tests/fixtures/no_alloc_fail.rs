//! Fixture: allocations inside a `// lint: no-alloc` fn.
#![forbid(unsafe_code)]

// lint: no-alloc
fn hot_step(n: u32) -> usize {
    let grown = Vec::with_capacity(n as usize);
    let boxed = Box::new(n);
    let owned = String::from("x");
    let text = format!("{n}");
    let list = vec![n; 3];
    let echoed = n.to_string();
    let gathered: Vec<u32> = (0..n).collect();
    grown.len() + list.len() + text.len() + owned.len() + echoed.len() + gathered.len() + *boxed as usize
}

// A marker with no fn after it is itself a finding.
// lint: no-alloc
