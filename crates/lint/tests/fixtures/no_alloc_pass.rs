//! Fixture: a marked fn that reuses preallocated storage, a waived trace
//! site, and an unmarked fn that may allocate freely.
#![forbid(unsafe_code)]

// lint: no-alloc
fn hot_step(buf: &mut Vec<u32>, scratch: &mut String, n: u32) -> usize {
    buf.push(n);
    buf.truncate(8);
    scratch.clear();
    if n == u32::MAX {
        // lint: alloc-ok(cold panic path; never taken in steady state)
        let msg = format!("impossible value {n}");
        panic!("{msg}");
    }
    buf.len()
}

fn cold_setup(n: u32) -> Vec<u32> {
    // No marker: allocation is fine here.
    let mut v = Vec::with_capacity(n as usize);
    v.push(n);
    v
}
