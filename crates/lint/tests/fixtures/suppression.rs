//! Fixture: suppression syntax in both positions, plus lookalikes that must
//! NOT suppress.
#![forbid(unsafe_code)]

use std::collections::HashMap; // lint: determinism-ok(fixture: same-line suppression)

// lint: determinism-ok(fixture: line-above suppression)
use std::collections::HashSet;

// lint: determinism-ok(fixture: suppression does not reach two lines down)

use std::time::Instant;

// lint: unordered-ok(wrong class: does not suppress a determinism finding)
use std::time::SystemTime;

fn touch() {
    let _m: HashMap<u32, u32> = HashMap::new(); // lint: determinism-ok(fixture)
    let _s: HashSet<u32> = HashSet::new(); // lint: determinism-ok(fixture)
    let _t = Instant::now(); // lint: determinism-ok(fixture)
    let _w = SystemTime::now(); // lint: determinism-ok(fixture)
}
