//! Fixture: unordered hash-map iteration, unsuppressed and unsorted.
#![forbid(unsafe_code)]

use misp_types::FxHashMap;

struct Tables {
    by_page: FxHashMap<u64, u32>,
}

impl Tables {
    fn digest_feed(&self) -> u64 {
        let mut acc = 0;
        for (k, v) in &self.by_page {
            acc = acc * 31 + k + u64::from(*v);
        }
        acc
    }

    fn methods(&mut self) {
        let _ = self.by_page.iter().next();
        let _ = self.by_page.keys().next();
        let _ = self.by_page.values().next();
        self.by_page.retain(|_, v| *v != 0);
    }
}

fn local() {
    let table = FxHashMap::<u64, u32>::default();
    for entry in &table {
        let _ = entry;
    }
}
