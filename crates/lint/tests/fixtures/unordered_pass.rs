//! Fixture: hash-map iteration that is annotated, sorted, or ordered.
#![forbid(unsafe_code)]

use misp_types::FxHashMap;
use std::collections::BTreeMap;

struct Tables {
    by_page: FxHashMap<u64, u32>,
    ordered: BTreeMap<u64, u32>,
}

impl Tables {
    fn annotated(&self) -> usize {
        // lint: unordered-ok(commutative count; order cannot be observed)
        self.by_page.values().filter(|v| **v != 0).count()
    }

    fn trailing(&mut self) {
        self.by_page.retain(|_, v| *v != 0); // lint: unordered-ok(pure filter)
    }

    fn sorted(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.by_page.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    fn btree_is_ordered(&self) -> u64 {
        let mut acc = 0;
        for (k, _) in &self.ordered {
            acc += k;
        }
        acc
    }
}
