//! Fixture: undocumented `unsafe` (linted as a non-sim crate so the blocks
//! are legal but must carry SAFETY comments).

fn undocumented_block() -> u8 {
    let bytes = [1u8, 2];
    unsafe { *bytes.as_ptr() }
}

unsafe fn undocumented_fn() {}

struct Wrapper(u8);

unsafe impl Send for Wrapper {}
