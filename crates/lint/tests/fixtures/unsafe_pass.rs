//! Fixture: documented `unsafe`, including a multi-line SAFETY comment and
//! an attribute between comment and keyword.

fn documented_block() -> u8 {
    let bytes = [1u8, 2];
    // SAFETY: the array is non-empty, so the pointer is valid for one read.
    unsafe { *bytes.as_ptr() }
}

// SAFETY: no invariants — the function body is empty and callers need
// uphold nothing; the `unsafe` exists to exercise the multi-line case.
unsafe fn documented_fn() {}

struct Wrapper(u8);

// SAFETY: `Wrapper` holds a plain `u8`, which is `Send`.
#[allow(dead_code)]
unsafe impl Send for Wrapper {}
