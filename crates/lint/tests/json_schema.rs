//! JSON-output schema test: `--format json` output parses and carries the
//! documented fields (schema version 1).

use misp_lint::config::Severity;
use misp_lint::{report, Finding, LintReport};
use serde_json::Value;

fn sample_report() -> LintReport {
    LintReport {
        root: "/tmp/ws".to_string(),
        files_scanned: 3,
        findings: vec![
            Finding {
                rule: "determinism",
                severity: Severity::Error,
                file: "crates/sim/src/stats.rs".to_string(),
                line: 8,
                message: "`HashMap` is banned here: \"quoted\"\u{1}".to_string(),
            },
            Finding {
                rule: "no-alloc",
                severity: Severity::Warn,
                file: "crates/sim/src/machine.rs".to_string(),
                line: 600,
                message: "`format!` allocates".to_string(),
            },
        ],
        allowlisted: vec![(
            Finding {
                rule: "determinism",
                severity: Severity::Error,
                file: "crates/harness/src/bin/sweep.rs".to_string(),
                line: 335,
                message: "`Instant` is banned here".to_string(),
            },
            "phase timers".to_string(),
        )],
    }
}

#[test]
fn json_report_matches_schema() {
    let rep = sample_report();
    let text = report::render_json(&rep);
    let v: Value = serde_json::from_str(&text).expect("render_json emits valid JSON");

    assert_eq!(v.get("schema_version").unwrap().as_u64().unwrap(), 1);
    assert_eq!(v.get("root").unwrap(), &Value::String("/tmp/ws".into()));
    assert_eq!(v.get("files_scanned").unwrap().as_u64().unwrap(), 3);
    assert_eq!(v.get("errors").unwrap().as_u64().unwrap(), 1);
    assert_eq!(v.get("warnings").unwrap().as_u64().unwrap(), 1);

    let Some(Value::Array(findings)) = v.get("findings") else {
        panic!("findings must be an array: {v:?}");
    };
    assert_eq!(findings.len(), 2);
    let f = &findings[0];
    assert_eq!(f.get("rule").unwrap(), &Value::String("determinism".into()));
    assert_eq!(f.get("severity").unwrap(), &Value::String("error".into()));
    assert_eq!(
        f.get("file").unwrap(),
        &Value::String("crates/sim/src/stats.rs".into())
    );
    assert_eq!(f.get("line").unwrap().as_u64().unwrap(), 8);
    // The escaped quote and control byte round-trip through the parser.
    assert_eq!(
        f.get("message").unwrap(),
        &Value::String("`HashMap` is banned here: \"quoted\"\u{1}".into())
    );
    assert_eq!(
        findings[1].get("severity").unwrap(),
        &Value::String("warn".into())
    );

    let Some(Value::Array(allowed)) = v.get("allowlisted") else {
        panic!("allowlisted must be an array: {v:?}");
    };
    assert_eq!(allowed.len(), 1);
    assert_eq!(
        allowed[0].get("reason").unwrap(),
        &Value::String("phase timers".into())
    );
    // Regular findings carry no reason field.
    assert!(findings[0].get("reason").is_none());
}

#[test]
fn empty_report_is_valid_json() {
    let rep = LintReport {
        root: String::new(),
        files_scanned: 0,
        findings: Vec::new(),
        allowlisted: Vec::new(),
    };
    let text = report::render_json(&rep);
    let v: Value = serde_json::from_str(&text).expect("valid JSON");
    let Some(Value::Array(findings)) = v.get("findings") else {
        panic!("findings must be an array");
    };
    assert!(findings.is_empty());
    assert_eq!(v.get("errors").unwrap().as_u64().unwrap(), 0);
}
