//! Fixture-driven rule tests: one passing and one failing fixture per rule,
//! plus the suppression-syntax contract.
//!
//! Fixtures live under `tests/fixtures/` (a subdirectory, so cargo never
//! compiles them) and are linted through the library entry point exactly as
//! the binary would.

use misp_lint::config::LintConfig;
use misp_lint::{lint_source, Finding};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// Lints a fixture as if it were a file of `crate_name`.
fn lint_as(name: &str, crate_name: &str, is_crate_root: bool) -> Vec<Finding> {
    let cfg = LintConfig::default();
    lint_source(
        &format!("crates/fixture/src/{name}"),
        crate_name,
        is_crate_root,
        &fixture(name),
        &cfg,
    )
}

fn rules_fired(findings: &[Finding]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = findings.iter().map(|f| f.rule).collect();
    rules.dedup();
    rules
}

#[test]
fn determinism_fail_fixture_fires() {
    let findings = lint_as("determinism_fail.rs", "misp-sim", false);
    assert!(
        findings.iter().all(|f| f.rule == "determinism"),
        "{findings:?}"
    );
    // 2 imports × type + RandomState import + 2 time imports + 2 clock
    // calls + 3 constructor uses: at least one finding per banned name.
    for name in ["HashMap", "HashSet", "RandomState", "Instant", "SystemTime"] {
        assert!(
            findings.iter().any(|f| f.message.contains(name)),
            "no finding mentions {name}: {findings:?}"
        );
    }
}

#[test]
fn determinism_pass_fixture_is_clean() {
    let findings = lint_as("determinism_pass.rs", "misp-sim", false);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn determinism_type_bans_do_not_apply_off_sim_path() {
    // The same failing fixture linted as harness code: the container bans
    // are sim-path-scoped, the clock bans are not.
    let findings = lint_as("determinism_fail.rs", "misp-harness", false);
    assert!(
        !findings.iter().any(|f| f.message.contains("HashMap")),
        "{findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.message.contains("Instant")),
        "{findings:?}"
    );
}

#[test]
fn unordered_fail_fixture_fires() {
    let findings = lint_as("unordered_fail.rs", "misp-sim", false);
    assert_eq!(
        rules_fired(&findings),
        ["unordered-iteration"],
        "{findings:?}"
    );
    // Two `for` loops (field via self, local) + four method sites.
    assert_eq!(findings.len(), 6, "{findings:?}");
}

#[test]
fn unordered_pass_fixture_is_clean() {
    let findings = lint_as("unordered_pass.rs", "misp-sim", false);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn unordered_rule_is_sim_path_scoped() {
    let findings = lint_as("unordered_fail.rs", "misp-harness", false);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn no_alloc_fail_fixture_fires() {
    let findings = lint_as("no_alloc_fail.rs", "misp-sim", false);
    assert_eq!(rules_fired(&findings), ["no-alloc"], "{findings:?}");
    for what in [
        "Vec::with_capacity",
        "Box::new",
        "String::from",
        "format!",
        "vec!",
        ".to_string()",
        ".collect()",
    ] {
        assert!(
            findings.iter().any(|f| f.message.contains(what)),
            "no finding mentions {what}: {findings:?}"
        );
    }
    // The trailing fn-less marker is itself diagnosed.
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("not followed by a `fn`")),
        "{findings:?}"
    );
}

#[test]
fn no_alloc_pass_fixture_is_clean() {
    let findings = lint_as("no_alloc_pass.rs", "misp-sim", false);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn arena_fail_fixture_fires() {
    let findings = lint_as("arena_fail.rs", "misp-sim", false);
    assert_eq!(rules_fired(&findings), ["arena-discipline"], "{findings:?}");
    // Raw construction, destructuring, `.0`, and `.index()` in a subscript.
    assert_eq!(findings.len(), 4, "{findings:?}");
}

#[test]
fn arena_pass_fixture_is_clean() {
    let findings = lint_as("arena_pass.rs", "misp-sim", false);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn arena_rule_exempts_the_types_crate() {
    let findings = lint_as("arena_fail.rs", "misp-types", false);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn unsafe_fail_fixture_fires() {
    let findings = lint_as("unsafe_fail.rs", "misp-harness", false);
    assert_eq!(rules_fired(&findings), ["unsafe-hygiene"], "{findings:?}");
    // Block, fn and impl: three undocumented `unsafe` keywords.
    assert_eq!(findings.len(), 3, "{findings:?}");
}

#[test]
fn unsafe_pass_fixture_is_clean() {
    let findings = lint_as("unsafe_pass.rs", "misp-harness", false);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn sim_path_crate_root_requires_forbid() {
    let findings = lint_as("forbid_missing.rs", "misp-sim", true);
    assert_eq!(rules_fired(&findings), ["unsafe-hygiene"], "{findings:?}");
    assert!(
        findings[0].message.contains("forbid(unsafe_code)"),
        "{findings:?}"
    );
    // The same file off the crate root, or off the sim path, is fine.
    assert!(lint_as("forbid_missing.rs", "misp-sim", false).is_empty());
    assert!(lint_as("forbid_missing.rs", "misp-harness", true).is_empty());
}

#[test]
fn suppression_positions_and_classes() {
    let findings = lint_as("suppression.rs", "misp-sim", false);
    // Same-line and line-above suppressions hold; a suppression two lines
    // up does not, and a wrong-class suppression does not.
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings[0].message.contains("Instant"), "{findings:?}");
    assert!(findings[1].message.contains("SystemTime"), "{findings:?}");
}

#[test]
fn severity_off_disables_a_rule() {
    let toml = "[rules.determinism]\nseverity = \"off\"\n";
    let cfg = LintConfig::parse(toml).expect("parses");
    let findings = lint_source(
        "crates/fixture/src/determinism_fail.rs",
        "misp-sim",
        false,
        &fixture("determinism_fail.rs"),
        &cfg,
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn severity_warn_does_not_fail_the_report() {
    let toml = "[rules.determinism]\nseverity = \"warn\"\n";
    let cfg = LintConfig::parse(toml).expect("parses");
    let findings = lint_source(
        "crates/fixture/src/determinism_fail.rs",
        "misp-sim",
        false,
        &fixture("determinism_fail.rs"),
        &cfg,
    );
    assert!(!findings.is_empty());
    assert!(
        findings
            .iter()
            .all(|f| f.severity == misp_lint::config::Severity::Warn),
        "{findings:?}"
    );
}
