//! Integration tests against the live workspace and the CI gate semantics.
//!
//! * The committed tree must lint clean under the committed `lint.toml`,
//!   with nothing allowlisted beyond the documented harness/bench timing
//!   exemptions.
//! * A seeded violation must make the binary exit non-zero with the finding
//!   in its JSON report — the property the blocking CI job relies on.

use misp_lint::config::LintConfig;
use misp_lint::lint_workspace;
use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

fn committed_config(root: &Path) -> LintConfig {
    let text = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml is committed");
    LintConfig::parse(&text).expect("committed lint.toml parses")
}

#[test]
fn live_workspace_lints_clean() {
    let root = workspace_root();
    let cfg = committed_config(&root);
    let rep = lint_workspace(&root, &cfg).expect("walk succeeds");
    assert!(
        rep.files_scanned > 100,
        "walk found {} files",
        rep.files_scanned
    );
    assert!(
        rep.findings.is_empty(),
        "live workspace has unsuppressed findings:\n{}",
        misp_lint::report::render_text(&rep)
    );
}

#[test]
fn allowlist_is_limited_to_documented_timing_exemptions() {
    let root = workspace_root();
    let cfg = committed_config(&root);
    // Policy: only the harness/bench wall-clock timers may be allowlisted.
    let documented = [
        "crates/harness/src/bin/sweep.rs",
        "crates/bench/benches/engine.rs",
    ];
    for entry in &cfg.allow {
        assert_eq!(
            entry.rule, "determinism",
            "allowlist entry for unexpected rule: {entry:?}"
        );
        assert!(
            documented.contains(&entry.path.as_str()),
            "allowlist entry outside the documented timing exemptions: {entry:?}"
        );
        assert!(
            !entry.reason.is_empty(),
            "allowlist entry without a reason: {entry:?}"
        );
    }
    // And everything allowlisted in the live tree is an `Instant` timer.
    let rep = lint_workspace(&root, &cfg).expect("walk succeeds");
    for (f, _) in &rep.allowlisted {
        assert!(
            f.message.contains("Instant"),
            "allowlisted finding is not a wall-clock timer: {f:?}"
        );
    }
}

/// Builds a minimal throwaway workspace with one seeded violation.
fn seed_violation(dir: &Path) {
    let crate_dir = dir.join("crates/seeded/src");
    std::fs::create_dir_all(&crate_dir).expect("mkdir");
    std::fs::write(
        dir.join("Cargo.toml"),
        "[package]\nname = \"seeded-root\"\n",
    )
    .expect("write root manifest");
    std::fs::write(
        dir.join("crates/seeded/Cargo.toml"),
        "[package]\nname = \"misp-sim\"\n",
    )
    .expect("write crate manifest");
    std::fs::write(
        crate_dir.join("lib.rs"),
        "#![forbid(unsafe_code)]\nuse std::collections::HashMap;\n",
    )
    .expect("write seeded source");
    // An empty lint.toml pins the root for --root discovery and leaves the
    // default (all-error) policy in force.
    std::fs::write(dir.join("lint.toml"), "# defaults\n").expect("write lint.toml");
}

#[test]
fn seeded_violation_fails_the_binary_with_json_evidence() {
    let dir = std::env::temp_dir().join(format!("misp-lint-seeded-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    seed_violation(&dir);

    let output = Command::new(env!("CARGO_BIN_EXE_misp-lint"))
        .args(["--workspace", "--format", "json", "--root"])
        .arg(&dir)
        .output()
        .expect("binary runs");
    assert_eq!(
        output.status.code(),
        Some(1),
        "seeded violation must exit 1\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    let v: serde_json::Value =
        serde_json::from_str(&String::from_utf8_lossy(&output.stdout)).expect("JSON report");
    assert!(v.get("errors").unwrap().as_u64().unwrap() >= 1);

    let clean = dir.join("crates/seeded/src/lib.rs");
    std::fs::write(&clean, "#![forbid(unsafe_code)]\n").expect("rewrite clean");
    let output = Command::new(env!("CARGO_BIN_EXE_misp-lint"))
        .args(["--workspace", "--format", "json", "--root"])
        .arg(&dir)
        .output()
        .expect("binary runs");
    assert_eq!(
        output.status.code(),
        Some(0),
        "clean tree must exit 0\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn usage_errors_exit_2() {
    let output = Command::new(env!("CARGO_BIN_EXE_misp-lint"))
        .arg("--no-such-flag")
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(2));
}
