//! Per-process address spaces and page residency.

use misp_types::{FxHashMap, PageId};
use serde::{Deserialize, Serialize};

/// Residency state of a virtual page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageState {
    /// The page has never been touched; the next access raises a compulsory
    /// page fault.
    Untouched,
    /// The page is resident in physical memory; accesses proceed without OS
    /// involvement (aside from possible TLB misses).
    Resident,
}

/// A process's virtual address space: the page table plus residency metadata.
///
/// The model is intentionally simple — the paper's evaluation only depends on
/// *when* a page fault occurs (first touch) and *which sequencer* touches the
/// page first, because that determines whether the fault is handled locally on
/// the OMS or via proxy execution from an AMS.
///
/// # Examples
///
/// ```
/// use misp_mem::AddressSpace;
/// use misp_types::{PageId, VirtAddr};
///
/// let mut space = AddressSpace::new();
/// assert!(!space.is_resident(PageId::new(4)));
/// let faulted = space.touch(VirtAddr::new(4 * 4096).page());
/// assert!(faulted, "first touch is a compulsory fault");
/// assert!(!space.touch(PageId::new(4)), "second touch hits");
/// assert_eq!(space.resident_pages(), 1);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressSpace {
    /// Page residency, keyed by page number.  Uses the deterministic Fx
    /// hasher: `touch` sits on the engine's per-access hot path.
    pages: FxHashMap<PageId, PageState>,
    compulsory_faults: u64,
}

impl AddressSpace {
    /// Creates an empty address space with no resident pages.
    #[must_use]
    pub fn new() -> Self {
        AddressSpace::default()
    }

    /// Returns `true` if `page` is resident.
    #[must_use]
    pub fn is_resident(&self, page: PageId) -> bool {
        matches!(self.pages.get(&page), Some(PageState::Resident))
    }

    /// Touches `page`: returns `true` if the touch raised a compulsory page
    /// fault (i.e. the page was not yet resident), after which the page is
    /// resident.
    pub fn touch(&mut self, page: PageId) -> bool {
        let entry = self.pages.entry(page).or_insert(PageState::Untouched);
        if *entry == PageState::Resident {
            false
        } else {
            *entry = PageState::Resident;
            self.compulsory_faults += 1;
            true
        }
    }

    /// Pre-faults `page` without counting it as a compulsory fault *event*
    /// observed during parallel execution.  This models the OMS probing each
    /// page in the serial region before starting shreds (the optimization
    /// suggested in Section 5.3); the fault still happens, but on the OMS
    /// during serial execution where it does not serialize any AMS.
    pub fn pretouch(&mut self, page: PageId) {
        self.pages.insert(page, PageState::Resident);
    }

    /// Evicts `page` from physical memory (used by failure-injection tests and
    /// by workloads that model working sets larger than memory).
    pub fn evict(&mut self, page: PageId) {
        self.pages.remove(&page);
    }

    /// Number of currently resident pages.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages
            .values()
            .filter(|s| **s == PageState::Resident)
            .count()
    }

    /// Total number of compulsory faults taken by this address space since
    /// creation (pre-touched pages excluded).
    #[must_use]
    pub fn compulsory_faults(&self) -> u64 {
        self.compulsory_faults
    }

    /// Iterates over the resident pages in arbitrary order.
    pub fn iter_resident(&self) -> impl Iterator<Item = PageId> + '_ {
        self.pages
            .iter()
            .filter(|(_, s)| **s == PageState::Resident)
            .map(|(p, _)| *p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_faults_second_does_not() {
        let mut s = AddressSpace::new();
        let p = PageId::new(10);
        assert!(s.touch(p));
        assert!(!s.touch(p));
        assert_eq!(s.compulsory_faults(), 1);
        assert!(s.is_resident(p));
    }

    #[test]
    fn pretouch_makes_resident_without_fault_count() {
        let mut s = AddressSpace::new();
        let p = PageId::new(3);
        s.pretouch(p);
        assert!(s.is_resident(p));
        assert!(!s.touch(p));
        assert_eq!(s.compulsory_faults(), 0);
    }

    #[test]
    fn evict_forces_refault() {
        let mut s = AddressSpace::new();
        let p = PageId::new(7);
        assert!(s.touch(p));
        s.evict(p);
        assert!(!s.is_resident(p));
        assert!(s.touch(p));
        assert_eq!(s.compulsory_faults(), 2);
    }

    #[test]
    fn resident_page_accounting() {
        let mut s = AddressSpace::new();
        for i in 0..5 {
            s.touch(PageId::new(i));
        }
        assert_eq!(s.resident_pages(), 5);
        let mut pages: Vec<u64> = s.iter_resident().map(|p| p.number()).collect();
        pages.sort_unstable();
        assert_eq!(pages, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn distinct_pages_fault_independently() {
        let mut s = AddressSpace::new();
        assert!(s.touch(PageId::new(1)));
        assert!(s.touch(PageId::new(2)));
        assert_eq!(s.compulsory_faults(), 2);
    }
}
