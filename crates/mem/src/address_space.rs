//! Per-process address spaces and page residency.

use misp_types::{FxHashMap, PageId};
use serde::{Deserialize, Serialize};

/// Residency state of a virtual page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageState {
    /// The page has never been touched; the next access raises a compulsory
    /// page fault.
    Untouched,
    /// The page is resident in physical memory; accesses proceed without OS
    /// involvement (aside from possible TLB misses).
    Resident,
}

/// Page numbers below this bound live in the dense residency bitmap; higher
/// pages fall back to the sparse map.  64 Ki pages cover 256 MiB of virtual
/// address space at 4 KiB pages — far beyond every modeled working set — at a
/// worst-case bitmap cost of 8 KiB per process.
const DENSE_PAGES: u64 = 1 << 16;

/// A process's virtual address space: the page table plus residency metadata.
///
/// The model is intentionally simple — the paper's evaluation only depends on
/// *when* a page fault occurs (first touch) and *which sequencer* touches the
/// page first, because that determines whether the fault is handled locally on
/// the OMS or via proxy execution from an AMS.
///
/// `touch` sits on the engine's per-access hot path, so residency for page
/// numbers below `DENSE_PAGES` (2¹⁶) is a bitmap (grown on demand) and the lookup
/// is a shift and a mask; only pages above the bound — which no modeled
/// workload produces — pay for a hash probe in the sparse fallback map.
///
/// # Examples
///
/// ```
/// use misp_mem::AddressSpace;
/// use misp_types::{PageId, VirtAddr};
///
/// let mut space = AddressSpace::new();
/// assert!(!space.is_resident(PageId::new(4)));
/// let faulted = space.touch(VirtAddr::new(4 * 4096).page());
/// assert!(faulted, "first touch is a compulsory fault");
/// assert!(!space.touch(PageId::new(4)), "second touch hits");
/// assert_eq!(space.resident_pages(), 1);
/// ```
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct AddressSpace {
    /// Residency bitmap for pages below [`DENSE_PAGES`], one bit per page,
    /// grown a word at a time as higher pages are touched.
    dense: Vec<u64>,
    /// Residency for pages at or above [`DENSE_PAGES`] (never hit by the
    /// modeled workloads; kept for correctness on arbitrary addresses).
    sparse: FxHashMap<PageId, PageState>,
    compulsory_faults: u64,
}

impl PartialEq for AddressSpace {
    fn eq(&self, other: &Self) -> bool {
        // Trailing zero words in the bitmap are representational only (an
        // evicted page leaves its word behind), so compare the meaningful
        // prefix rather than the raw vectors.
        let common = self.dense.len().min(other.dense.len());
        self.compulsory_faults == other.compulsory_faults
            && self.dense[..common] == other.dense[..common]
            && self.dense[common..].iter().all(|w| *w == 0)
            && other.dense[common..].iter().all(|w| *w == 0)
            && self.sparse == other.sparse
    }
}

impl Eq for AddressSpace {}

impl AddressSpace {
    /// Creates an empty address space with no resident pages.
    #[must_use]
    pub fn new() -> Self {
        AddressSpace::default()
    }

    /// Returns `true` if `page` is resident.
    #[must_use]
    pub fn is_resident(&self, page: PageId) -> bool {
        let n = page.number();
        if n < DENSE_PAGES {
            let (word, bit) = (n / 64, n % 64);
            self.dense
                .get(word as usize)
                .is_some_and(|w| w & (1 << bit) != 0)
        } else {
            matches!(self.sparse.get(&page), Some(PageState::Resident))
        }
    }

    /// Sets the residency bit of a dense page, growing the bitmap to cover
    /// its word.  Returns `true` if the page was already resident.
    fn dense_set(&mut self, n: u64) -> bool {
        let (word, bit) = ((n / 64) as usize, n % 64);
        if word >= self.dense.len() {
            self.dense.resize(word + 1, 0);
        }
        let w = &mut self.dense[word];
        let was = *w & (1 << bit) != 0;
        *w |= 1 << bit;
        was
    }

    /// Touches `page`: returns `true` if the touch raised a compulsory page
    /// fault (i.e. the page was not yet resident), after which the page is
    /// resident.
    pub fn touch(&mut self, page: PageId) -> bool {
        let n = page.number();
        let was_resident = if n < DENSE_PAGES {
            self.dense_set(n)
        } else {
            self.sparse.insert(page, PageState::Resident) == Some(PageState::Resident)
        };
        if !was_resident {
            self.compulsory_faults += 1;
        }
        !was_resident
    }

    /// Pre-faults `page` without counting it as a compulsory fault *event*
    /// observed during parallel execution.  This models the OMS probing each
    /// page in the serial region before starting shreds (the optimization
    /// suggested in Section 5.3); the fault still happens, but on the OMS
    /// during serial execution where it does not serialize any AMS.
    pub fn pretouch(&mut self, page: PageId) {
        let n = page.number();
        if n < DENSE_PAGES {
            self.dense_set(n);
        } else {
            self.sparse.insert(page, PageState::Resident);
        }
    }

    /// Evicts `page` from physical memory (used by failure-injection tests and
    /// by workloads that model working sets larger than memory).
    pub fn evict(&mut self, page: PageId) {
        let n = page.number();
        if n < DENSE_PAGES {
            let (word, bit) = ((n / 64) as usize, n % 64);
            if let Some(w) = self.dense.get_mut(word) {
                *w &= !(1 << bit);
            }
        } else {
            self.sparse.remove(&page);
        }
    }

    /// Number of currently resident pages.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        let dense: u32 = self.dense.iter().map(|w| w.count_ones()).sum();
        dense as usize
            + self
                .sparse
                // lint: unordered-ok(commutative count; order cannot be observed)
                .values()
                .filter(|s| **s == PageState::Resident)
                .count()
    }

    /// Total number of compulsory faults taken by this address space since
    /// creation (pre-touched pages excluded).
    #[must_use]
    pub fn compulsory_faults(&self) -> u64 {
        self.compulsory_faults
    }

    /// Iterates over the resident pages in arbitrary order.
    pub fn iter_resident(&self) -> impl Iterator<Item = PageId> + '_ {
        self.dense
            .iter()
            .enumerate()
            .flat_map(|(word, &w)| {
                (0..64)
                    .filter(move |bit| w & (1 << bit) != 0)
                    .map(move |bit| PageId::new(word as u64 * 64 + bit))
            })
            .chain(
                self.sparse
                    // lint: unordered-ok(documented arbitrary-order iterator; callers sort or count)
                    .iter()
                    .filter(|(_, s)| **s == PageState::Resident)
                    .map(|(p, _)| *p),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_faults_second_does_not() {
        let mut s = AddressSpace::new();
        let p = PageId::new(10);
        assert!(s.touch(p));
        assert!(!s.touch(p));
        assert_eq!(s.compulsory_faults(), 1);
        assert!(s.is_resident(p));
    }

    #[test]
    fn pretouch_makes_resident_without_fault_count() {
        let mut s = AddressSpace::new();
        let p = PageId::new(3);
        s.pretouch(p);
        assert!(s.is_resident(p));
        assert!(!s.touch(p));
        assert_eq!(s.compulsory_faults(), 0);
    }

    #[test]
    fn evict_forces_refault() {
        let mut s = AddressSpace::new();
        let p = PageId::new(7);
        assert!(s.touch(p));
        s.evict(p);
        assert!(!s.is_resident(p));
        assert!(s.touch(p));
        assert_eq!(s.compulsory_faults(), 2);
    }

    #[test]
    fn resident_page_accounting() {
        let mut s = AddressSpace::new();
        for i in 0..5 {
            s.touch(PageId::new(i));
        }
        assert_eq!(s.resident_pages(), 5);
        let mut pages: Vec<u64> = s.iter_resident().map(|p| p.number()).collect();
        pages.sort_unstable();
        assert_eq!(pages, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn distinct_pages_fault_independently() {
        let mut s = AddressSpace::new();
        assert!(s.touch(PageId::new(1)));
        assert!(s.touch(PageId::new(2)));
        assert_eq!(s.compulsory_faults(), 2);
    }

    #[test]
    fn pages_beyond_the_dense_bound_use_the_sparse_fallback() {
        let mut s = AddressSpace::new();
        let far = PageId::new(DENSE_PAGES + 123);
        assert!(!s.is_resident(far));
        assert!(s.touch(far));
        assert!(!s.touch(far));
        assert!(s.is_resident(far));
        assert_eq!(s.compulsory_faults(), 1);
        assert_eq!(s.resident_pages(), 1);
        assert_eq!(s.iter_resident().collect::<Vec<_>>(), vec![far]);
        s.evict(far);
        assert!(!s.is_resident(far));
        assert_eq!(s.resident_pages(), 0);
    }

    #[test]
    fn equality_ignores_bitmap_growth_history() {
        let mut a = AddressSpace::new();
        let mut b = AddressSpace::new();
        // `a` grows its bitmap out to page 600 and then evicts it; `b` never
        // touches that word.  Logically identical spaces must compare equal.
        assert!(a.touch(PageId::new(600)));
        a.evict(PageId::new(600));
        assert!(a.touch(PageId::new(1)));
        assert!(b.touch(PageId::new(1)));
        b.compulsory_faults = a.compulsory_faults;
        assert_eq!(a, b);
        assert!(b.touch(PageId::new(2)));
        assert_ne!(a, b);
    }
}
