//! Virtual-memory substrate for the MISP simulator.
//!
//! Section 2.3 of the MISP paper requires all sequencers of a MISP processor
//! to share one virtual address space, synchronized on the Ring 0 control
//! registers (CR3) whenever the OS-managed sequencer leaves Ring 0.  Table 1
//! of the evaluation shows that compulsory page faults dominate the
//! serializing events, and Section 5.3 points out that most of them could be
//! eliminated by pre-touching pages.
//!
//! This crate provides everything the simulator needs to reproduce that
//! behaviour:
//!
//! * [`AddressSpace`] — a per-process page table tracking which pages are
//!   resident; the first touch of a page is a *compulsory* page fault.
//! * [`Tlb`] — a per-sequencer translation look-aside buffer with LRU
//!   replacement, flushed on CR3 writes, with misses serviced by the hardware
//!   page walker (no OS involvement, exactly as the paper describes).
//! * [`MemorySystem`] — the per-machine aggregation of address spaces and
//!   per-sequencer TLBs, including CR3 tracking and TLB-shootdown bookkeeping.
//! * [`WorkingSet`] / [`AccessPattern`] — helpers used by workload generators
//!   to lay out realistic page footprints.
//!
//! # Memory hierarchy
//!
//! By default every access is charged the engine's flat access cost — the
//! paper's memory model.  A [`MemorySystem`] can additionally carry the
//! coherent cache hierarchy from the `misp-cache` crate (per-sequencer L1s,
//! per-processor shared L2s, MESI-lite coherence): platforms install it with
//! [`MemorySystem::configure_caches`] during engine initialization, passing
//! the cluster map that says which sequencers share an L2.  Once installed,
//! [`MemorySystem::access`] reports a
//! [`misp_cache::CacheOutcome`] in [`MemoryOutcome::cache`] and the engine
//! charges the corresponding per-level latency.  The cache model is
//! **disabled by default** (`misp_cache::CacheConfig::disabled()`), which
//! keeps every committed golden result byte-identical; see the `misp-cache`
//! crate docs for the hierarchy's parameters and the README for how goldens
//! are regenerated after an intentional schema change.
//!
//! # Examples
//!
//! ```
//! use misp_mem::{MemorySystem, MemoryOutcome};
//! use misp_types::{ProcessId, SequencerId, VirtAddr};
//!
//! let mut mem = MemorySystem::new(4, 64);
//! let pid = ProcessId::new(0);
//! mem.register_process(pid);
//! let seq = SequencerId::new(1);
//! mem.bind_sequencer(seq, pid);
//!
//! // First touch of a page: compulsory page fault.
//! let outcome = mem.access(seq, VirtAddr::new(0x10_0000), false);
//! assert!(outcome.page_fault);
//! assert!(outcome.cache.is_none(), "cache model is disabled by default");
//! // Second touch: the page is resident and now cached in the TLB.
//! let outcome = mem.access(seq, VirtAddr::new(0x10_0008), false);
//! assert!(!outcome.page_fault);
//! assert!(outcome.tlb_hit);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod address_space;
mod pattern;
mod system;
mod tlb;
mod working_set;

pub use address_space::{AddressSpace, PageState};
pub use pattern::AccessPattern;
pub use system::{MemoryOutcome, MemorySystem};
pub use tlb::{Tlb, TlbStats};
pub use working_set::WorkingSet;
