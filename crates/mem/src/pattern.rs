//! Memory access patterns for workload generation.

use crate::WorkingSet;
use misp_types::VirtAddr;
use serde::{Deserialize, Serialize};

/// How a shred walks a working set.
///
/// The patterns mirror the memory behaviour of the paper's benchmark classes:
/// dense kernels stream sequentially, sparse kernels make strided/indirect
/// accesses, and RayTracer-style applications touch pages irregularly.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Visit every page in ascending order (dense matrix kernels, swim,
    /// applu).
    #[default]
    Sequential,
    /// Visit every `stride`-th page, wrapping around until all pages are
    /// visited (transposed/symmetric sparse kernels).
    Strided {
        /// Page stride between consecutive accesses.
        stride: u64,
    },
    /// Visit pages in a deterministic pseudo-random permutation derived from
    /// `seed` (sparse matrix-vector products, RayTracer's scene traversal).
    Shuffled {
        /// Seed of the permutation.
        seed: u64,
    },
}

impl AccessPattern {
    /// Generates the sequence of page-granular addresses this pattern visits
    /// within `set`, touching every page of the set exactly once.
    #[must_use]
    pub fn addresses(&self, set: &WorkingSet) -> Vec<VirtAddr> {
        let n = set.pages();
        match self {
            AccessPattern::Sequential => (0..n).map(|i| set.page_addr(i)).collect(),
            AccessPattern::Strided { stride } => {
                let stride = (*stride).max(1) % n.max(1);
                let stride = if stride == 0 { 1 } else { stride };
                let mut visited = vec![false; n as usize];
                let mut out = Vec::with_capacity(n as usize);
                let mut start = 0;
                while out.len() < n as usize {
                    let mut i = start;
                    loop {
                        if !visited[i as usize] {
                            visited[i as usize] = true;
                            out.push(set.page_addr(i));
                        }
                        i = (i + stride) % n;
                        if i == start {
                            break;
                        }
                    }
                    start += 1;
                }
                out
            }
            AccessPattern::Shuffled { seed } => {
                // Fisher-Yates with a splitmix64 PRNG so the permutation is
                // deterministic for a given seed without pulling in `rand`.
                let mut indices: Vec<u64> = (0..n).collect();
                let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut next = || {
                    state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    z ^ (z >> 31)
                };
                for i in (1..n as usize).rev() {
                    let j = (next() % (i as u64 + 1)) as usize;
                    indices.swap(i, j);
                }
                indices.into_iter().map(|i| set.page_addr(i)).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use misp_types::PAGE_SIZE;
    use std::collections::BTreeSet;

    fn set(pages: u64) -> WorkingSet {
        WorkingSet::new("w", VirtAddr::new(0), pages)
    }

    fn page_numbers(addrs: &[VirtAddr]) -> Vec<u64> {
        addrs.iter().map(|a| a.page().number()).collect()
    }

    #[test]
    fn sequential_visits_in_order() {
        let addrs = AccessPattern::Sequential.addresses(&set(5));
        assert_eq!(page_numbers(&addrs), vec![0, 1, 2, 3, 4]);
        assert_eq!(addrs[1], VirtAddr::new(PAGE_SIZE));
    }

    #[test]
    fn strided_covers_all_pages_exactly_once() {
        for stride in [1, 2, 3, 4, 7] {
            let addrs = AccessPattern::Strided { stride }.addresses(&set(12));
            let pages: BTreeSet<u64> = page_numbers(&addrs).into_iter().collect();
            assert_eq!(pages.len(), 12, "stride {stride} must cover all pages");
            assert_eq!(addrs.len(), 12, "stride {stride} must not repeat pages");
        }
    }

    #[test]
    fn strided_with_coprime_stride_is_a_single_cycle() {
        let addrs = AccessPattern::Strided { stride: 5 }.addresses(&set(8));
        assert_eq!(page_numbers(&addrs), vec![0, 5, 2, 7, 4, 1, 6, 3]);
    }

    #[test]
    fn shuffled_is_a_permutation_and_deterministic() {
        let a = AccessPattern::Shuffled { seed: 42 }.addresses(&set(16));
        let b = AccessPattern::Shuffled { seed: 42 }.addresses(&set(16));
        let c = AccessPattern::Shuffled { seed: 7 }.addresses(&set(16));
        assert_eq!(a, b, "same seed must give same order");
        assert_ne!(a, c, "different seeds should differ for 16 pages");
        let pages: BTreeSet<u64> = page_numbers(&a).into_iter().collect();
        assert_eq!(pages.len(), 16);
    }

    #[test]
    fn single_page_patterns() {
        for pattern in [
            AccessPattern::Sequential,
            AccessPattern::Strided { stride: 3 },
            AccessPattern::Shuffled { seed: 1 },
        ] {
            let addrs = pattern.addresses(&set(1));
            assert_eq!(page_numbers(&addrs), vec![0]);
        }
    }

    #[test]
    fn default_is_sequential() {
        assert_eq!(AccessPattern::default(), AccessPattern::Sequential);
    }
}
