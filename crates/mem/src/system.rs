//! The machine-level memory system: address spaces plus per-sequencer TLBs.

use crate::{AddressSpace, Tlb, TlbStats};
use misp_cache::{CacheConfig, CacheHierarchy, CacheOutcome, CacheStats};
use misp_types::{MispError, PageId, ProcessId, Result, SequencerId, VirtAddr};

/// The result of one memory access, as observed by the execution engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryOutcome {
    /// `true` if the translation was found in the sequencer's TLB.
    pub tlb_hit: bool,
    /// `true` if the access raised a compulsory page fault (first touch of the
    /// page by its process).  A fault on an OMS is a local ring transition; a
    /// fault on an AMS triggers proxy execution.
    pub page_fault: bool,
    /// The page that was accessed.
    pub page: PageId,
    /// The cache hierarchy's view of the access; `None` when the cache model
    /// is disabled (the default), in which case only the engine's flat access
    /// cost applies.
    pub cache: Option<CacheOutcome>,
}

/// The memory system of one simulated machine.
///
/// It owns one [`AddressSpace`] per process and one [`Tlb`] per sequencer, and
/// tracks which process each sequencer's CR3 currently points at (so that
/// context switches and TLB shootdowns flush the right TLBs).
#[derive(Debug, Clone)]
pub struct MemorySystem {
    /// One address space per registered process, indexed by
    /// [`ProcessId::as_usize`] (identifiers are sequential); `None` marks a
    /// process that was never registered.  A vector keeps the per-access
    /// lookup on the engine's hot path at array-index cost.
    spaces: Vec<Option<AddressSpace>>,
    tlbs: Vec<Tlb>,
    /// Which process each sequencer's CR3 points at (None = idle).
    cr3: Vec<Option<ProcessId>>,
    tlb_capacity: usize,
    shootdowns: u64,
    /// The coherent cache hierarchy; `None` while the cache model is disabled
    /// (see [`MemorySystem::configure_caches`]).
    caches: Option<CacheHierarchy>,
}

impl MemorySystem {
    /// Creates a memory system for `sequencers` sequencers, each with a TLB of
    /// `tlb_capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `sequencers` or `tlb_capacity` is zero.
    #[must_use]
    pub fn new(sequencers: usize, tlb_capacity: usize) -> Self {
        assert!(sequencers > 0, "a machine needs at least one sequencer");
        MemorySystem {
            spaces: Vec::new(),
            tlbs: (0..sequencers).map(|_| Tlb::new(tlb_capacity)).collect(),
            cr3: vec![None; sequencers],
            tlb_capacity,
            shootdowns: 0,
            caches: None,
        }
    }

    /// Installs (or removes) the cache hierarchy.  With `config.enabled` the
    /// hierarchy is rebuilt from scratch — per-sequencer L1s, one shared L2
    /// per cluster named by `clusters[sequencer]` — discarding any previous
    /// cache state and statistics; with a disabled config the hierarchy is
    /// removed and accesses charge only the flat cost.
    ///
    /// Platforms call this during engine initialization, before any access,
    /// to impose their clustering (sequencers of one MISP processor share an
    /// L2; every SMP core is its own cluster).
    ///
    /// # Panics
    ///
    /// Panics if `config.enabled` and `clusters.len()` differs from the
    /// sequencer count.
    pub fn configure_caches(&mut self, config: CacheConfig, clusters: &[usize]) {
        if config.enabled {
            assert_eq!(
                clusters.len(),
                self.tlbs.len(),
                "cache cluster map must name every sequencer"
            );
            self.caches = Some(CacheHierarchy::new(config, clusters));
        } else {
            self.caches = None;
        }
    }

    /// Returns `true` when the cache hierarchy is modeled.
    #[must_use]
    pub fn cache_enabled(&self) -> bool {
        self.caches.is_some()
    }

    /// The cache hierarchy, if enabled.
    #[must_use]
    pub fn caches(&self) -> Option<&CacheHierarchy> {
        self.caches.as_ref()
    }

    /// Cache statistics for `sequencer`; `None` when the cache model is
    /// disabled or the sequencer is out of range.
    #[must_use]
    pub fn cache_stats(&self, sequencer: SequencerId) -> Option<CacheStats> {
        self.caches.as_ref().and_then(|h| h.stats(sequencer))
    }

    /// Flushes `sequencer`'s private L1 (context switch or proxy-execution
    /// pollution).  A no-op while the cache model is disabled.
    ///
    /// # Panics
    ///
    /// Panics if `sequencer` is out of range while the cache model is
    /// enabled — a silently dropped flush would bias cycle counts.
    pub fn flush_cache(&mut self, sequencer: SequencerId) {
        if let Some(caches) = self.caches.as_mut() {
            caches.flush_l1(sequencer);
        }
    }

    /// Number of sequencers this memory system serves.
    #[must_use]
    pub fn sequencer_count(&self) -> usize {
        self.tlbs.len()
    }

    /// Registers a new process (creating its empty address space).  Calling it
    /// twice for the same process is a no-op.
    pub fn register_process(&mut self, pid: ProcessId) {
        let idx = pid.as_usize();
        if idx >= self.spaces.len() {
            self.spaces.resize_with(idx + 1, || None);
        }
        self.spaces[idx].get_or_insert_with(AddressSpace::default);
    }

    /// Points `sequencer`'s CR3 at `pid`'s page table, flushing its TLB if the
    /// process actually changes (as a CR3 write does on IA-32).
    ///
    /// # Errors
    ///
    /// Returns [`MispError::UnknownSequencer`] if the sequencer index is out
    /// of range, or [`MispError::InvalidConfiguration`] if the process was
    /// never registered.
    pub fn bind_sequencer(&mut self, sequencer: SequencerId, pid: ProcessId) -> Result<()> {
        if !self.is_registered(pid) {
            return Err(MispError::InvalidConfiguration(format!(
                "process {pid} was never registered"
            )));
        }
        let idx = sequencer.as_usize();
        let slot = self
            .cr3
            .get_mut(idx)
            .ok_or(MispError::UnknownSequencer(sequencer))?;
        if *slot != Some(pid) {
            *slot = Some(pid);
            self.tlbs[idx].flush();
        }
        Ok(())
    }

    /// Unbinds `sequencer` (e.g. when its MISP processor's thread is context
    /// switched away), flushing its TLB.
    pub fn unbind_sequencer(&mut self, sequencer: SequencerId) -> Result<()> {
        let idx = sequencer.as_usize();
        let slot = self
            .cr3
            .get_mut(idx)
            .ok_or(MispError::UnknownSequencer(sequencer))?;
        if slot.is_some() {
            *slot = None;
            self.tlbs[idx].flush();
        }
        Ok(())
    }

    /// The process `sequencer`'s CR3 currently points at.
    #[must_use]
    pub fn bound_process(&self, sequencer: SequencerId) -> Option<ProcessId> {
        self.cr3.get(sequencer.as_usize()).copied().flatten()
    }

    /// Performs a memory access by `sequencer` at `addr` against its bound
    /// process, reporting TLB, page-fault and cache outcomes.  `store`
    /// selects a write, which matters only to the cache model (a store
    /// invalidates the line in remote caches).
    ///
    /// # Panics
    ///
    /// Panics if the sequencer has no bound process — the execution engine
    /// must bind sequencers before letting shreds touch memory.
    pub fn access(&mut self, sequencer: SequencerId, addr: VirtAddr, store: bool) -> MemoryOutcome {
        let idx = sequencer.as_usize();
        let pid =
            self.cr3[idx].expect("sequencer must be bound to a process before accessing memory");
        let page = addr.page();
        let tlb_hit = self.tlbs[idx].lookup_insert(page);
        let space = self
            .spaces
            .get_mut(pid.as_usize())
            .and_then(Option::as_mut)
            .expect("bound process always has an address space");
        let page_fault = space.touch(page);
        // Cache lines are tagged with the owning process (the model's
        // stand-in for physical tagging), so equal virtual addresses in
        // different address spaces never alias in the L1s or the shared L2s.
        let cache = self
            .caches
            .as_mut()
            .map(|h| h.access(sequencer, pid.index(), addr, store));
        MemoryOutcome {
            tlb_hit,
            page_fault,
            page,
            cache,
        }
    }

    /// Returns `true` if `addr` would page-fault when accessed by a sequencer
    /// bound to `pid`, without performing the access.
    #[must_use]
    pub fn would_fault(&self, pid: ProcessId, addr: VirtAddr) -> bool {
        self.address_space(pid)
            .map(|s| !s.is_resident(addr.page()))
            .unwrap_or(true)
    }

    /// Pre-touches `pages` pages starting at `base` for `pid`, modelling the
    /// serial-region page probe optimization from Section 5.3.
    pub fn pretouch_range(&mut self, pid: ProcessId, base: VirtAddr, pages: u64) {
        if let Some(space) = self.spaces.get_mut(pid.as_usize()).and_then(Option::as_mut) {
            for i in 0..pages {
                space.pretouch(PageId::new(base.page().number() + i));
            }
        }
    }

    /// Performs a TLB shootdown: flushes the TLB of every sequencer whose CR3
    /// points at `pid`.  Returns the sequencers that were flushed.  This is
    /// the SMP mechanism the paper notes keeps working unchanged under MISP
    /// (Section 2.6).
    pub fn tlb_shootdown(&mut self, pid: ProcessId) -> Vec<SequencerId> {
        let mut flushed = Vec::new();
        for (idx, bound) in self.cr3.iter().enumerate() {
            if *bound == Some(pid) {
                self.tlbs[idx].flush();
                flushed.push(SequencerId::new(idx as u32));
            }
        }
        self.shootdowns += 1;
        flushed
    }

    /// Number of TLB shootdowns performed.
    #[must_use]
    pub fn shootdown_count(&self) -> u64 {
        self.shootdowns
    }

    /// The address space of `pid`, if registered.
    #[must_use]
    pub fn address_space(&self, pid: ProcessId) -> Option<&AddressSpace> {
        self.spaces.get(pid.as_usize()).and_then(Option::as_ref)
    }

    /// Returns `true` if `pid` was registered with this memory system.
    #[must_use]
    pub fn is_registered(&self, pid: ProcessId) -> bool {
        self.address_space(pid).is_some()
    }

    /// TLB statistics for `sequencer`.
    #[must_use]
    pub fn tlb_stats(&self, sequencer: SequencerId) -> Option<TlbStats> {
        self.tlbs.get(sequencer.as_usize()).map(Tlb::stats)
    }

    /// The configured per-sequencer TLB capacity.
    #[must_use]
    pub fn tlb_capacity(&self) -> usize {
        self.tlb_capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use misp_types::PAGE_SIZE;

    fn setup() -> (MemorySystem, ProcessId) {
        let mut mem = MemorySystem::new(4, 8);
        let pid = ProcessId::new(0);
        mem.register_process(pid);
        for i in 0..4 {
            mem.bind_sequencer(SequencerId::new(i), pid).unwrap();
        }
        (mem, pid)
    }

    #[test]
    fn first_touch_faults_on_any_sequencer_once() {
        let (mut mem, _) = setup();
        let addr = VirtAddr::new(10 * PAGE_SIZE);
        let o = mem.access(SequencerId::new(2), addr, false);
        assert!(o.page_fault);
        assert!(!o.tlb_hit);
        // Another sequencer touching the same page: no fault (shared address
        // space) but a TLB miss because TLBs are per-sequencer.
        let o = mem.access(SequencerId::new(3), addr, false);
        assert!(!o.page_fault);
        assert!(!o.tlb_hit);
        // Same sequencer again: TLB hit.
        let o = mem.access(SequencerId::new(3), addr, false);
        assert!(o.tlb_hit);
    }

    #[test]
    fn bind_unknown_process_fails() {
        let mut mem = MemorySystem::new(2, 8);
        let err = mem
            .bind_sequencer(SequencerId::new(0), ProcessId::new(9))
            .unwrap_err();
        assert!(matches!(err, MispError::InvalidConfiguration(_)));
    }

    #[test]
    fn bind_out_of_range_sequencer_fails() {
        let mut mem = MemorySystem::new(2, 8);
        mem.register_process(ProcessId::new(0));
        let err = mem
            .bind_sequencer(SequencerId::new(5), ProcessId::new(0))
            .unwrap_err();
        assert_eq!(err, MispError::UnknownSequencer(SequencerId::new(5)));
    }

    #[test]
    fn rebinding_to_other_process_flushes_tlb() {
        let mut mem = MemorySystem::new(1, 8);
        let a = ProcessId::new(0);
        let b = ProcessId::new(1);
        mem.register_process(a);
        mem.register_process(b);
        let s = SequencerId::new(0);
        mem.bind_sequencer(s, a).unwrap();
        mem.access(s, VirtAddr::new(0), false);
        assert_eq!(mem.tlb_stats(s).unwrap().flushes, 1, "initial bind flushes");
        mem.bind_sequencer(s, a).unwrap(); // same process: no flush
        assert_eq!(mem.tlb_stats(s).unwrap().flushes, 1);
        mem.bind_sequencer(s, b).unwrap();
        assert_eq!(mem.tlb_stats(s).unwrap().flushes, 2);
        assert_eq!(mem.bound_process(s), Some(b));
    }

    #[test]
    fn unbind_flushes_once() {
        let (mut mem, _) = setup();
        let s = SequencerId::new(1);
        let before = mem.tlb_stats(s).unwrap().flushes;
        mem.unbind_sequencer(s).unwrap();
        assert_eq!(mem.tlb_stats(s).unwrap().flushes, before + 1);
        assert_eq!(mem.bound_process(s), None);
        // Unbinding an already-unbound sequencer does not flush again.
        mem.unbind_sequencer(s).unwrap();
        assert_eq!(mem.tlb_stats(s).unwrap().flushes, before + 1);
    }

    #[test]
    fn pretouch_suppresses_faults() {
        let (mut mem, pid) = setup();
        mem.pretouch_range(pid, VirtAddr::new(0), 16);
        for i in 0..16 {
            let o = mem.access(SequencerId::new(0), VirtAddr::new(i * PAGE_SIZE), false);
            assert!(!o.page_fault, "page {i} should be pre-touched");
        }
        assert_eq!(mem.address_space(pid).unwrap().compulsory_faults(), 0);
    }

    #[test]
    fn would_fault_reflects_residency() {
        let (mut mem, pid) = setup();
        let addr = VirtAddr::new(3 * PAGE_SIZE);
        assert!(mem.would_fault(pid, addr));
        mem.access(SequencerId::new(0), addr, false);
        assert!(!mem.would_fault(pid, addr));
        assert!(
            mem.would_fault(ProcessId::new(42), addr),
            "unknown process always faults"
        );
    }

    #[test]
    fn shootdown_flushes_only_bound_sequencers() {
        let mut mem = MemorySystem::new(3, 8);
        let a = ProcessId::new(0);
        let b = ProcessId::new(1);
        mem.register_process(a);
        mem.register_process(b);
        mem.bind_sequencer(SequencerId::new(0), a).unwrap();
        mem.bind_sequencer(SequencerId::new(1), a).unwrap();
        mem.bind_sequencer(SequencerId::new(2), b).unwrap();
        let flushed = mem.tlb_shootdown(a);
        assert_eq!(flushed, vec![SequencerId::new(0), SequencerId::new(1)]);
        assert_eq!(mem.shootdown_count(), 1);
    }

    #[test]
    fn sequencer_count_and_capacity() {
        let mem = MemorySystem::new(8, 64);
        assert_eq!(mem.sequencer_count(), 8);
        assert_eq!(mem.tlb_capacity(), 64);
    }
}
