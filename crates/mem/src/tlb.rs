//! Per-sequencer translation look-aside buffers.

use misp_types::{FxHashMap, PageId};
use serde::{Deserialize, Serialize};

/// Hit/miss/flush counters for one TLB.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Number of lookups that hit.
    pub hits: u64,
    /// Number of lookups that missed (serviced by the hardware page walker).
    pub misses: u64,
    /// Number of full flushes (CR3 writes and explicit shootdowns).
    pub flushes: u64,
}

impl TlbStats {
    /// Hit rate in the range `[0, 1]`; zero when no lookups have occurred.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A per-sequencer TLB with true-LRU replacement.
///
/// The paper notes (Section 2.3) that in modern IA-32 implementations a write
/// to CR3 purges the sequencer's TLB, and that TLB misses are handled
/// independently by each sequencer's hardware page walker without OS
/// involvement — so a TLB miss is *not* a serializing event.  The TLB exists
/// in the model so the memory system can charge the page-walk latency and so
/// CR3/TLB-shootdown behaviour is observable in tests.
///
/// # Examples
///
/// ```
/// use misp_mem::Tlb;
/// use misp_types::PageId;
///
/// let mut tlb = Tlb::new(2);
/// assert!(!tlb.lookup_insert(PageId::new(1))); // miss
/// assert!(tlb.lookup_insert(PageId::new(1)));  // hit
/// assert!(!tlb.lookup_insert(PageId::new(2))); // miss
/// assert!(!tlb.lookup_insert(PageId::new(3))); // miss, evicts page 1 (LRU)
/// assert!(!tlb.lookup_insert(PageId::new(1))); // miss again
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tlb {
    capacity: usize,
    /// Page → slab slot of its list node.
    map: FxHashMap<PageId, u32>,
    /// Slab of doubly-linked LRU list nodes: `head` is the LRU entry, `tail`
    /// the MRU one.  The linked list makes the promote-to-MRU of every
    /// lookup O(1) — this sits on the engine's per-memory-access hot path,
    /// where an ordered deque would shift half the TLB per hit.
    nodes: Vec<Node>,
    /// Recycled slab slots.
    free: Vec<u32>,
    head: u32,
    tail: u32,
    stats: TlbStats,
}

/// One LRU list node; `NIL` marks the ends of the list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Node {
    page: PageId,
    prev: u32,
    next: u32,
}

/// Null link in the LRU list.
const NIL: u32 = u32::MAX;

impl Tlb {
    /// Creates a TLB holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-entry TLB would make every access
    /// a miss and is never a meaningful configuration.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be non-zero");
        Tlb {
            capacity,
            map: FxHashMap::default(),
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: TlbStats::default(),
        }
    }

    /// Maximum number of entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of cached translations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` when the TLB caches no translations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Detaches node `i` from the LRU list.
    fn unlink(&mut self, i: u32) {
        let Node { prev, next, .. } = self.nodes[i as usize];
        match prev {
            NIL => self.head = next,
            p => self.nodes[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.nodes[n as usize].prev = prev,
        }
    }

    /// Attaches node `i` at the MRU (tail) end of the list.
    fn link_tail(&mut self, i: u32) {
        let old_tail = self.tail;
        {
            let node = &mut self.nodes[i as usize];
            node.prev = old_tail;
            node.next = NIL;
        }
        match old_tail {
            NIL => self.head = i,
            t => self.nodes[t as usize].next = i,
        }
        self.tail = i;
    }

    /// Looks up `page`; on a miss, inserts it (evicting the LRU entry if
    /// full).  Returns `true` on a hit.
    pub fn lookup_insert(&mut self, page: PageId) -> bool {
        // MRU fast path: a repeat access to the most recent page — the common
        // case, since consecutive operations usually fall in the same 4 KiB
        // page — is already at the tail, so it hits without the hash probe or
        // a relink.  Statistics and LRU order are identical to the slow path.
        if self.tail != NIL && self.nodes[self.tail as usize].page == page {
            self.stats.hits += 1;
            return true;
        }
        if let Some(&slot) = self.map.get(&page) {
            // Promote to MRU.
            if self.tail != slot {
                self.unlink(slot);
                self.link_tail(slot);
            }
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if self.map.len() == self.capacity {
            // Evict the LRU entry and reuse its node for the new page.
            let victim = self.head;
            let victim_page = self.nodes[victim as usize].page;
            self.unlink(victim);
            self.map.remove(&victim_page);
            self.nodes[victim as usize].page = page;
            self.map.insert(page, victim);
            self.link_tail(victim);
            return false;
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize].page = page;
                slot
            }
            None => {
                let slot = self.nodes.len() as u32;
                self.nodes.push(Node {
                    page,
                    prev: NIL,
                    next: NIL,
                });
                slot
            }
        };
        self.map.insert(page, slot);
        self.link_tail(slot);
        false
    }

    /// Returns `true` if `page` is currently cached, without affecting LRU
    /// order or statistics.
    #[must_use]
    pub fn contains(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    /// Flushes the entire TLB, as a CR3 write or TLB shootdown IPI does.
    pub fn flush(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.stats.flushes += 1;
    }

    /// Invalidates a single page translation (e.g. `INVLPG`), if present.
    pub fn invalidate(&mut self, page: PageId) {
        if let Some(slot) = self.map.remove(&page) {
            self.unlink(slot);
            self.free.push(slot);
        }
    }

    /// Hit/miss/flush statistics accumulated since creation.
    #[must_use]
    pub fn stats(&self) -> TlbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_panics() {
        let _ = Tlb::new(0);
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut tlb = Tlb::new(4);
        assert!(!tlb.lookup_insert(PageId::new(1)));
        assert!(tlb.lookup_insert(PageId::new(1)));
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
        assert!((tlb.stats().hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn hit_rate_with_no_lookups_is_zero() {
        let tlb = Tlb::new(4);
        assert_eq!(tlb.stats().hit_rate(), 0.0);
    }

    #[test]
    fn lru_eviction_order() {
        let mut tlb = Tlb::new(2);
        tlb.lookup_insert(PageId::new(1));
        tlb.lookup_insert(PageId::new(2));
        // Touch 1 so that 2 becomes LRU.
        tlb.lookup_insert(PageId::new(1));
        tlb.lookup_insert(PageId::new(3)); // evicts 2
        assert!(tlb.contains(PageId::new(1)));
        assert!(!tlb.contains(PageId::new(2)));
        assert!(tlb.contains(PageId::new(3)));
        assert_eq!(tlb.len(), 2);
    }

    #[test]
    fn flush_clears_and_counts() {
        let mut tlb = Tlb::new(4);
        tlb.lookup_insert(PageId::new(1));
        tlb.lookup_insert(PageId::new(2));
        tlb.flush();
        assert!(tlb.is_empty());
        assert_eq!(tlb.stats().flushes, 1);
        assert!(
            !tlb.lookup_insert(PageId::new(1)),
            "post-flush lookup misses"
        );
    }

    #[test]
    fn invalidate_single_entry() {
        let mut tlb = Tlb::new(4);
        tlb.lookup_insert(PageId::new(1));
        tlb.lookup_insert(PageId::new(2));
        tlb.invalidate(PageId::new(1));
        assert!(!tlb.contains(PageId::new(1)));
        assert!(tlb.contains(PageId::new(2)));
        // Invalidating an absent page is a no-op.
        tlb.invalidate(PageId::new(99));
        assert_eq!(tlb.len(), 1);
    }

    #[test]
    fn mru_fast_path_matches_slow_path_accounting() {
        let mut tlb = Tlb::new(2);
        tlb.lookup_insert(PageId::new(1));
        // Repeat accesses take the tail fast path: all hits, LRU unchanged.
        for _ in 0..3 {
            assert!(tlb.lookup_insert(PageId::new(1)));
        }
        assert_eq!(tlb.stats().hits, 3);
        assert_eq!(tlb.stats().misses, 1);
        // Page 1 is still MRU: inserting 2 then 3 evicts 2's predecessor
        // order correctly (1 stays until it becomes LRU).
        tlb.lookup_insert(PageId::new(2));
        tlb.lookup_insert(PageId::new(3)); // evicts 1 (LRU)
        assert!(!tlb.contains(PageId::new(1)));
        assert!(tlb.contains(PageId::new(2)));
        assert!(tlb.contains(PageId::new(3)));
    }

    #[test]
    fn capacity_is_respected() {
        let mut tlb = Tlb::new(3);
        for i in 0..10 {
            tlb.lookup_insert(PageId::new(i));
        }
        assert_eq!(tlb.len(), 3);
        assert_eq!(tlb.capacity(), 3);
        // The three most recent pages remain.
        assert!(tlb.contains(PageId::new(7)));
        assert!(tlb.contains(PageId::new(8)));
        assert!(tlb.contains(PageId::new(9)));
    }
}
