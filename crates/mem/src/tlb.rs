//! Per-sequencer translation look-aside buffers.

use misp_types::PageId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Hit/miss/flush counters for one TLB.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Number of lookups that hit.
    pub hits: u64,
    /// Number of lookups that missed (serviced by the hardware page walker).
    pub misses: u64,
    /// Number of full flushes (CR3 writes and explicit shootdowns).
    pub flushes: u64,
}

impl TlbStats {
    /// Hit rate in the range `[0, 1]`; zero when no lookups have occurred.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A per-sequencer TLB with true-LRU replacement.
///
/// The paper notes (Section 2.3) that in modern IA-32 implementations a write
/// to CR3 purges the sequencer's TLB, and that TLB misses are handled
/// independently by each sequencer's hardware page walker without OS
/// involvement — so a TLB miss is *not* a serializing event.  The TLB exists
/// in the model so the memory system can charge the page-walk latency and so
/// CR3/TLB-shootdown behaviour is observable in tests.
///
/// # Examples
///
/// ```
/// use misp_mem::Tlb;
/// use misp_types::PageId;
///
/// let mut tlb = Tlb::new(2);
/// assert!(!tlb.lookup_insert(PageId::new(1))); // miss
/// assert!(tlb.lookup_insert(PageId::new(1)));  // hit
/// assert!(!tlb.lookup_insert(PageId::new(2))); // miss
/// assert!(!tlb.lookup_insert(PageId::new(3))); // miss, evicts page 1 (LRU)
/// assert!(!tlb.lookup_insert(PageId::new(1))); // miss again
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tlb {
    capacity: usize,
    /// Most-recently-used entry is at the back.
    entries: VecDeque<PageId>,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-entry TLB would make every access
    /// a miss and is never a meaningful configuration.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be non-zero");
        Tlb {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            stats: TlbStats::default(),
        }
    }

    /// Maximum number of entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of cached translations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the TLB caches no translations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `page`; on a miss, inserts it (evicting the LRU entry if
    /// full).  Returns `true` on a hit.
    pub fn lookup_insert(&mut self, page: PageId) -> bool {
        if let Some(pos) = self.entries.iter().position(|p| *p == page) {
            // Move to MRU position.
            self.entries.remove(pos);
            self.entries.push_back(page);
            self.stats.hits += 1;
            true
        } else {
            if self.entries.len() == self.capacity {
                self.entries.pop_front();
            }
            self.entries.push_back(page);
            self.stats.misses += 1;
            false
        }
    }

    /// Returns `true` if `page` is currently cached, without affecting LRU
    /// order or statistics.
    #[must_use]
    pub fn contains(&self, page: PageId) -> bool {
        self.entries.iter().any(|p| *p == page)
    }

    /// Flushes the entire TLB, as a CR3 write or TLB shootdown IPI does.
    pub fn flush(&mut self) {
        self.entries.clear();
        self.stats.flushes += 1;
    }

    /// Invalidates a single page translation (e.g. `INVLPG`), if present.
    pub fn invalidate(&mut self, page: PageId) {
        if let Some(pos) = self.entries.iter().position(|p| *p == page) {
            self.entries.remove(pos);
        }
    }

    /// Hit/miss/flush statistics accumulated since creation.
    #[must_use]
    pub fn stats(&self) -> TlbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_panics() {
        let _ = Tlb::new(0);
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut tlb = Tlb::new(4);
        assert!(!tlb.lookup_insert(PageId::new(1)));
        assert!(tlb.lookup_insert(PageId::new(1)));
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
        assert!((tlb.stats().hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn hit_rate_with_no_lookups_is_zero() {
        let tlb = Tlb::new(4);
        assert_eq!(tlb.stats().hit_rate(), 0.0);
    }

    #[test]
    fn lru_eviction_order() {
        let mut tlb = Tlb::new(2);
        tlb.lookup_insert(PageId::new(1));
        tlb.lookup_insert(PageId::new(2));
        // Touch 1 so that 2 becomes LRU.
        tlb.lookup_insert(PageId::new(1));
        tlb.lookup_insert(PageId::new(3)); // evicts 2
        assert!(tlb.contains(PageId::new(1)));
        assert!(!tlb.contains(PageId::new(2)));
        assert!(tlb.contains(PageId::new(3)));
        assert_eq!(tlb.len(), 2);
    }

    #[test]
    fn flush_clears_and_counts() {
        let mut tlb = Tlb::new(4);
        tlb.lookup_insert(PageId::new(1));
        tlb.lookup_insert(PageId::new(2));
        tlb.flush();
        assert!(tlb.is_empty());
        assert_eq!(tlb.stats().flushes, 1);
        assert!(
            !tlb.lookup_insert(PageId::new(1)),
            "post-flush lookup misses"
        );
    }

    #[test]
    fn invalidate_single_entry() {
        let mut tlb = Tlb::new(4);
        tlb.lookup_insert(PageId::new(1));
        tlb.lookup_insert(PageId::new(2));
        tlb.invalidate(PageId::new(1));
        assert!(!tlb.contains(PageId::new(1)));
        assert!(tlb.contains(PageId::new(2)));
        // Invalidating an absent page is a no-op.
        tlb.invalidate(PageId::new(99));
        assert_eq!(tlb.len(), 1);
    }

    #[test]
    fn capacity_is_respected() {
        let mut tlb = Tlb::new(3);
        for i in 0..10 {
            tlb.lookup_insert(PageId::new(i));
        }
        assert_eq!(tlb.len(), 3);
        assert_eq!(tlb.capacity(), 3);
        // The three most recent pages remain.
        assert!(tlb.contains(PageId::new(7)));
        assert!(tlb.contains(PageId::new(8)));
        assert!(tlb.contains(PageId::new(9)));
    }
}
