//! Working-set descriptions used by workload generators.

use misp_types::{PageId, VirtAddr, PAGE_SIZE};
use serde::{Deserialize, Serialize};

/// A contiguous region of virtual memory that a shred (or a group of shreds)
/// works over.
///
/// Workload generators use working sets to lay out page footprints: the number
/// of pages in a working set that have not been touched before parallel
/// execution begins is exactly the number of compulsory page faults the
/// workload will incur — the dominant entry of the paper's Table 1.
///
/// # Examples
///
/// ```
/// use misp_mem::WorkingSet;
/// use misp_types::VirtAddr;
///
/// let matrix = WorkingSet::new("matrix A", VirtAddr::new(0x1000_0000), 512);
/// assert_eq!(matrix.pages(), 512);
/// let (lo, hi) = matrix.split(2)[0].clone().page_range();
/// assert!(hi > lo);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkingSet {
    name: String,
    base: VirtAddr,
    pages: u64,
}

impl WorkingSet {
    /// Creates a working set of `pages` pages starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    #[must_use]
    pub fn new(name: impl Into<String>, base: VirtAddr, pages: u64) -> Self {
        assert!(pages > 0, "a working set must contain at least one page");
        WorkingSet {
            name: name.into(),
            base,
            pages,
        }
    }

    /// The descriptive name of this region.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The base virtual address.
    #[must_use]
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    /// Number of pages covered.
    #[must_use]
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Total size in bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.pages * PAGE_SIZE
    }

    /// The half-open page-number range `[first, last)` covered by this set.
    #[must_use]
    pub fn page_range(&self) -> (u64, u64) {
        let first = self.base.page().number();
        (first, first + self.pages)
    }

    /// The address of byte `offset` within the working set.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is outside the working set.
    #[must_use]
    pub fn addr(&self, offset: u64) -> VirtAddr {
        assert!(offset < self.bytes(), "offset beyond working set");
        self.base.offset(offset)
    }

    /// The address of the first byte of the `i`-th page of the working set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.pages()`.
    #[must_use]
    pub fn page_addr(&self, i: u64) -> VirtAddr {
        assert!(i < self.pages, "page index beyond working set");
        PageId::new(self.base.page().number() + i).base_addr()
    }

    /// Splits the working set into `parts` nearly-equal contiguous chunks
    /// (the last chunk absorbs the remainder), as a data-parallel workload
    /// divides its arrays among shreds.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero or exceeds the number of pages.
    #[must_use]
    pub fn split(&self, parts: u64) -> Vec<WorkingSet> {
        assert!(parts > 0, "cannot split into zero parts");
        assert!(
            parts <= self.pages,
            "cannot split {} pages into {} parts",
            self.pages,
            parts
        );
        let per = self.pages / parts;
        let mut out = Vec::with_capacity(parts as usize);
        for i in 0..parts {
            let start_page = self.base.page().number() + i * per;
            let pages = if i == parts - 1 {
                self.pages - i * per
            } else {
                per
            };
            out.push(WorkingSet {
                name: format!("{}[{}]", self.name, i),
                base: PageId::new(start_page).base_addr(),
                pages,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_pages_panics() {
        let _ = WorkingSet::new("w", VirtAddr::new(0), 0);
    }

    #[test]
    fn geometry() {
        let w = WorkingSet::new("w", VirtAddr::new(4 * PAGE_SIZE), 10);
        assert_eq!(w.pages(), 10);
        assert_eq!(w.bytes(), 10 * PAGE_SIZE);
        assert_eq!(w.page_range(), (4, 14));
        assert_eq!(w.page_addr(0), VirtAddr::new(4 * PAGE_SIZE));
        assert_eq!(w.page_addr(9), VirtAddr::new(13 * PAGE_SIZE));
        assert_eq!(w.addr(5), VirtAddr::new(4 * PAGE_SIZE + 5));
        assert_eq!(w.name(), "w");
        assert_eq!(w.base(), VirtAddr::new(4 * PAGE_SIZE));
    }

    #[test]
    #[should_panic(expected = "page index beyond")]
    fn page_addr_out_of_range_panics() {
        let w = WorkingSet::new("w", VirtAddr::new(0), 2);
        let _ = w.page_addr(2);
    }

    #[test]
    #[should_panic(expected = "offset beyond")]
    fn addr_out_of_range_panics() {
        let w = WorkingSet::new("w", VirtAddr::new(0), 1);
        let _ = w.addr(PAGE_SIZE);
    }

    #[test]
    fn split_covers_all_pages_exactly_once() {
        let w = WorkingSet::new("w", VirtAddr::new(0), 10);
        let parts = w.split(3);
        assert_eq!(parts.len(), 3);
        let total: u64 = parts.iter().map(WorkingSet::pages).sum();
        assert_eq!(total, 10);
        // Contiguous and non-overlapping.
        assert_eq!(parts[0].page_range(), (0, 3));
        assert_eq!(parts[1].page_range(), (3, 6));
        assert_eq!(parts[2].page_range(), (6, 10));
        assert_eq!(parts[2].name(), "w[2]");
    }

    #[test]
    fn split_into_one_is_identity_geometry() {
        let w = WorkingSet::new("w", VirtAddr::new(PAGE_SIZE), 5);
        let parts = w.split(1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].page_range(), w.page_range());
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn split_more_parts_than_pages_panics() {
        let w = WorkingSet::new("w", VirtAddr::new(0), 2);
        let _ = w.split(3);
    }
}
