//! Privileged-event classification (the categories of Table 1).

use core::fmt;
use misp_isa::SyscallKind;
use serde::{Deserialize, Serialize};

/// The category of an event that requires OS (Ring 0) attention.
///
/// These are exactly the serializing-event categories the paper's Table 1
/// reports: system calls, page faults, timer interrupts, and the remaining
/// uncategorized interrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OsEventKind {
    /// A trap to the OS requested by the program (system call).
    Syscall,
    /// A page fault (in this model, always a compulsory first-touch fault).
    PageFault,
    /// A timer-clock interrupt (the OS scheduler tick).
    Timer,
    /// Any remaining, uncategorized device interrupt.
    OtherInterrupt,
}

impl OsEventKind {
    /// All event categories, in the column order of Table 1.
    #[must_use]
    pub const fn all() -> [OsEventKind; 4] {
        [
            OsEventKind::Syscall,
            OsEventKind::PageFault,
            OsEventKind::Timer,
            OsEventKind::OtherInterrupt,
        ]
    }

    /// Returns `true` for events that originate from program behaviour
    /// (syscalls, page faults) rather than asynchronously from hardware.
    #[must_use]
    pub const fn is_synchronous(self) -> bool {
        matches!(self, OsEventKind::Syscall | OsEventKind::PageFault)
    }
}

impl From<SyscallKind> for OsEventKind {
    fn from(_: SyscallKind) -> Self {
        OsEventKind::Syscall
    }
}

impl fmt::Display for OsEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            OsEventKind::Syscall => "syscall",
            OsEventKind::PageFault => "page-fault",
            OsEventKind::Timer => "timer",
            OsEventKind::OtherInterrupt => "interrupt",
        };
        f.write_str(name)
    }
}

/// Per-category event counters, used for the OMS and AMS columns of Table 1.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OsEventCounts {
    /// Number of system calls.
    pub syscalls: u64,
    /// Number of page faults.
    pub page_faults: u64,
    /// Number of timer interrupts.
    pub timer: u64,
    /// Number of other (uncategorized) interrupts.
    pub other_interrupts: u64,
}

impl OsEventCounts {
    /// Increments the counter for `kind`.
    pub fn record(&mut self, kind: OsEventKind) {
        match kind {
            OsEventKind::Syscall => self.syscalls += 1,
            OsEventKind::PageFault => self.page_faults += 1,
            OsEventKind::Timer => self.timer += 1,
            OsEventKind::OtherInterrupt => self.other_interrupts += 1,
        }
    }

    /// Returns the count for `kind`.
    #[must_use]
    pub fn count(&self, kind: OsEventKind) -> u64 {
        match kind {
            OsEventKind::Syscall => self.syscalls,
            OsEventKind::PageFault => self.page_faults,
            OsEventKind::Timer => self.timer,
            OsEventKind::OtherInterrupt => self.other_interrupts,
        }
    }

    /// Total events across all categories.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.syscalls + self.page_faults + self.timer + self.other_interrupts
    }

    /// Adds another set of counts to this one (e.g. summing across AMSs).
    pub fn merge(&mut self, other: &OsEventCounts) {
        self.syscalls += other.syscalls;
        self.page_faults += other.page_faults;
        self.timer += other.timer;
        self.other_interrupts += other.other_interrupts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_and_display() {
        assert_eq!(OsEventKind::all().len(), 4);
        assert_eq!(OsEventKind::Syscall.to_string(), "syscall");
        assert_eq!(OsEventKind::PageFault.to_string(), "page-fault");
        assert_eq!(OsEventKind::Timer.to_string(), "timer");
        assert_eq!(OsEventKind::OtherInterrupt.to_string(), "interrupt");
    }

    #[test]
    fn synchronous_classification() {
        assert!(OsEventKind::Syscall.is_synchronous());
        assert!(OsEventKind::PageFault.is_synchronous());
        assert!(!OsEventKind::Timer.is_synchronous());
        assert!(!OsEventKind::OtherInterrupt.is_synchronous());
    }

    #[test]
    fn syscall_kind_maps_to_syscall_event() {
        assert_eq!(OsEventKind::from(SyscallKind::Io), OsEventKind::Syscall);
        assert_eq!(OsEventKind::from(SyscallKind::Memory), OsEventKind::Syscall);
    }

    #[test]
    fn counts_record_and_total() {
        let mut c = OsEventCounts::default();
        c.record(OsEventKind::Syscall);
        c.record(OsEventKind::Syscall);
        c.record(OsEventKind::PageFault);
        c.record(OsEventKind::Timer);
        c.record(OsEventKind::OtherInterrupt);
        assert_eq!(c.count(OsEventKind::Syscall), 2);
        assert_eq!(c.count(OsEventKind::PageFault), 1);
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = OsEventCounts {
            syscalls: 1,
            page_faults: 2,
            timer: 3,
            other_interrupts: 4,
        };
        let b = OsEventCounts {
            syscalls: 10,
            page_faults: 20,
            timer: 30,
            other_interrupts: 40,
        };
        a.merge(&b);
        assert_eq!(a.syscalls, 11);
        assert_eq!(a.page_faults, 22);
        assert_eq!(a.timer, 33);
        assert_eq!(a.other_interrupts, 44);
        assert_eq!(a.total(), 110);
    }
}
