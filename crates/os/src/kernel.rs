//! The kernel model: process/thread bookkeeping and privileged service times.

use crate::{OsEventCounts, OsEventKind, OsThread, Process, ThreadState};
use misp_types::{Arena, CostModel, Cycles, MispError, OsThreadId, ProcessId, Result};

/// The simulated OS kernel.
///
/// The kernel owns the process and thread tables and knows how long each
/// privileged service takes (from the [`CostModel`]).  It also accumulates the
/// per-category event counts that feed Table 1.
///
/// The kernel deliberately does *not* drive time itself: the machine models in
/// `misp-core` and `misp-smp` decide *when* ring transitions happen and ask
/// the kernel only for *how long* the OS stays in Ring 0 and which thread
/// should run next (via the schedulers in [`crate::SystemScheduler`]).
#[derive(Debug, Clone)]
pub struct Kernel {
    costs: CostModel,
    /// Process table — the arena hands out sequential [`ProcessId`]s, so the
    /// engine's per-step thread→process resolution stays at array-index cost.
    processes: Arena<ProcessId, Process>,
    /// Thread table, indexed by [`OsThreadId`].
    threads: Arena<OsThreadId, OsThread>,
    events: OsEventCounts,
}

impl Kernel {
    /// Creates a kernel with the given cost model and empty process table.
    #[must_use]
    pub fn new(costs: CostModel) -> Self {
        Kernel {
            costs,
            processes: Arena::new(),
            threads: Arena::new(),
            events: OsEventCounts::default(),
        }
    }

    /// The cost model in effect.
    #[must_use]
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// Creates a new process and returns its identifier.
    pub fn spawn_process(&mut self, name: impl Into<String>) -> ProcessId {
        let pid = self.processes.next_id();
        self.processes.alloc(Process::new(pid, name))
    }

    /// Creates a new thread belonging to `pid` and returns its identifier.
    ///
    /// # Panics
    ///
    /// Panics if `pid` does not name a spawned process; creating a thread in a
    /// non-existent process is a programming error in the workload setup.
    pub fn spawn_thread(&mut self, pid: ProcessId) -> OsThreadId {
        let tid = self.threads.next_id();
        let process = self
            .processes
            .get_mut(pid)
            .expect("cannot spawn a thread in an unknown process");
        process.add_thread(tid);
        self.threads.alloc(OsThread::new(tid, pid))
    }

    /// Looks up a process.
    #[must_use]
    pub fn process(&self, pid: ProcessId) -> Option<&Process> {
        self.processes.get(pid)
    }

    /// Looks up a thread.
    #[must_use]
    pub fn thread(&self, tid: OsThreadId) -> Option<&OsThread> {
        self.threads.get(tid)
    }

    /// Number of processes spawned so far.
    #[must_use]
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Number of threads spawned so far.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Updates the scheduling state of a thread.
    ///
    /// # Errors
    ///
    /// Returns [`MispError::InvalidConfiguration`] if the thread is unknown.
    pub fn set_thread_state(&mut self, tid: OsThreadId, state: ThreadState) -> Result<()> {
        let thread = self
            .threads
            .get_mut(tid)
            .ok_or_else(|| MispError::InvalidConfiguration(format!("unknown thread {tid}")))?;
        thread.set_state(state);
        Ok(())
    }

    /// Kernel (Ring 0) service time for one event of the given kind,
    /// excluding the context-switch cost (which is charged separately when a
    /// timer tick actually preempts the running thread).
    #[must_use]
    pub fn service_cost(&self, kind: OsEventKind) -> Cycles {
        match kind {
            OsEventKind::Syscall => self.costs.syscall_service,
            OsEventKind::PageFault => self.costs.page_fault_service,
            OsEventKind::Timer => self.costs.timer_service,
            OsEventKind::OtherInterrupt => self.costs.interrupt_service,
        }
    }

    /// Cost of an OS thread context switch when `ams_count` application-managed
    /// sequencer contexts must be saved and restored along with the thread
    /// (Section 2.2: the aggregate AMS save area).  The AMS states are assumed
    /// to be saved concurrently (the paper's assumption in Section 5.1), so
    /// the AMS term does not scale with the number of AMSs.
    #[must_use]
    pub fn context_switch_cost(&self, ams_count: usize) -> Cycles {
        if ams_count == 0 {
            self.costs.context_switch
        } else {
            self.costs.context_switch + self.costs.ams_state_save
        }
    }

    /// Records one privileged event (for Table 1 accounting at kernel level).
    pub fn record_event(&mut self, kind: OsEventKind) {
        self.events.record(kind);
    }

    /// The aggregate event counts recorded so far.
    #[must_use]
    pub fn event_counts(&self) -> OsEventCounts {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_process_and_threads() {
        let mut k = Kernel::new(CostModel::default());
        let p0 = k.spawn_process("a");
        let p1 = k.spawn_process("b");
        assert_ne!(p0, p1);
        let t0 = k.spawn_thread(p0);
        let t1 = k.spawn_thread(p0);
        let t2 = k.spawn_thread(p1);
        assert_eq!(k.process(p0).unwrap().threads(), &[t0, t1]);
        assert_eq!(k.process(p1).unwrap().threads(), &[t2]);
        assert_eq!(k.process_count(), 2);
        assert_eq!(k.thread_count(), 3);
        assert_eq!(k.thread(t2).unwrap().process(), p1);
    }

    #[test]
    #[should_panic(expected = "unknown process")]
    fn spawn_thread_in_unknown_process_panics() {
        let mut k = Kernel::new(CostModel::default());
        let _ = k.spawn_thread(ProcessId::new(99));
    }

    #[test]
    fn thread_state_updates() {
        let mut k = Kernel::new(CostModel::default());
        let p = k.spawn_process("a");
        let t = k.spawn_thread(p);
        k.set_thread_state(t, ThreadState::Running).unwrap();
        assert_eq!(k.thread(t).unwrap().state(), ThreadState::Running);
        assert!(k
            .set_thread_state(OsThreadId::new(77), ThreadState::Running)
            .is_err());
    }

    #[test]
    fn service_costs_come_from_cost_model() {
        let costs = CostModel::builder()
            .syscall_service(Cycles::new(11))
            .page_fault_service(Cycles::new(22))
            .timer_service(Cycles::new(33))
            .interrupt_service(Cycles::new(44))
            .build();
        let k = Kernel::new(costs);
        assert_eq!(k.service_cost(OsEventKind::Syscall), Cycles::new(11));
        assert_eq!(k.service_cost(OsEventKind::PageFault), Cycles::new(22));
        assert_eq!(k.service_cost(OsEventKind::Timer), Cycles::new(33));
        assert_eq!(k.service_cost(OsEventKind::OtherInterrupt), Cycles::new(44));
        assert_eq!(k.costs().syscall_service, Cycles::new(11));
    }

    #[test]
    fn context_switch_cost_includes_ams_save_once() {
        let costs = CostModel::builder()
            .context_switch(Cycles::new(100))
            .ams_state_save(Cycles::new(10))
            .build();
        let k = Kernel::new(costs);
        assert_eq!(k.context_switch_cost(0), Cycles::new(100));
        assert_eq!(k.context_switch_cost(1), Cycles::new(110));
        // Concurrent save: does not scale with AMS count.
        assert_eq!(k.context_switch_cost(7), Cycles::new(110));
    }

    #[test]
    fn event_recording() {
        let mut k = Kernel::new(CostModel::default());
        k.record_event(OsEventKind::Syscall);
        k.record_event(OsEventKind::Timer);
        k.record_event(OsEventKind::Timer);
        let counts = k.event_counts();
        assert_eq!(counts.syscalls, 1);
        assert_eq!(counts.timer, 2);
        assert_eq!(counts.total(), 3);
    }
}
