//! Operating-system model for the MISP simulator.
//!
//! The MISP paper runs its prototype under Windows Server 2003 configured (via
//! `/NUMPROC=1`) to see a single logical CPU, with the OS providing exactly the
//! services the evaluation measures: system-call handling, page-fault
//! handling, timer interrupts, other device interrupts, and thread context
//! switches (Table 1's serializing-event categories).  This crate models that
//! OS at the level of detail the evaluation depends on:
//!
//! * [`OsEventKind`] — the four privileged-event categories of Table 1.
//! * [`Kernel`] — process/thread bookkeeping plus the privileged service-time
//!   model (how long the OS spends in Ring 0 for each event).
//! * [`CpuScheduler`] / [`SystemScheduler`] — a per-CPU round-robin scheduler
//!   with a configurable quantum, used in the multi-programming experiments of
//!   Figure 7.
//! * [`TimerConfig`] — timer-tick and uncategorized-interrupt generation.
//!
//! # Examples
//!
//! ```
//! use misp_os::{Kernel, OsEventKind};
//! use misp_types::{CostModel, ProcessId};
//!
//! let mut kernel = Kernel::new(CostModel::default());
//! let pid = kernel.spawn_process("raytracer");
//! let tid = kernel.spawn_thread(pid);
//! assert_eq!(kernel.thread(tid).unwrap().process(), pid);
//! let service = kernel.service_cost(OsEventKind::PageFault);
//! assert!(service.as_u64() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
mod kernel;
mod process;
mod scheduler;
mod timer;

pub use event::{OsEventCounts, OsEventKind};
pub use kernel::Kernel;
pub use process::{OsThread, Process, ThreadState};
pub use scheduler::{CpuScheduler, PlacementPolicy, SystemScheduler};
pub use timer::TimerConfig;
