//! Processes and OS-visible threads.

use core::fmt;
use misp_types::{OsThreadId, ProcessId};
use serde::{Deserialize, Serialize};

/// Scheduling state of an OS thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreadState {
    /// Ready to run but not currently on a CPU.
    Ready,
    /// Currently executing on a CPU.
    Running,
    /// Blocked in the kernel (e.g. sleeping, waiting for I/O).
    Blocked,
    /// Finished.
    Exited,
}

impl fmt::Display for ThreadState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ThreadState::Ready => "ready",
            ThreadState::Running => "running",
            ThreadState::Blocked => "blocked",
            ThreadState::Exited => "exited",
        };
        f.write_str(s)
    }
}

/// An OS process: a virtual address space plus a name, owning one or more
/// threads.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Process {
    id: ProcessId,
    name: String,
    threads: Vec<OsThreadId>,
}

impl Process {
    /// Creates a process record.
    #[must_use]
    pub fn new(id: ProcessId, name: impl Into<String>) -> Self {
        Process {
            id,
            name: name.into(),
            threads: Vec::new(),
        }
    }

    /// The process identifier.
    #[must_use]
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The process name (for logs and reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Identifiers of the threads belonging to this process.
    #[must_use]
    pub fn threads(&self) -> &[OsThreadId] {
        &self.threads
    }

    pub(crate) fn add_thread(&mut self, tid: OsThreadId) {
        self.threads.push(tid);
    }
}

/// An OS-visible thread: the entity the OS scheduler manages and, under MISP,
/// the owner of a set of shreds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OsThread {
    id: OsThreadId,
    process: ProcessId,
    state: ThreadState,
}

impl OsThread {
    /// Creates a thread record in the [`ThreadState::Ready`] state.
    #[must_use]
    pub fn new(id: OsThreadId, process: ProcessId) -> Self {
        OsThread {
            id,
            process,
            state: ThreadState::Ready,
        }
    }

    /// The thread identifier.
    #[must_use]
    pub fn id(&self) -> OsThreadId {
        self.id
    }

    /// The owning process.
    #[must_use]
    pub fn process(&self) -> ProcessId {
        self.process
    }

    /// The current scheduling state.
    #[must_use]
    pub fn state(&self) -> ThreadState {
        self.state
    }

    /// Updates the scheduling state.
    pub fn set_state(&mut self, state: ThreadState) {
        self.state = state;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_thread_membership() {
        let mut p = Process::new(ProcessId::new(1), "app");
        assert_eq!(p.id(), ProcessId::new(1));
        assert_eq!(p.name(), "app");
        assert!(p.threads().is_empty());
        p.add_thread(OsThreadId::new(0));
        p.add_thread(OsThreadId::new(1));
        assert_eq!(p.threads(), &[OsThreadId::new(0), OsThreadId::new(1)]);
    }

    #[test]
    fn thread_state_transitions() {
        let mut t = OsThread::new(OsThreadId::new(3), ProcessId::new(1));
        assert_eq!(t.state(), ThreadState::Ready);
        assert_eq!(t.id(), OsThreadId::new(3));
        assert_eq!(t.process(), ProcessId::new(1));
        t.set_state(ThreadState::Running);
        assert_eq!(t.state(), ThreadState::Running);
        t.set_state(ThreadState::Exited);
        assert_eq!(t.state(), ThreadState::Exited);
    }

    #[test]
    fn thread_state_display() {
        assert_eq!(ThreadState::Ready.to_string(), "ready");
        assert_eq!(ThreadState::Running.to_string(), "running");
        assert_eq!(ThreadState::Blocked.to_string(), "blocked");
        assert_eq!(ThreadState::Exited.to_string(), "exited");
    }
}
