//! Per-CPU round-robin scheduling.

use misp_types::OsThreadId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How newly-created threads are placed onto CPUs by the
/// [`SystemScheduler`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Assign each new thread to the CPU with the fewest threads (ties broken
    /// by lowest CPU index).  This is the default OS behaviour.
    #[default]
    LeastLoaded,
    /// Assign threads to CPUs round-robin in creation order.
    RoundRobin,
    /// Threads are placed explicitly by the caller; automatic placement
    /// panics.  Used for the "ideal" configurations of Figure 7, where
    /// non-shredded applications are pinned to OMSs that have no AMSs.
    Pinned,
}

/// The run queue of a single OS-visible CPU, scheduled round-robin.
///
/// The currently-running thread is *not* stored in the queue; it is returned
/// to the back of the queue when it is preempted or yields.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuScheduler {
    ready: VecDeque<OsThreadId>,
    running: Option<OsThreadId>,
    /// Number of timer ticks the running thread has held the CPU.
    ticks_on_cpu: u64,
    /// Number of ticks in one scheduling quantum.
    quantum_ticks: u64,
    context_switches: u64,
}

impl CpuScheduler {
    /// Creates a scheduler with the given quantum, in timer ticks.
    ///
    /// # Panics
    ///
    /// Panics if `quantum_ticks` is zero.
    #[must_use]
    pub fn new(quantum_ticks: u64) -> Self {
        assert!(
            quantum_ticks > 0,
            "scheduling quantum must be at least one tick"
        );
        CpuScheduler {
            ready: VecDeque::new(),
            running: None,
            ticks_on_cpu: 0,
            quantum_ticks,
            context_switches: 0,
        }
    }

    /// Adds a thread to the back of the ready queue.
    pub fn enqueue(&mut self, tid: OsThreadId) {
        self.ready.push_back(tid);
    }

    /// The currently running thread, if any.
    #[must_use]
    pub fn running(&self) -> Option<OsThreadId> {
        self.running
    }

    /// Number of threads waiting in the ready queue (excluding the running
    /// thread).
    #[must_use]
    pub fn ready_count(&self) -> usize {
        self.ready.len()
    }

    /// Total threads assigned to this CPU (running + ready).
    #[must_use]
    pub fn load(&self) -> usize {
        self.ready.len() + usize::from(self.running.is_some())
    }

    /// Number of involuntary context switches performed so far.
    #[must_use]
    pub fn context_switches(&self) -> u64 {
        self.context_switches
    }

    /// If no thread is running, dispatches the next ready thread.  Returns the
    /// newly dispatched thread, or `None` if the CPU stays idle or a thread
    /// was already running.
    pub fn dispatch(&mut self) -> Option<OsThreadId> {
        if self.running.is_some() {
            return None;
        }
        self.running = self.ready.pop_front();
        self.ticks_on_cpu = 0;
        self.running
    }

    /// Handles a timer tick.  If the running thread has exhausted its quantum
    /// and another thread is ready, the running thread is preempted (moved to
    /// the back of the ready queue) and the next thread is dispatched.
    ///
    /// Returns `Some((previous, next))` when a context switch happened.
    pub fn on_tick(&mut self) -> Option<(OsThreadId, OsThreadId)> {
        let running = self.running?;
        self.ticks_on_cpu += 1;
        if self.ticks_on_cpu >= self.quantum_ticks && !self.ready.is_empty() {
            let next = self.ready.pop_front().expect("checked non-empty");
            self.ready.push_back(running);
            self.running = Some(next);
            self.ticks_on_cpu = 0;
            self.context_switches += 1;
            Some((running, next))
        } else {
            None
        }
    }

    /// Removes the running thread (it blocked or exited).  The CPU becomes
    /// idle until [`CpuScheduler::dispatch`] is called.
    ///
    /// Returns the thread that was running, if any.
    pub fn remove_running(&mut self) -> Option<OsThreadId> {
        self.ticks_on_cpu = 0;
        self.running.take()
    }

    /// Removes a thread from the ready queue (it exited while waiting or is
    /// being migrated).  Returns `true` if the thread was present.
    pub fn remove_ready(&mut self, tid: OsThreadId) -> bool {
        if let Some(pos) = self.ready.iter().position(|t| *t == tid) {
            self.ready.remove(pos);
            true
        } else {
            false
        }
    }

    /// Iterates over the ready queue from front (next to run) to back.
    pub fn iter_ready(&self) -> impl Iterator<Item = OsThreadId> + '_ {
        self.ready.iter().copied()
    }
}

/// Scheduling state for a whole machine: one [`CpuScheduler`] per OS-visible
/// CPU plus a thread-placement policy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemScheduler {
    cpus: Vec<CpuScheduler>,
    policy: PlacementPolicy,
    next_round_robin: usize,
}

impl SystemScheduler {
    /// Creates a scheduler for `cpu_count` CPUs with the given quantum and
    /// placement policy.
    ///
    /// # Panics
    ///
    /// Panics if `cpu_count` is zero.
    #[must_use]
    pub fn new(cpu_count: usize, quantum_ticks: u64, policy: PlacementPolicy) -> Self {
        assert!(cpu_count > 0, "a machine needs at least one OS-visible CPU");
        SystemScheduler {
            cpus: (0..cpu_count)
                .map(|_| CpuScheduler::new(quantum_ticks))
                .collect(),
            policy,
            next_round_robin: 0,
        }
    }

    /// Number of OS-visible CPUs.
    #[must_use]
    pub fn cpu_count(&self) -> usize {
        self.cpus.len()
    }

    /// The placement policy in effect.
    #[must_use]
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Access the scheduler of CPU `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn cpu(&self, cpu: usize) -> &CpuScheduler {
        &self.cpus[cpu]
    }

    /// Mutable access to the scheduler of CPU `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn cpu_mut(&mut self, cpu: usize) -> &mut CpuScheduler {
        &mut self.cpus[cpu]
    }

    /// Places a new thread on a CPU according to the placement policy and
    /// enqueues it.  Returns the chosen CPU index.
    ///
    /// # Panics
    ///
    /// Panics if the policy is [`PlacementPolicy::Pinned`]; pinned threads
    /// must be placed with [`SystemScheduler::place_on`].
    pub fn place(&mut self, tid: OsThreadId) -> usize {
        let cpu = match self.policy {
            PlacementPolicy::LeastLoaded => self
                .cpus
                .iter()
                .enumerate()
                .min_by_key(|(i, c)| (c.load(), *i))
                .map(|(i, _)| i)
                .expect("at least one CPU"),
            PlacementPolicy::RoundRobin => {
                let cpu = self.next_round_robin % self.cpus.len();
                self.next_round_robin += 1;
                cpu
            }
            PlacementPolicy::Pinned => {
                panic!("automatic placement is disabled under the pinned policy")
            }
        };
        self.cpus[cpu].enqueue(tid);
        cpu
    }

    /// Places a thread on an explicit CPU, regardless of policy.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn place_on(&mut self, tid: OsThreadId, cpu: usize) {
        assert!(cpu < self.cpus.len(), "CPU index out of range");
        self.cpus[cpu].enqueue(tid);
    }

    /// Total number of ready or running threads across all CPUs.
    #[must_use]
    pub fn total_load(&self) -> usize {
        self.cpus.iter().map(CpuScheduler::load).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> OsThreadId {
        OsThreadId::new(i)
    }

    #[test]
    #[should_panic(expected = "quantum must be at least one tick")]
    fn zero_quantum_panics() {
        let _ = CpuScheduler::new(0);
    }

    #[test]
    fn dispatch_and_round_robin_preemption() {
        let mut s = CpuScheduler::new(1);
        s.enqueue(t(0));
        s.enqueue(t(1));
        assert_eq!(s.dispatch(), Some(t(0)));
        assert_eq!(s.running(), Some(t(0)));
        assert_eq!(s.dispatch(), None, "dispatch is a no-op while running");
        // Quantum of 1: first tick preempts because another thread is ready.
        assert_eq!(s.on_tick(), Some((t(0), t(1))));
        assert_eq!(s.running(), Some(t(1)));
        assert_eq!(s.on_tick(), Some((t(1), t(0))));
        assert_eq!(s.context_switches(), 2);
    }

    #[test]
    fn no_preemption_when_alone() {
        let mut s = CpuScheduler::new(1);
        s.enqueue(t(0));
        s.dispatch();
        for _ in 0..10 {
            assert_eq!(s.on_tick(), None);
        }
        assert_eq!(s.context_switches(), 0);
    }

    #[test]
    fn quantum_longer_than_one_tick() {
        let mut s = CpuScheduler::new(3);
        s.enqueue(t(0));
        s.enqueue(t(1));
        s.dispatch();
        assert_eq!(s.on_tick(), None);
        assert_eq!(s.on_tick(), None);
        assert_eq!(
            s.on_tick(),
            Some((t(0), t(1))),
            "third tick expires the quantum"
        );
    }

    #[test]
    fn tick_on_idle_cpu_is_noop() {
        let mut s = CpuScheduler::new(1);
        assert_eq!(s.on_tick(), None);
        assert_eq!(s.dispatch(), None);
    }

    #[test]
    fn remove_running_and_ready() {
        let mut s = CpuScheduler::new(1);
        s.enqueue(t(0));
        s.enqueue(t(1));
        s.dispatch();
        assert_eq!(s.remove_running(), Some(t(0)));
        assert_eq!(s.running(), None);
        assert!(s.remove_ready(t(1)));
        assert!(!s.remove_ready(t(1)));
        assert_eq!(s.load(), 0);
    }

    #[test]
    fn least_loaded_placement() {
        let mut sys = SystemScheduler::new(3, 1, PlacementPolicy::LeastLoaded);
        assert_eq!(sys.place(t(0)), 0);
        assert_eq!(sys.place(t(1)), 1);
        assert_eq!(sys.place(t(2)), 2);
        assert_eq!(sys.place(t(3)), 0, "wraps to least loaded (ties by index)");
        assert_eq!(sys.total_load(), 4);
        assert_eq!(sys.cpu_count(), 3);
    }

    #[test]
    fn round_robin_placement() {
        let mut sys = SystemScheduler::new(2, 1, PlacementPolicy::RoundRobin);
        assert_eq!(sys.place(t(0)), 0);
        assert_eq!(sys.place(t(1)), 1);
        assert_eq!(sys.place(t(2)), 0);
        assert_eq!(sys.policy(), PlacementPolicy::RoundRobin);
    }

    #[test]
    #[should_panic(expected = "pinned policy")]
    fn pinned_policy_rejects_auto_placement() {
        let mut sys = SystemScheduler::new(2, 1, PlacementPolicy::Pinned);
        let _ = sys.place(t(0));
    }

    #[test]
    fn pinned_placement_explicit() {
        let mut sys = SystemScheduler::new(2, 1, PlacementPolicy::Pinned);
        sys.place_on(t(0), 1);
        assert_eq!(sys.cpu(1).ready_count(), 1);
        assert_eq!(sys.cpu(0).ready_count(), 0);
        assert_eq!(sys.cpu_mut(1).dispatch(), Some(t(0)));
    }

    #[test]
    fn iter_ready_order() {
        let mut s = CpuScheduler::new(1);
        s.enqueue(t(5));
        s.enqueue(t(6));
        let order: Vec<OsThreadId> = s.iter_ready().collect();
        assert_eq!(order, vec![t(5), t(6)]);
    }
}
