//! Timer-interrupt configuration.

use misp_types::Cycles;
use serde::{Deserialize, Serialize};

/// Configuration of asynchronous interrupt sources on an OS-visible CPU.
///
/// Every OS-visible CPU receives a periodic timer interrupt (the scheduler
/// tick) and, less frequently, uncategorized device interrupts — the "Timer"
/// and "Interrupt" columns of Table 1.  In the paper's measurements the
/// uncategorized interrupts arrive at roughly one tenth of the timer rate,
/// which is the default modeled here.
///
/// # Examples
///
/// ```
/// use misp_os::TimerConfig;
/// use misp_types::Cycles;
///
/// let cfg = TimerConfig::new(Cycles::new(1_000), 10);
/// assert_eq!(cfg.next_tick_after(Cycles::new(0)), Cycles::new(1_000));
/// assert!(cfg.is_other_interrupt_tick(10));
/// assert!(!cfg.is_other_interrupt_tick(11));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimerConfig {
    interval: Cycles,
    /// Every `other_interrupt_period`-th tick also delivers an uncategorized
    /// device interrupt; zero disables them.
    other_interrupt_period: u64,
}

impl TimerConfig {
    /// Creates a timer configuration.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero cycles.
    #[must_use]
    pub fn new(interval: Cycles, other_interrupt_period: u64) -> Self {
        assert!(!interval.is_zero(), "timer interval must be non-zero");
        TimerConfig {
            interval,
            other_interrupt_period,
        }
    }

    /// A configuration that never fires (both sources disabled), for
    /// experiments isolating program-driven events.
    #[must_use]
    pub fn disabled() -> Self {
        TimerConfig {
            interval: Cycles::MAX,
            other_interrupt_period: 0,
        }
    }

    /// The tick interval.
    #[must_use]
    pub fn interval(&self) -> Cycles {
        self.interval
    }

    /// The period (in ticks) of uncategorized device interrupts; zero means
    /// disabled.
    #[must_use]
    pub fn other_interrupt_period(&self) -> u64 {
        self.other_interrupt_period
    }

    /// The absolute time of the next tick strictly after `now`.
    #[must_use]
    pub fn next_tick_after(&self, now: Cycles) -> Cycles {
        if self.interval == Cycles::MAX {
            return Cycles::MAX;
        }
        let n = now.as_u64() / self.interval.as_u64() + 1;
        Cycles::new(n * self.interval.as_u64())
    }

    /// Returns `true` if the `tick_number`-th tick (1-based) also carries an
    /// uncategorized device interrupt.
    #[must_use]
    pub fn is_other_interrupt_tick(&self, tick_number: u64) -> bool {
        self.other_interrupt_period != 0
            && tick_number != 0
            && tick_number.is_multiple_of(self.other_interrupt_period)
    }
}

impl Default for TimerConfig {
    /// One tick every 3,000,000 cycles (1 ms at 3 GHz) and an uncategorized
    /// interrupt every 10 ticks, matching the ratio observed in Table 1.
    fn default() -> Self {
        TimerConfig::new(Cycles::new(3_000_000), 10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_interval_panics() {
        let _ = TimerConfig::new(Cycles::ZERO, 10);
    }

    #[test]
    fn next_tick_computation() {
        let cfg = TimerConfig::new(Cycles::new(100), 0);
        assert_eq!(cfg.next_tick_after(Cycles::new(0)), Cycles::new(100));
        assert_eq!(cfg.next_tick_after(Cycles::new(99)), Cycles::new(100));
        assert_eq!(cfg.next_tick_after(Cycles::new(100)), Cycles::new(200));
        assert_eq!(cfg.next_tick_after(Cycles::new(101)), Cycles::new(200));
    }

    #[test]
    fn other_interrupt_period() {
        let cfg = TimerConfig::new(Cycles::new(100), 3);
        assert!(!cfg.is_other_interrupt_tick(1));
        assert!(!cfg.is_other_interrupt_tick(2));
        assert!(cfg.is_other_interrupt_tick(3));
        assert!(cfg.is_other_interrupt_tick(6));
        assert!(!cfg.is_other_interrupt_tick(0));
        let none = TimerConfig::new(Cycles::new(100), 0);
        assert!(!none.is_other_interrupt_tick(3));
    }

    #[test]
    fn disabled_never_ticks() {
        let cfg = TimerConfig::disabled();
        assert_eq!(cfg.next_tick_after(Cycles::new(12345)), Cycles::MAX);
        assert!(!cfg.is_other_interrupt_tick(100));
    }

    #[test]
    fn default_ratio_matches_table1_shape() {
        let cfg = TimerConfig::default();
        assert_eq!(cfg.interval(), Cycles::new(3_000_000));
        assert_eq!(cfg.other_interrupt_period(), 10);
    }
}
