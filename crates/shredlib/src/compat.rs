//! Legacy threading API compatibility mappings.
//!
//! Section 5.5 and Table 2 of the paper show that legacy multithreaded
//! software ports to MISP with very little effort because ShredLib provides a
//! thread-to-shred API mapping: most applications only include a single header
//! and recompile.  This module reproduces that mapping as data — for each
//! legacy API function we record the ShredLib primitive it translates to — and
//! provides a coverage report used by the Table 2 experiment harness to
//! quantify how mechanically an application's threading-API usage can be
//! translated.

use serde::Serialize;

/// A legacy threading API family supported by the compatibility layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum LegacyApi {
    /// POSIX Threads (`pthread_*`, `sem_*`).
    Pthreads,
    /// Win32 threading (`CreateThread`, critical sections, events, TLS).
    Win32,
    /// The OpenMP runtime entry points emitted by the Intel compilers.
    OpenMp,
}

impl LegacyApi {
    /// All supported API families.
    #[must_use]
    pub const fn all() -> [LegacyApi; 3] {
        [LegacyApi::Pthreads, LegacyApi::Win32, LegacyApi::OpenMp]
    }
}

/// One entry of the thread-to-shred mapping table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct MappingEntry {
    /// The API family the legacy function belongs to.
    pub api: LegacyApi,
    /// The legacy function name.
    pub legacy: &'static str,
    /// The ShredLib primitive it maps onto.
    pub shredlib: &'static str,
    /// `true` when the translation is purely mechanical (a one-line macro or
    /// function alias); `false` when the port needs structural attention, like
    /// the blocking-I/O main thread the paper had to restructure in the Open
    /// Dynamics Engine.
    pub mechanical: bool,
}

/// The static thread-to-shred mapping table.
static MAPPINGS: &[MappingEntry] = &[
    // --- POSIX Threads -----------------------------------------------------
    MappingEntry {
        api: LegacyApi::Pthreads,
        legacy: "pthread_create",
        shredlib: "shred_create",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Pthreads,
        legacy: "pthread_join",
        shredlib: "shred_join",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Pthreads,
        legacy: "pthread_exit",
        shredlib: "shred_exit",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Pthreads,
        legacy: "pthread_self",
        shredlib: "shred_self",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Pthreads,
        legacy: "pthread_yield",
        shredlib: "shred_yield",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Pthreads,
        legacy: "sched_yield",
        shredlib: "shred_yield",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Pthreads,
        legacy: "pthread_mutex_init",
        shredlib: "shred_mutex_init",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Pthreads,
        legacy: "pthread_mutex_lock",
        shredlib: "shred_mutex_lock",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Pthreads,
        legacy: "pthread_mutex_trylock",
        shredlib: "shred_mutex_trylock",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Pthreads,
        legacy: "pthread_mutex_unlock",
        shredlib: "shred_mutex_unlock",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Pthreads,
        legacy: "pthread_mutex_destroy",
        shredlib: "shred_mutex_destroy",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Pthreads,
        legacy: "pthread_cond_init",
        shredlib: "shred_cond_init",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Pthreads,
        legacy: "pthread_cond_wait",
        shredlib: "shred_cond_wait",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Pthreads,
        legacy: "pthread_cond_signal",
        shredlib: "shred_cond_signal",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Pthreads,
        legacy: "pthread_cond_broadcast",
        shredlib: "shred_cond_broadcast",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Pthreads,
        legacy: "pthread_barrier_init",
        shredlib: "shred_barrier_init",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Pthreads,
        legacy: "pthread_barrier_wait",
        shredlib: "shred_barrier_wait",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Pthreads,
        legacy: "pthread_key_create",
        shredlib: "shred_local_alloc",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Pthreads,
        legacy: "pthread_setspecific",
        shredlib: "shred_local_set",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Pthreads,
        legacy: "pthread_getspecific",
        shredlib: "shred_local_get",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Pthreads,
        legacy: "sem_init",
        shredlib: "shred_sem_init",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Pthreads,
        legacy: "sem_wait",
        shredlib: "shred_sem_wait",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Pthreads,
        legacy: "sem_post",
        shredlib: "shred_sem_post",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Pthreads,
        legacy: "pthread_attr_setaffinity_np",
        shredlib: "shred_affinity_hint",
        mechanical: false,
    },
    // --- Win32 Threads -----------------------------------------------------
    MappingEntry {
        api: LegacyApi::Win32,
        legacy: "CreateThread",
        shredlib: "shred_create",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Win32,
        legacy: "_beginthreadex",
        shredlib: "shred_create",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Win32,
        legacy: "ExitThread",
        shredlib: "shred_exit",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Win32,
        legacy: "WaitForSingleObject",
        shredlib: "shred_join / shred_event_wait",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Win32,
        legacy: "WaitForMultipleObjects",
        shredlib: "shred_join_all",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Win32,
        legacy: "InitializeCriticalSection",
        shredlib: "shred_mutex_init",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Win32,
        legacy: "EnterCriticalSection",
        shredlib: "shred_mutex_lock",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Win32,
        legacy: "TryEnterCriticalSection",
        shredlib: "shred_mutex_trylock",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Win32,
        legacy: "LeaveCriticalSection",
        shredlib: "shred_mutex_unlock",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Win32,
        legacy: "CreateSemaphore",
        shredlib: "shred_sem_init",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Win32,
        legacy: "ReleaseSemaphore",
        shredlib: "shred_sem_post",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Win32,
        legacy: "CreateEvent",
        shredlib: "shred_event_init",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Win32,
        legacy: "SetEvent",
        shredlib: "shred_event_set",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Win32,
        legacy: "ResetEvent",
        shredlib: "shred_event_reset",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Win32,
        legacy: "TlsAlloc",
        shredlib: "shred_local_alloc",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Win32,
        legacy: "TlsSetValue",
        shredlib: "shred_local_set",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Win32,
        legacy: "TlsGetValue",
        shredlib: "shred_local_get",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::Win32,
        legacy: "Sleep",
        shredlib: "shred_yield (loop)",
        mechanical: false,
    },
    MappingEntry {
        api: LegacyApi::Win32,
        legacy: "SetThreadPriority",
        shredlib: "scheduler policy hint",
        mechanical: false,
    },
    MappingEntry {
        api: LegacyApi::Win32,
        legacy: "GetMessage",
        shredlib: "native OS thread required",
        mechanical: false,
    },
    // --- OpenMP ------------------------------------------------------------
    MappingEntry {
        api: LegacyApi::OpenMp,
        legacy: "__kmp_fork_call",
        shredlib: "shred_create (per team member)",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::OpenMp,
        legacy: "__kmp_join_call",
        shredlib: "shred_barrier_wait",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::OpenMp,
        legacy: "omp_get_thread_num",
        shredlib: "shred_self",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::OpenMp,
        legacy: "omp_get_num_threads",
        shredlib: "sequencer_count",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::OpenMp,
        legacy: "omp_set_lock",
        shredlib: "shred_mutex_lock",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::OpenMp,
        legacy: "omp_unset_lock",
        shredlib: "shred_mutex_unlock",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::OpenMp,
        legacy: "#pragma omp parallel",
        shredlib: "shredded team region",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::OpenMp,
        legacy: "#pragma omp critical",
        shredlib: "shred_mutex pair",
        mechanical: true,
    },
    MappingEntry {
        api: LegacyApi::OpenMp,
        legacy: "#pragma omp barrier",
        shredlib: "shred_barrier_wait",
        mechanical: true,
    },
];

/// Coverage of one application's legacy API usage by the ShredLib mapping.
#[derive(Debug, Clone, Serialize)]
pub struct CoverageReport {
    /// Functions translated mechanically (header + recompile).
    pub mechanical: Vec<&'static str>,
    /// Functions with a mapping that needs structural attention.
    pub structural: Vec<String>,
    /// Functions with no mapping at all.
    pub unmapped: Vec<String>,
}

impl CoverageReport {
    /// Total number of API uses analysed.
    #[must_use]
    pub fn total(&self) -> usize {
        self.mechanical.len() + self.structural.len() + self.unmapped.len()
    }

    /// Fraction of uses that port mechanically, in `[0, 1]`.
    #[must_use]
    pub fn mechanical_fraction(&self) -> f64 {
        if self.total() == 0 {
            return 1.0;
        }
        self.mechanical.len() as f64 / self.total() as f64
    }
}

/// Looks up the ShredLib primitive a legacy function maps to.
#[must_use]
pub fn lookup(function: &str) -> Option<&'static MappingEntry> {
    MAPPINGS.iter().find(|m| m.legacy == function)
}

/// All mapping entries for one API family.
#[must_use]
pub fn entries(api: LegacyApi) -> Vec<&'static MappingEntry> {
    MAPPINGS.iter().filter(|m| m.api == api).collect()
}

/// Analyses an application's list of legacy API uses and reports how much of
/// it the thread-to-shred mapping covers.
#[must_use]
pub fn coverage<'a>(functions: impl IntoIterator<Item = &'a str>) -> CoverageReport {
    let mut report = CoverageReport {
        mechanical: Vec::new(),
        structural: Vec::new(),
        unmapped: Vec::new(),
    };
    for f in functions {
        match lookup(f) {
            Some(entry) if entry.mechanical => report.mechanical.push(entry.legacy),
            Some(entry) => report.structural.push(entry.legacy.to_string()),
            None => report.unmapped.push(f.to_string()),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pthread_core_functions_are_mapped() {
        for f in [
            "pthread_create",
            "pthread_join",
            "pthread_mutex_lock",
            "pthread_cond_wait",
            "sem_post",
            "pthread_barrier_wait",
        ] {
            let entry = lookup(f).unwrap_or_else(|| panic!("{f} must be mapped"));
            assert!(entry.mechanical, "{f} should be a mechanical translation");
            assert!(entry.shredlib.starts_with("shred"));
        }
    }

    #[test]
    fn win32_and_openmp_families_are_populated() {
        assert!(entries(LegacyApi::Win32).len() >= 15);
        assert!(entries(LegacyApi::OpenMp).len() >= 8);
        assert!(entries(LegacyApi::Pthreads).len() >= 20);
        assert_eq!(LegacyApi::all().len(), 3);
    }

    #[test]
    fn coverage_classifies_uses() {
        let report = coverage([
            "pthread_create",
            "pthread_mutex_lock",
            "GetMessage",
            "my_custom_pool_api",
        ]);
        assert_eq!(report.mechanical.len(), 2);
        assert_eq!(report.structural, vec!["GetMessage".to_string()]);
        assert_eq!(report.unmapped, vec!["my_custom_pool_api".to_string()]);
        assert_eq!(report.total(), 4);
        assert!((report.mechanical_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_coverage_is_fully_mechanical() {
        let report = coverage(std::iter::empty());
        assert_eq!(report.total(), 0);
        assert_eq!(report.mechanical_fraction(), 1.0);
    }

    #[test]
    fn unknown_function_lookup_is_none() {
        assert!(lookup("CreateFiber").is_none());
    }
}
