//! The work-queue gang scheduler (Figure 3 of the paper).

use crate::service::{Admission, ServiceState};
use crate::{SchedulingPolicy, ServiceModel, SyncTable, WorkQueue};
use misp_isa::{ProgramRef, RuntimeOp};
use misp_sim::{EngineCore, Runtime, RuntimeOutcome, ShredStatus};
use misp_types::{ArenaMap, Cycles, LockId, OsThreadId, ProcessId, SequencerId, ShredId};

/// Builder for [`GangScheduler`].
#[derive(Debug, Default, Clone)]
pub struct GangSchedulerBuilder {
    policy: SchedulingPolicy,
    main_program: Option<ProgramRef>,
    thread_program: Option<ProgramRef>,
    initial_shreds: Vec<ProgramRef>,
    barriers: Vec<(LockId, usize)>,
    semaphores: Vec<(LockId, u64)>,
    events: Vec<(LockId, bool)>,
    service: Option<ServiceModel>,
}

impl GangSchedulerBuilder {
    /// Selects the work-queue scheduling policy.
    #[must_use]
    pub fn policy(mut self, policy: SchedulingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The program run by the process's first OS thread (the "main" shred that
    /// typically registers the proxy handler and creates worker shreds).
    #[must_use]
    pub fn main_program(mut self, program: ProgramRef) -> Self {
        self.main_program = Some(program);
        self
    }

    /// The program run by each *additional* OS thread of the process (for
    /// multi-threaded MISP MP applications where each thread drives one MISP
    /// processor).  If unset, additional threads simply pull shreds from the
    /// shared work queue.
    #[must_use]
    pub fn thread_program(mut self, program: ProgramRef) -> Self {
        self.thread_program = Some(program);
        self
    }

    /// Adds a shred to the work queue before execution starts.
    #[must_use]
    pub fn initial_shred(mut self, program: ProgramRef) -> Self {
        self.initial_shreds.push(program);
        self
    }

    /// Pre-registers a barrier.
    #[must_use]
    pub fn barrier(mut self, id: LockId, parties: usize) -> Self {
        self.barriers.push((id, parties));
        self
    }

    /// Pre-registers a counting semaphore.
    #[must_use]
    pub fn semaphore(mut self, id: LockId, initial: u64) -> Self {
        self.semaphores.push((id, initial));
        self
    }

    /// Pre-registers an event object.
    #[must_use]
    pub fn event(mut self, id: LockId, signaled: bool) -> Self {
        self.events.push((id, signaled));
        self
    }

    /// Attaches an open-loop [`ServiceModel`]: every `ShredCreate` becomes a
    /// request admission measured against the model's arrival schedule.
    #[must_use]
    pub fn service(mut self, model: ServiceModel) -> Self {
        self.service = Some(model);
        self
    }

    /// Finishes the builder.
    #[must_use]
    pub fn build(self) -> GangScheduler {
        let mut sync = SyncTable::new();
        for &(id, parties) in &self.barriers {
            sync.create_barrier(id, parties);
        }
        for &(id, initial) in &self.semaphores {
            sync.create_semaphore(id, initial);
        }
        for &(id, signaled) in &self.events {
            sync.create_event(id, signaled);
        }
        GangScheduler {
            policy: self.policy,
            main_program: self.main_program,
            thread_program: self.thread_program,
            initial_shreds: self.initial_shreds,
            queue: WorkQueue::new(self.policy),
            sync,
            joiners: ArenaMap::new(),
            process: None,
            threads: Vec::new(),
            shreds_created: 0,
            service: self.service.map(ServiceState::new),
        }
    }
}

/// The ShredLib M:N gang scheduler.
///
/// The scheduler owns the process's mutex-protected work queue of ready shred
/// continuations and its synchronization objects.  Every sequencer that runs
/// out of work asks the scheduler for the next ready shred — exactly the
/// `Run_shred` loop of Figure 3 — and every runtime operation a shred performs
/// (create, exit, yield, join, lock, …) is interpreted here.
///
/// The same scheduler runs unchanged on the SMP baseline, where it plays the
/// role of a conventional user-level thread-pool runtime; this mirrors the
/// paper's methodology of running the same shredded workload on both machines.
#[derive(Debug)]
pub struct GangScheduler {
    policy: SchedulingPolicy,
    main_program: Option<ProgramRef>,
    thread_program: Option<ProgramRef>,
    initial_shreds: Vec<ProgramRef>,
    queue: WorkQueue,
    sync: SyncTable,
    joiners: ArenaMap<ShredId, Vec<ShredId>>,
    process: Option<ProcessId>,
    threads: Vec<OsThreadId>,
    shreds_created: u64,
    service: Option<ServiceState>,
}

impl GangScheduler {
    /// Starts building a gang scheduler.
    #[must_use]
    pub fn builder() -> GangSchedulerBuilder {
        GangSchedulerBuilder::default()
    }

    /// The scheduling policy in effect.
    #[must_use]
    pub fn policy(&self) -> SchedulingPolicy {
        self.policy
    }

    /// Number of shreds created so far.
    #[must_use]
    pub fn shreds_created(&self) -> u64 {
        self.shreds_created
    }

    /// Number of times shreds blocked on contended synchronization objects.
    #[must_use]
    pub fn contention_events(&self) -> u64 {
        self.sync.contention_events()
    }

    /// The deepest the ready queue has been.
    #[must_use]
    pub fn max_queue_depth(&self) -> usize {
        self.queue.max_depth()
    }

    fn wake_all(&self, core: &mut EngineCore, now: Cycles) {
        let Some(pid) = self.process else { return };
        let threads: Vec<OsThreadId> = core
            .kernel()
            .process(pid)
            .map(|p| p.threads().to_vec())
            .unwrap_or_default();
        for t in threads {
            core.wake_thread_sequencers(t, now);
        }
    }

    fn create_and_queue(
        &mut self,
        core: &mut EngineCore,
        thread: OsThreadId,
        program: ProgramRef,
        now: Cycles,
    ) -> ShredId {
        let pid = self.process.expect("process recorded at thread start");
        let shred = core.create_shred(pid, thread, program, now);
        self.shreds_created += 1;
        self.queue.push(shred);
        shred
    }

    fn make_ready(&mut self, core: &mut EngineCore, shreds: &[ShredId], now: Cycles) {
        for &id in shreds {
            if let Some(s) = core.shred_mut(id) {
                s.set_status(ShredStatus::Ready);
            }
            self.queue.push(id);
        }
        if !shreds.is_empty() {
            self.wake_all(core, now);
        }
    }
}

impl Runtime for GangScheduler {
    fn on_thread_start(&mut self, core: &mut EngineCore, thread: OsThreadId, now: Cycles) {
        let pid = core
            .kernel()
            .thread(thread)
            .expect("thread must exist")
            .process();
        if self.process.is_none() {
            self.process = Some(pid);
        }
        debug_assert_eq!(self.process, Some(pid), "one scheduler serves one process");
        let first_thread = self.threads.is_empty();
        self.threads.push(thread);

        if first_thread {
            if let Some(main) = self.main_program {
                self.create_and_queue(core, thread, main, now);
            }
            let initial = std::mem::take(&mut self.initial_shreds);
            for program in initial {
                self.create_and_queue(core, thread, program, now);
            }
        } else if let Some(program) = self.thread_program {
            self.create_and_queue(core, thread, program, now);
        }
        self.wake_all(core, now);
    }

    fn next_shred(
        &mut self,
        core: &mut EngineCore,
        _seq: SequencerId,
        _thread: OsThreadId,
        _now: Cycles,
    ) -> Option<ShredId> {
        // Peek-then-pop until a genuinely ready shred is found (shreds started
        // directly via SIGNAL may already be running).  A ready request shred
        // gated out by a full service pool stays at the head — head-of-line
        // FIFO blocking — so the sequencer idles until a slot frees.
        while let Some(candidate) = self.queue.peek() {
            match core.shred(candidate).map(|s| s.status()) {
                Some(ShredStatus::Ready) => {
                    if let Some(service) = &mut self.service {
                        if !service.may_dispatch(candidate) {
                            return None;
                        }
                        service.dispatched(candidate);
                    }
                    let popped = self.queue.pop();
                    debug_assert_eq!(popped, Some(candidate));
                    return Some(candidate);
                }
                _ => {
                    self.queue.pop();
                }
            }
        }
        None
    }

    fn on_runtime_op(
        &mut self,
        core: &mut EngineCore,
        _seq: SequencerId,
        shred: ShredId,
        op: &RuntimeOp,
        now: Cycles,
    ) -> RuntimeOutcome {
        let lock_cost = core.costs().queue_lock;
        let switch_cost = core.costs().shred_context_switch;
        match op {
            RuntimeOp::ShredCreate { program } => {
                // Under a service model the create is an admission decision:
                // a full bounded queue drops the request without a shred.
                let admission = match &mut self.service {
                    Some(service) => service.admit(now),
                    None => Admission::Untracked,
                };
                if admission == Admission::Drop {
                    return RuntimeOutcome::Continue { cost: lock_cost };
                }
                let thread = core
                    .shred(shred)
                    .map(|s| s.thread())
                    .expect("executing shred exists");
                let created = self.create_and_queue(core, thread, *program, now);
                if let (Some(service), Admission::Admit { index }) = (&mut self.service, admission)
                {
                    service.register(created, index);
                }
                self.wake_all(core, now);
                RuntimeOutcome::Continue { cost: lock_cost }
            }
            RuntimeOp::ShredExit => {
                self.complete_request(core, shred, now);
                let joiners = self.joiners.remove(shred).unwrap_or_default();
                self.make_ready(core, &joiners, now);
                RuntimeOutcome::Exit { cost: switch_cost }
            }
            RuntimeOp::ShredYield => {
                self.queue.push(shred);
                RuntimeOutcome::Yield { cost: lock_cost }
            }
            RuntimeOp::ShredJoin { target } => {
                let done = core
                    .shred(*target)
                    .map(|s| s.status() == ShredStatus::Done)
                    .unwrap_or(false);
                if done {
                    RuntimeOutcome::Continue { cost: lock_cost }
                } else {
                    self.joiners
                        .get_or_insert_with(*target, Vec::new)
                        .push(shred);
                    RuntimeOutcome::Block { cost: lock_cost }
                }
            }
            RuntimeOp::MutexLock(id) => {
                self.apply_sync(core, now, lock_cost, |sync| sync.mutex_lock(*id, shred))
            }
            RuntimeOp::MutexUnlock(id) => {
                self.apply_sync(core, now, lock_cost, |sync| sync.mutex_unlock(*id, shred))
            }
            RuntimeOp::SemWait(id) => {
                self.apply_sync(core, now, lock_cost, |sync| sync.sem_wait(*id, shred))
            }
            RuntimeOp::SemPost(id) => {
                self.apply_sync(core, now, lock_cost, |sync| sync.sem_post(*id))
            }
            RuntimeOp::CondWait { cond, mutex } => self.apply_sync(core, now, lock_cost, |sync| {
                sync.cond_wait(*cond, *mutex, shred)
            }),
            RuntimeOp::CondSignal(id) => {
                self.apply_sync(core, now, lock_cost, |sync| sync.cond_signal(*id))
            }
            RuntimeOp::CondBroadcast(id) => {
                self.apply_sync(core, now, lock_cost, |sync| sync.cond_broadcast(*id))
            }
            RuntimeOp::BarrierWait(id) => {
                self.apply_sync(core, now, lock_cost, |sync| sync.barrier_wait(*id, shred))
            }
            RuntimeOp::EventWait(id) => {
                self.apply_sync(core, now, lock_cost, |sync| sync.event_wait(*id, shred))
            }
            RuntimeOp::EventSet(id) => {
                self.apply_sync(core, now, lock_cost, |sync| sync.event_set(*id))
            }
            RuntimeOp::EventReset(id) => {
                self.apply_sync(core, now, lock_cost, |sync| sync.event_reset(*id))
            }
        }
    }

    fn on_shred_halt(
        &mut self,
        core: &mut EngineCore,
        _seq: SequencerId,
        shred: ShredId,
        now: Cycles,
    ) {
        self.complete_request(core, shred, now);
        let joiners = self.joiners.remove(shred).unwrap_or_default();
        self.make_ready(core, &joiners, now);
    }

    fn is_finished(&self, core: &EngineCore) -> bool {
        match self.process {
            Some(pid) => self.shreds_created > 0 && core.shreds().process_done(pid),
            None => false,
        }
    }

    fn service_stats(&self) -> Option<&misp_sim::ServiceStats> {
        self.service.as_ref().map(ServiceState::stats)
    }
}

impl GangScheduler {
    /// If `shred` is a tracked request, records its completion and wakes all
    /// sequencers: a freed pool slot may unblock the head of the ready queue
    /// on a sequencer that went idle under head-of-line gating.
    fn complete_request(&mut self, core: &mut EngineCore, shred: ShredId, now: Cycles) {
        if let Some(service) = &mut self.service {
            if service.complete(shred, now) {
                self.wake_all(core, now);
            }
        }
    }

    fn apply_sync(
        &mut self,
        core: &mut EngineCore,
        now: Cycles,
        cost: Cycles,
        f: impl FnOnce(&mut SyncTable) -> misp_types::Result<crate::sync::SyncOutcome>,
    ) -> RuntimeOutcome {
        let outcome = f(&mut self.sync)
            .unwrap_or_else(|e| panic!("synchronization misuse in simulated program: {e}"));
        self.make_ready(core, &outcome.wake, now);
        if outcome.block {
            RuntimeOutcome::Block { cost }
        } else {
            RuntimeOutcome::Continue { cost }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use misp_core::{MispMachine, MispTopology};
    use misp_isa::{Op, ProgramBuilder, ProgramLibrary};
    use misp_os::TimerConfig;
    use misp_sim::SimConfig;
    use misp_smp::SmpMachine;
    use misp_types::VirtAddr;

    fn quiet() -> SimConfig {
        SimConfig {
            timer: TimerConfig::disabled(),
            ..SimConfig::default()
        }
    }

    /// Builds a fork/join workload: a main shred creates `workers` shreds that
    /// each compute `work` cycles, then joins them via a barrier that includes
    /// the main shred.
    fn fork_join_library(workers: u32, work: u64) -> ProgramLibrary {
        let mut lib = ProgramLibrary::new();
        let barrier = LockId::new(0);
        // Worker program is inserted first so its ProgramRef is 0..workers.
        let worker = lib.insert(
            ProgramBuilder::new("worker")
                .compute(Cycles::new(work))
                .barrier_wait(barrier)
                .build(),
        );
        let mut main = ProgramBuilder::new("main").op(Op::RegisterHandler);
        for _ in 0..workers {
            main = main.shred_create(worker);
        }
        main = main.compute(Cycles::new(work)).barrier_wait(barrier);
        lib.insert(main.build());
        lib
    }

    fn fork_join_scheduler(workers: u32) -> GangScheduler {
        GangScheduler::builder()
            .main_program(ProgramRef::new(1))
            .barrier(LockId::new(0), workers as usize + 1)
            .build()
    }

    #[test]
    fn builder_configuration_is_visible() {
        let g = GangScheduler::builder()
            .policy(SchedulingPolicy::Lifo)
            .main_program(ProgramRef::new(0))
            .initial_shred(ProgramRef::new(1))
            .semaphore(LockId::new(3), 2)
            .event(LockId::new(4), false)
            .barrier(LockId::new(5), 2)
            .build();
        assert_eq!(g.policy(), SchedulingPolicy::Lifo);
        assert_eq!(g.shreds_created(), 0);
    }

    #[test]
    fn fork_join_scales_on_misp_uniprocessor() {
        let workers = 7u32;
        let work = 1_000_000u64;
        // Serial reference: everything on one sequencer.
        let mut serial = MispMachine::new(
            MispTopology::uniprocessor(0).unwrap(),
            quiet(),
            fork_join_library(workers, work),
        );
        serial.add_process("app", Box::new(fork_join_scheduler(workers)), Some(0));
        let serial_cycles = serial.run().unwrap().total_cycles;

        // Parallel: 1 OMS + 7 AMS.
        let mut parallel = MispMachine::new(
            MispTopology::uniprocessor(7).unwrap(),
            quiet(),
            fork_join_library(workers, work),
        );
        parallel.add_process("app", Box::new(fork_join_scheduler(workers)), Some(0));
        let parallel_cycles = parallel.run().unwrap().total_cycles;

        let speedup = serial_cycles.as_f64() / parallel_cycles.as_f64();
        assert!(
            speedup > 6.0,
            "expected near-linear speedup on 8 sequencers, got {speedup:.2} \
             (serial {serial_cycles}, parallel {parallel_cycles})"
        );
    }

    #[test]
    fn fork_join_behaves_identically_on_smp() {
        let workers = 3u32;
        let work = 500_000u64;
        let mut smp = SmpMachine::new(4, quiet(), fork_join_library(workers, work));
        let pid = smp.add_process("app", Box::new(fork_join_scheduler(workers)), Some(0));
        for core in 1..4 {
            smp.add_thread(pid, Some(core));
        }
        let report = smp.run().unwrap();
        let speedup = (work * 2) as f64 / report.total_cycles.as_f64();
        assert!(
            speedup > 1.5,
            "SMP fork/join should overlap main and workers, got {speedup:.2}"
        );
        assert_eq!(report.stats.proxy_executions, 0);
    }

    #[test]
    fn mutex_protected_counter_serializes_critical_sections() {
        let mut lib = ProgramLibrary::new();
        let mutex = LockId::new(1);
        let barrier = LockId::new(0);
        let worker = lib.insert(
            ProgramBuilder::new("locker")
                .repeat(50, |b| {
                    b.mutex_lock(mutex)
                        .compute(Cycles::new(100))
                        .mutex_unlock(mutex)
                        .compute(Cycles::new(100))
                })
                .barrier_wait(barrier)
                .build(),
        );
        let main = lib.insert(
            ProgramBuilder::new("main")
                .shred_create(worker)
                .shred_create(worker)
                .shred_create(worker)
                .barrier_wait(barrier)
                .build(),
        );
        let mut machine = MispMachine::new(MispTopology::uniprocessor(3).unwrap(), quiet(), lib);
        machine.add_process(
            "app",
            Box::new(
                GangScheduler::builder()
                    .main_program(main)
                    .barrier(barrier, 4)
                    .build(),
            ),
            Some(0),
        );
        let report = machine.run().unwrap();
        // All 3 workers of 50 iterations complete without deadlock.
        assert!(report.total_cycles > Cycles::new(3 * 50 * 100));
    }

    #[test]
    fn join_waits_for_target_completion() {
        let mut lib = ProgramLibrary::new();
        let worker = lib.insert(
            ProgramBuilder::new("worker")
                .compute(Cycles::new(200_000))
                .build(),
        );
        let main = lib.insert(
            ProgramBuilder::new("main")
                .shred_create(worker)
                // The worker created above is shred id 1 (main is 0).
                .shred_join(ShredId::new(1))
                .compute(Cycles::new(10_000))
                .build(),
        );
        let mut machine = MispMachine::new(MispTopology::uniprocessor(1).unwrap(), quiet(), lib);
        machine.add_process(
            "app",
            Box::new(GangScheduler::builder().main_program(main).build()),
            Some(0),
        );
        let report = machine.run().unwrap();
        assert!(
            report.total_cycles >= Cycles::new(210_000),
            "main must wait for the worker before its final compute"
        );
    }

    #[test]
    fn yield_lets_other_shreds_run_on_one_sequencer() {
        let mut lib = ProgramLibrary::new();
        let a = lib.insert(
            ProgramBuilder::new("a")
                .repeat(10, |b| b.compute(Cycles::new(100)).shred_yield())
                .build(),
        );
        let main = lib.insert(
            ProgramBuilder::new("main")
                .shred_create(a)
                .shred_create(a)
                .build(),
        );
        let mut machine = MispMachine::new(MispTopology::uniprocessor(0).unwrap(), quiet(), lib);
        machine.add_process(
            "app",
            Box::new(GangScheduler::builder().main_program(main).build()),
            Some(0),
        );
        let report = machine.run().unwrap();
        assert!(report.total_cycles > Cycles::new(2_000));
    }

    /// Builds an open-loop generator: the main shred alternates
    /// `compute(gap)` and `shred_create(request)`, so requests are created at
    /// the scheduled arrival times (plus queue-lock costs, the open-loop
    /// drift).  Returns the library and the arrival schedule.
    fn service_library(gaps: &[u64], service_cycles: u64) -> (ProgramLibrary, Vec<Cycles>) {
        let mut lib = ProgramLibrary::new();
        let request = lib.insert(
            ProgramBuilder::new("request")
                .compute(Cycles::new(service_cycles))
                .build(),
        );
        let mut generator = ProgramBuilder::new("generator").op(Op::RegisterHandler);
        let mut arrivals = Vec::new();
        let mut at = 0u64;
        for &gap in gaps {
            at += gap;
            arrivals.push(Cycles::new(at));
            generator = generator.compute(Cycles::new(gap)).shred_create(request);
        }
        lib.insert(generator.build());
        (lib, arrivals)
    }

    #[test]
    fn service_model_measures_every_request() {
        let gaps = [10_000u64; 6];
        let (lib, arrivals) = service_library(&gaps, 5_000);
        let mut machine = MispMachine::new(MispTopology::uniprocessor(3).unwrap(), quiet(), lib);
        machine.add_process(
            "svc",
            Box::new(
                GangScheduler::builder()
                    .main_program(ProgramRef::new(1))
                    .service(ServiceModel::new(arrivals))
                    .build(),
            ),
            Some(0),
        );
        let report = machine.run().unwrap();
        let service = report.stats.service.as_ref().expect("service stats");
        assert_eq!(service.admitted, 6);
        assert_eq!(service.completed, 6);
        assert_eq!(service.dropped, 0);
        assert_eq!(service.latency.count(), 6);
        // Each request takes at least its own service time.
        assert!(service.latency.min() >= 5_000, "{}", service.latency.min());
        assert_eq!(service.queue_depth.len(), 12, "one edge per admit/complete");
    }

    #[test]
    fn pool_of_one_serializes_requests_even_with_idle_sequencers() {
        // Arrivals all at ~0 but service is long: with a pool of one the
        // requests run back-to-back, so the last one's latency is about
        // 6 * service even though 3 AMSs sit idle.
        let gaps = [1u64; 6];
        let (lib, arrivals) = service_library(&gaps, 100_000);
        let wide = |pool| {
            let (lib, arrivals) = (lib.clone(), arrivals.clone());
            let mut machine =
                MispMachine::new(MispTopology::uniprocessor(3).unwrap(), quiet(), lib);
            machine.add_process(
                "svc",
                Box::new(
                    GangScheduler::builder()
                        .main_program(ProgramRef::new(1))
                        .service(ServiceModel::new(arrivals).with_pool_width(pool))
                        .build(),
                ),
                Some(0),
            );
            let report = machine.run().unwrap();
            report.stats.service.clone().expect("service stats")
        };
        let narrow = wide(1);
        let broad = wide(3);
        assert_eq!(narrow.completed, 6);
        assert_eq!(broad.completed, 6);
        assert!(
            narrow.latency.max() >= 6 * 100_000,
            "pool of one must serialize: p100 = {}",
            narrow.latency.max()
        );
        assert!(
            broad.latency.max() < narrow.latency.max() / 2,
            "three slots must overlap service: {} vs {}",
            broad.latency.max(),
            narrow.latency.max()
        );
    }

    #[test]
    fn queue_bound_drops_overflow_arrivals() {
        // Six near-simultaneous arrivals into a bound of two outstanding:
        // at least one must be dropped, and drops + completions = arrivals.
        let gaps = [1u64; 6];
        let (lib, arrivals) = service_library(&gaps, 200_000);
        let mut machine = MispMachine::new(MispTopology::uniprocessor(1).unwrap(), quiet(), lib);
        machine.add_process(
            "svc",
            Box::new(
                GangScheduler::builder()
                    .main_program(ProgramRef::new(1))
                    .service(ServiceModel::new(arrivals).with_queue_bound(2))
                    .build(),
            ),
            Some(0),
        );
        let report = machine.run().unwrap();
        let service = report.stats.service.as_ref().expect("service stats");
        assert_eq!(service.admitted + service.dropped, 6);
        assert!(
            service.dropped >= 1,
            "bound of 2 must drop some of 6 bursts"
        );
        assert_eq!(service.completed, service.admitted);
        assert!(service.max_outstanding <= 2);
    }

    #[test]
    fn ams_page_faults_trigger_proxy_execution() {
        let mut lib = ProgramLibrary::new();
        let barrier = LockId::new(0);
        let toucher = lib.insert(
            ProgramBuilder::new("toucher")
                .touch_pages(VirtAddr::new(0x4000_0000), 20)
                .compute(Cycles::new(10_000))
                .barrier_wait(barrier)
                .build(),
        );
        let main = lib.insert(
            ProgramBuilder::new("main")
                .op(Op::RegisterHandler)
                .shred_create(toucher)
                .compute(Cycles::new(1_000_000))
                .barrier_wait(barrier)
                .build(),
        );
        let mut machine = MispMachine::new(MispTopology::uniprocessor(1).unwrap(), quiet(), lib);
        machine.add_process(
            "app",
            Box::new(
                GangScheduler::builder()
                    .main_program(main)
                    .barrier(barrier, 2)
                    .build(),
            ),
            Some(0),
        );
        let report = machine.run().unwrap();
        // The toucher runs on the AMS (the OMS is busy with the long compute),
        // so its 20 compulsory page faults become proxy executions.
        assert_eq!(report.stats.ams_events.page_faults, 20);
        assert_eq!(report.stats.proxy_executions, 20);
        assert!(report.stats.serializations >= 20);
    }
}
