//! ShredLib: the user-level multi-shredding runtime.
//!
//! Section 4.2 of the MISP paper describes ShredLib, a dynamically linked
//! runtime that implements the shared-memory multi-shredded programming model
//! on top of the MISP ISA: a POSIX-compliant suite of shred control and
//! synchronization primitives (critical sections, mutexes, condition
//! variables, semaphores and events), a work-queue gang scheduler (Figure 3),
//! a generic proxy handler, legacy API translations for Pthreads and Win32
//! Threads, and shred-local storage.
//!
//! This crate reproduces that runtime for the simulator:
//!
//! * [`GangScheduler`] — the M:N work-queue scheduler of Figure 3, implemented
//!   as a [`misp_sim::Runtime`] so it can drive both the MISP machine and the
//!   SMP baseline (where it plays the role of an ordinary thread-pool
//!   runtime).
//! * [`WorkQueue`] and [`SchedulingPolicy`] — the mutex-protected shred queue
//!   and the selectable scheduling algorithms.
//! * [`SyncTable`] with mutexes, counting semaphores, condition variables,
//!   events and barriers.
//! * [`ShredLocalStorage`] — the Thread-Local-Storage equivalent for shreds.
//! * [`compat`] — the thread-to-shred API mapping tables used to port legacy
//!   Pthreads/Win32/OpenMP software (the basis of the Table 2 reproduction).
//!
//! # Examples
//!
//! Build a gang scheduler whose main shred spawns four workers and joins them
//! through a barrier:
//!
//! ```
//! use shredlib::{GangScheduler, SchedulingPolicy};
//! use misp_isa::ProgramRef;
//!
//! let scheduler = GangScheduler::builder()
//!     .policy(SchedulingPolicy::Fifo)
//!     .main_program(ProgramRef::new(0))
//!     .barrier(misp_types::LockId::new(0), 5)
//!     .build();
//! assert_eq!(scheduler.policy(), SchedulingPolicy::Fifo);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compat;
mod gang;
mod queue;
mod service;
mod sync;
mod tls;

pub use gang::{GangScheduler, GangSchedulerBuilder};
pub use queue::{SchedulingPolicy, WorkQueue};
pub use service::ServiceModel;
pub use sync::{SyncObject, SyncTable};
pub use tls::ShredLocalStorage;
