//! The shared work queue of the gang scheduler.

use misp_types::ShredId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The order in which ready shreds are dispatched from the work queue.
///
/// The paper notes that ShredLib implements several different shred-scheduling
/// algorithms and can be customized per application (Section 4.2); the
/// simulator exposes the queue disciplines that matter for the evaluated
/// workloads.
#[derive(Default, Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// First-in first-out: shreds run in creation order (the Figure 3
    /// example).
    #[default]
    Fifo,
    /// Last-in first-out: most recently created shreds run first (better
    /// locality for recursive divide-and-conquer work).
    Lifo,
}

/// The mutex-protected shared work queue holding ready shred continuations.
///
/// In the real runtime the queue holds `<EIP, ESP>` pairs; in the simulator a
/// ready shred is identified by its [`ShredId`] (its continuation lives in the
/// engine's shred table).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct WorkQueue {
    ready: VecDeque<ShredId>,
    policy: SchedulingPolicy,
    total_enqueued: u64,
    max_depth: usize,
}

impl WorkQueue {
    /// Creates an empty queue with the given policy.
    #[must_use]
    pub fn new(policy: SchedulingPolicy) -> Self {
        WorkQueue {
            ready: VecDeque::new(),
            policy,
            total_enqueued: 0,
            max_depth: 0,
        }
    }

    /// The scheduling policy.
    #[must_use]
    pub fn policy(&self) -> SchedulingPolicy {
        self.policy
    }

    /// Adds a ready shred to the queue.
    pub fn push(&mut self, shred: ShredId) {
        self.ready.push_back(shred);
        self.total_enqueued += 1;
        self.max_depth = self.max_depth.max(self.ready.len());
    }

    /// Removes and returns the next shred to run according to the policy.
    pub fn pop(&mut self) -> Option<ShredId> {
        match self.policy {
            SchedulingPolicy::Fifo => self.ready.pop_front(),
            SchedulingPolicy::Lifo => self.ready.pop_back(),
        }
    }

    /// The shred [`pop`](WorkQueue::pop) would return, without removing it.
    /// Used by admission-gated dispatch (service pools), which must decide
    /// whether the head may start *before* taking it off the queue so a
    /// blocked head preserves FIFO order instead of being skipped.
    #[must_use]
    pub fn peek(&self) -> Option<ShredId> {
        match self.policy {
            SchedulingPolicy::Fifo => self.ready.front().copied(),
            SchedulingPolicy::Lifo => self.ready.back().copied(),
        }
    }

    /// Number of shreds currently waiting.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ready.len()
    }

    /// Returns `true` when no shreds are waiting.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ready.is_empty()
    }

    /// Removes a specific shred from the queue (used when a shred is started
    /// directly via `SIGNAL` rather than through the queue).  Returns `true`
    /// if it was present.
    pub fn remove(&mut self, shred: ShredId) -> bool {
        if let Some(pos) = self.ready.iter().position(|s| *s == shred) {
            self.ready.remove(pos);
            true
        } else {
            false
        }
    }

    /// Total number of shreds ever enqueued.
    #[must_use]
    pub fn total_enqueued(&self) -> u64 {
        self.total_enqueued
    }

    /// The maximum queue depth observed.
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> ShredId {
        ShredId::new(i)
    }

    #[test]
    fn fifo_order() {
        let mut q = WorkQueue::new(SchedulingPolicy::Fifo);
        for i in 0..3 {
            q.push(s(i));
        }
        assert_eq!(q.pop(), Some(s(0)));
        assert_eq!(q.pop(), Some(s(1)));
        assert_eq!(q.pop(), Some(s(2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn lifo_order() {
        let mut q = WorkQueue::new(SchedulingPolicy::Lifo);
        for i in 0..3 {
            q.push(s(i));
        }
        assert_eq!(q.pop(), Some(s(2)));
        assert_eq!(q.pop(), Some(s(1)));
        assert_eq!(q.pop(), Some(s(0)));
    }

    #[test]
    fn peek_matches_pop_for_both_policies() {
        for policy in [SchedulingPolicy::Fifo, SchedulingPolicy::Lifo] {
            let mut q = WorkQueue::new(policy);
            assert_eq!(q.peek(), None);
            for i in 0..3 {
                q.push(s(i));
            }
            while !q.is_empty() {
                let peeked = q.peek();
                assert_eq!(peeked, q.pop(), "{policy:?}");
            }
            assert_eq!(q.peek(), None);
        }
    }

    #[test]
    fn statistics_and_remove() {
        let mut q = WorkQueue::new(SchedulingPolicy::Fifo);
        q.push(s(0));
        q.push(s(1));
        q.push(s(2));
        assert_eq!(q.len(), 3);
        assert_eq!(q.max_depth(), 3);
        assert!(q.remove(s(1)));
        assert!(!q.remove(s(1)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_enqueued(), 3);
        assert!(!q.is_empty());
        assert_eq!(q.policy(), SchedulingPolicy::Fifo);
    }

    #[test]
    fn default_policy_is_fifo() {
        assert_eq!(SchedulingPolicy::default(), SchedulingPolicy::Fifo);
        assert_eq!(WorkQueue::default().policy(), SchedulingPolicy::Fifo);
    }
}
