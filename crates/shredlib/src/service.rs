//! Open-loop request serving on top of the gang scheduler.
//!
//! A [`ServiceModel`] turns the gang scheduler into a request-serving system:
//! every `ShredCreate` executed under the model is an *admission* of the next
//! request from a pre-recorded arrival schedule.  The scheduler then measures
//! each request from its **scheduled** arrival cycle to its completion cycle,
//! so any lag the generator accumulates under load (or any queueing before a
//! pool slot frees up) is charged to the request — the open-loop discipline
//! that avoids coordinated omission.
//!
//! Two knobs shape the system:
//!
//! * [`ServiceModel::with_queue_bound`] bounds the number of outstanding
//!   requests (queued + in service); arrivals beyond the bound are *dropped*
//!   (counted, no shred created) like a full accept queue.
//! * [`ServiceModel::with_pool_width`] bounds how many requests may be in
//!   service at once (the `k` of an M/M/k-shaped pool).  A request at the
//!   head of the ready queue waits — head-of-line, preserving FIFO order —
//!   until a slot frees, even if sequencers are idle.
//!
//! Because the arrival schedule is recorded up front (a plain `Vec` of
//! cycles), the *same* schedule can be replayed against different machines
//! and pool shapes: common random numbers, giving paired low-variance
//! comparisons.

use misp_sim::ServiceStats;
use misp_types::{ArenaMap, Cycles, ShredId};

/// Cap on the recorded queue-depth time series; recording stops (counters
/// continue) once this many edges have been captured.
const MAX_DEPTH_SAMPLES: usize = 4096;

/// A recorded open-loop request schedule plus service-system shape.
///
/// `arrivals[n]` is the scheduled arrival cycle of the `n`-th request; the
/// `n`-th `ShredCreate` executed under the model admits (or drops) exactly
/// that request, whatever the machine it replays on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceModel {
    arrivals: Vec<Cycles>,
    pool_width: Option<usize>,
    queue_bound: Option<usize>,
}

impl ServiceModel {
    /// Creates a model for a recorded arrival schedule with an unbounded
    /// queue and an unbounded pool.
    #[must_use]
    pub fn new(arrivals: Vec<Cycles>) -> Self {
        ServiceModel {
            arrivals,
            pool_width: None,
            queue_bound: None,
        }
    }

    /// Bounds the number of requests in service at once (M/M/k pool shape).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero (no request could ever start).
    #[must_use]
    pub fn with_pool_width(mut self, width: usize) -> Self {
        assert!(width > 0, "a service pool needs at least one slot");
        self.pool_width = Some(width);
        self
    }

    /// Bounds outstanding requests (queued + in service); arrivals beyond the
    /// bound are dropped.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero (every request would be dropped).
    #[must_use]
    pub fn with_queue_bound(mut self, bound: usize) -> Self {
        assert!(bound > 0, "a queue bound of zero drops everything");
        self.queue_bound = Some(bound);
        self
    }

    /// The recorded arrival schedule.
    #[must_use]
    pub fn arrivals(&self) -> &[Cycles] {
        &self.arrivals
    }

    /// The pool width, if bounded.
    #[must_use]
    pub fn pool_width(&self) -> Option<usize> {
        self.pool_width
    }

    /// The outstanding-request bound, if any.
    #[must_use]
    pub fn queue_bound(&self) -> Option<usize> {
        self.queue_bound
    }
}

/// What [`ServiceState::admit`] decided about an arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admission {
    /// Admit the request; the shred about to be created serves arrival
    /// `index` of the schedule.
    Admit { index: usize },
    /// The queue bound is hit: drop the arrival, creating no shred.
    Drop,
    /// The arrival schedule is exhausted; this create is not a request of the
    /// schedule (mixed workloads) and proceeds untracked.
    Untracked,
}

/// Live bookkeeping the gang scheduler keeps while driving a
/// [`ServiceModel`].
#[derive(Debug)]
pub(crate) struct ServiceState {
    model: ServiceModel,
    /// Index of the next arrival to admit or drop.
    next_arrival: usize,
    /// Tracked request shreds: shred → (arrival index, started service?).
    requests: ArenaMap<ShredId, (usize, bool)>,
    /// Requests currently holding a pool slot.
    in_service: usize,
    /// Requests admitted and not yet completed.
    outstanding: usize,
    stats: ServiceStats,
}

impl ServiceState {
    pub(crate) fn new(model: ServiceModel) -> Self {
        ServiceState {
            model,
            next_arrival: 0,
            requests: ArenaMap::new(),
            in_service: 0,
            outstanding: 0,
            stats: ServiceStats::default(),
        }
    }

    fn sample_depth(&mut self, now: Cycles) {
        if self.stats.queue_depth.len() < MAX_DEPTH_SAMPLES {
            self.stats
                .queue_depth
                .push((now.as_u64(), self.outstanding as u64));
        }
    }

    /// Decides the fate of the next scheduled arrival.  Consumes the arrival
    /// index either way: a dropped request is still the `n`-th arrival.
    pub(crate) fn admit(&mut self, now: Cycles) -> Admission {
        if self.next_arrival >= self.model.arrivals.len() {
            return Admission::Untracked;
        }
        let index = self.next_arrival;
        self.next_arrival += 1;
        if let Some(bound) = self.model.queue_bound {
            if self.outstanding >= bound {
                self.stats.dropped += 1;
                return Admission::Drop;
            }
        }
        self.stats.admitted += 1;
        self.outstanding += 1;
        self.stats.max_outstanding = self.stats.max_outstanding.max(self.outstanding as u64);
        self.sample_depth(now);
        Admission::Admit { index }
    }

    /// Registers the shred created for an admitted arrival.
    pub(crate) fn register(&mut self, shred: ShredId, index: usize) {
        self.requests.insert(shred, (index, false));
    }

    /// Whether `shred` may be dispatched right now.  Untracked shreds (the
    /// generator, joiners) always may; a tracked request that has not yet
    /// started must find a free pool slot.
    pub(crate) fn may_dispatch(&self, shred: ShredId) -> bool {
        match (self.requests.get(shred), self.model.pool_width) {
            (Some((_, false)), Some(width)) => self.in_service < width,
            _ => true,
        }
    }

    /// Marks `shred` as dispatched (idempotent for re-dispatch after yield).
    pub(crate) fn dispatched(&mut self, shred: ShredId) {
        if let Some((_, started)) = self.requests.get_mut(shred) {
            if !*started {
                *started = true;
                self.in_service += 1;
            }
        }
    }

    /// Completes `shred` if it is a tracked request, recording its latency
    /// from the scheduled arrival.  Returns `true` when a pool slot was
    /// freed (the caller should wake idle sequencers).
    pub(crate) fn complete(&mut self, shred: ShredId, now: Cycles) -> bool {
        let Some((index, started)) = self.requests.remove(shred) else {
            return false;
        };
        if started {
            self.in_service -= 1;
        }
        self.outstanding -= 1;
        self.stats.completed += 1;
        let scheduled = self.model.arrivals[index];
        self.stats
            .latency
            .record(now.saturating_sub(scheduled).as_u64());
        self.sample_depth(now);
        true
    }

    pub(crate) fn stats(&self) -> &ServiceStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(n: u64) -> ServiceModel {
        ServiceModel::new((0..n).map(|i| Cycles::new(i * 100)).collect())
    }

    #[test]
    fn admissions_consume_arrivals_in_order() {
        let mut st = ServiceState::new(model(2));
        assert_eq!(st.admit(Cycles::new(0)), Admission::Admit { index: 0 });
        assert_eq!(st.admit(Cycles::new(100)), Admission::Admit { index: 1 });
        // Schedule exhausted: further creates are not requests.
        assert_eq!(st.admit(Cycles::new(200)), Admission::Untracked);
        assert_eq!(st.stats().admitted, 2);
        assert_eq!(st.stats().dropped, 0);
    }

    #[test]
    fn queue_bound_drops_but_still_consumes_the_arrival() {
        let mut st = ServiceState::new(model(3).with_queue_bound(1));
        assert_eq!(st.admit(Cycles::new(0)), Admission::Admit { index: 0 });
        st.register(ShredId::new(1), 0);
        // Outstanding is 1 >= bound: the second arrival is dropped...
        assert_eq!(st.admit(Cycles::new(100)), Admission::Drop);
        assert_eq!(st.stats().dropped, 1);
        // ...and completing the first frees room for the *third* arrival.
        assert!(st.complete(ShredId::new(1), Cycles::new(150)));
        assert_eq!(st.admit(Cycles::new(200)), Admission::Admit { index: 2 });
    }

    #[test]
    fn pool_width_gates_dispatch_head_of_line() {
        let mut st = ServiceState::new(model(2).with_pool_width(1));
        assert_eq!(st.admit(Cycles::new(0)), Admission::Admit { index: 0 });
        st.register(ShredId::new(1), 0);
        assert_eq!(st.admit(Cycles::new(100)), Admission::Admit { index: 1 });
        st.register(ShredId::new(2), 1);
        assert!(st.may_dispatch(ShredId::new(1)));
        st.dispatched(ShredId::new(1));
        assert!(!st.may_dispatch(ShredId::new(2)), "pool of one is full");
        // Untracked shreds (the generator) are never gated.
        assert!(st.may_dispatch(ShredId::new(9)));
        assert!(st.complete(ShredId::new(1), Cycles::new(500)));
        assert!(st.may_dispatch(ShredId::new(2)), "slot freed");
    }

    #[test]
    fn latency_is_measured_from_the_scheduled_arrival() {
        let mut st = ServiceState::new(model(1));
        // The generator runs late: admission at 40 for an arrival scheduled
        // at 0; completion at 250 must record 250, not 210.
        assert_eq!(st.admit(Cycles::new(40)), Admission::Admit { index: 0 });
        st.register(ShredId::new(1), 0);
        st.dispatched(ShredId::new(1));
        assert!(st.complete(ShredId::new(1), Cycles::new(250)));
        assert_eq!(st.stats().latency.max(), 250);
        assert_eq!(st.stats().completed, 1);
    }

    #[test]
    fn zero_pool_width_is_rejected() {
        let result = std::panic::catch_unwind(|| model(1).with_pool_width(0));
        assert!(result.is_err());
    }
}
