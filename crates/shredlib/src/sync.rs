//! Shred synchronization objects.
//!
//! ShredLib implements the POSIX-style synchronization suite over shared
//! memory (Section 4.2): mutexes, counting semaphores, condition variables,
//! events and barriers.  The objects here are *descriptions of waiting
//! relationships*, not host-level locks — blocking a shred means parking it
//! until another shred's operation readies it again, at which point the gang
//! scheduler puts it back on the work queue.

use misp_types::{ArenaMap, LockId, MispError, Result, ShredId};
use std::collections::VecDeque;

/// The outcome of a synchronization operation.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SyncOutcome {
    /// `true` if the calling shred must block.
    pub block: bool,
    /// Shreds that became ready as a result of the operation.
    pub wake: Vec<ShredId>,
}

impl SyncOutcome {
    fn proceed() -> Self {
        SyncOutcome::default()
    }

    fn blocked() -> Self {
        SyncOutcome {
            block: true,
            wake: Vec::new(),
        }
    }

    fn waking(wake: Vec<ShredId>) -> Self {
        SyncOutcome { block: false, wake }
    }
}

/// One synchronization object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncObject {
    /// A mutual-exclusion lock.
    Mutex {
        /// The shred currently holding the mutex.
        holder: Option<ShredId>,
        /// Shreds waiting to acquire it, in arrival order.
        waiters: VecDeque<ShredId>,
    },
    /// A counting semaphore.
    Semaphore {
        /// Current count.
        count: u64,
        /// Shreds waiting for the count to become positive.
        waiters: VecDeque<ShredId>,
    },
    /// A condition variable; each waiter remembers the mutex it released.
    CondVar {
        /// Waiting shreds and the mutex each must re-acquire when woken.
        waiters: VecDeque<(ShredId, LockId)>,
    },
    /// A manual-reset event.
    Event {
        /// Whether the event is signaled.
        signaled: bool,
        /// Shreds waiting for the event to become signaled.
        waiters: VecDeque<ShredId>,
    },
    /// A barrier for a fixed number of participants.
    Barrier {
        /// Number of participants required to release the barrier.
        parties: usize,
        /// Shreds that have arrived and are waiting.
        arrived: Vec<ShredId>,
        /// Number of times the barrier has been released (generation count).
        generations: u64,
    },
}

/// The table of all synchronization objects of one process.
///
/// Lock ids are small dense integers allocated by the program, so the table
/// is an [`ArenaMap`]: lookups on the runtime-op path are an index, not a
/// hash.
#[derive(Debug, Default, Clone)]
pub struct SyncTable {
    objects: ArenaMap<LockId, SyncObject>,
    contention_events: u64,
}

impl SyncTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        SyncTable::default()
    }

    /// Pre-registers a barrier for `parties` participants.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn create_barrier(&mut self, id: LockId, parties: usize) {
        assert!(parties > 0, "a barrier needs at least one participant");
        self.objects.insert(
            id,
            SyncObject::Barrier {
                parties,
                arrived: Vec::new(),
                generations: 0,
            },
        );
    }

    /// Pre-registers a counting semaphore with the given initial count.
    pub fn create_semaphore(&mut self, id: LockId, initial: u64) {
        self.objects.insert(
            id,
            SyncObject::Semaphore {
                count: initial,
                waiters: VecDeque::new(),
            },
        );
    }

    /// Pre-registers an event object.
    pub fn create_event(&mut self, id: LockId, signaled: bool) {
        self.objects.insert(
            id,
            SyncObject::Event {
                signaled,
                waiters: VecDeque::new(),
            },
        );
    }

    /// Number of times a shred had to block because an object was contended.
    #[must_use]
    pub fn contention_events(&self) -> u64 {
        self.contention_events
    }

    /// The object registered under `id`, if any (primarily for tests and
    /// introspection).
    #[must_use]
    pub fn get(&self, id: LockId) -> Option<&SyncObject> {
        self.objects.get(id)
    }

    fn mutex_entry(&mut self, id: LockId) -> &mut SyncObject {
        self.objects.get_or_insert_with(id, || SyncObject::Mutex {
            holder: None,
            waiters: VecDeque::new(),
        })
    }

    /// Acquires mutex `id` for `shred`.
    ///
    /// # Errors
    ///
    /// Returns [`MispError::SynchronizationMisuse`] if `id` names an object of
    /// a different type or the shred already holds the mutex.
    pub fn mutex_lock(&mut self, id: LockId, shred: ShredId) -> Result<SyncOutcome> {
        match self.mutex_entry(id) {
            SyncObject::Mutex { holder, waiters } => match holder {
                None => {
                    *holder = Some(shred);
                    Ok(SyncOutcome::proceed())
                }
                Some(h) if *h == shred => Err(MispError::SynchronizationMisuse(format!(
                    "shred {shred} attempted to re-acquire mutex {id} it already holds"
                ))),
                Some(_) => {
                    waiters.push_back(shred);
                    self.contention_events += 1;
                    Ok(SyncOutcome::blocked())
                }
            },
            _ => Err(MispError::SynchronizationMisuse(format!(
                "{id} is not a mutex"
            ))),
        }
    }

    /// Releases mutex `id`, which must be held by `shred`.  If another shred
    /// is waiting, ownership transfers to it and it is woken.
    ///
    /// # Errors
    ///
    /// Returns [`MispError::SynchronizationMisuse`] if the mutex is not held
    /// by `shred` or `id` is not a mutex.
    pub fn mutex_unlock(&mut self, id: LockId, shred: ShredId) -> Result<SyncOutcome> {
        match self.objects.get_mut(id) {
            Some(SyncObject::Mutex { holder, waiters }) => {
                if *holder != Some(shred) {
                    return Err(MispError::SynchronizationMisuse(format!(
                        "shred {shred} released mutex {id} it does not hold"
                    )));
                }
                if let Some(next) = waiters.pop_front() {
                    *holder = Some(next);
                    Ok(SyncOutcome::waking(vec![next]))
                } else {
                    *holder = None;
                    Ok(SyncOutcome::proceed())
                }
            }
            _ => Err(MispError::SynchronizationMisuse(format!(
                "{id} is not a mutex"
            ))),
        }
    }

    /// Decrements semaphore `id`, blocking `shred` while the count is zero.
    ///
    /// # Errors
    ///
    /// Returns [`MispError::SynchronizationMisuse`] if `id` is not a
    /// semaphore.
    pub fn sem_wait(&mut self, id: LockId, shred: ShredId) -> Result<SyncOutcome> {
        let entry = self
            .objects
            .get_or_insert_with(id, || SyncObject::Semaphore {
                count: 0,
                waiters: VecDeque::new(),
            });
        match entry {
            SyncObject::Semaphore { count, waiters } => {
                if *count > 0 {
                    *count -= 1;
                    Ok(SyncOutcome::proceed())
                } else {
                    waiters.push_back(shred);
                    self.contention_events += 1;
                    Ok(SyncOutcome::blocked())
                }
            }
            _ => Err(MispError::SynchronizationMisuse(format!(
                "{id} is not a semaphore"
            ))),
        }
    }

    /// Increments semaphore `id`, waking one waiter if any.
    ///
    /// # Errors
    ///
    /// Returns [`MispError::SynchronizationMisuse`] if `id` is not a
    /// semaphore.
    pub fn sem_post(&mut self, id: LockId) -> Result<SyncOutcome> {
        let entry = self
            .objects
            .get_or_insert_with(id, || SyncObject::Semaphore {
                count: 0,
                waiters: VecDeque::new(),
            });
        match entry {
            SyncObject::Semaphore { count, waiters } => {
                if let Some(next) = waiters.pop_front() {
                    Ok(SyncOutcome::waking(vec![next]))
                } else {
                    *count += 1;
                    Ok(SyncOutcome::proceed())
                }
            }
            _ => Err(MispError::SynchronizationMisuse(format!(
                "{id} is not a semaphore"
            ))),
        }
    }

    /// Atomically releases `mutex` and waits on condition variable `cond`.
    ///
    /// # Errors
    ///
    /// Returns [`MispError::SynchronizationMisuse`] if the mutex is not held
    /// by `shred` or either identifier names an object of the wrong type.
    pub fn cond_wait(
        &mut self,
        cond: LockId,
        mutex: LockId,
        shred: ShredId,
    ) -> Result<SyncOutcome> {
        // Release the mutex first; this may wake a mutex waiter.
        let release = self.mutex_unlock(mutex, shred)?;
        let entry = self
            .objects
            .get_or_insert_with(cond, || SyncObject::CondVar {
                waiters: VecDeque::new(),
            });
        match entry {
            SyncObject::CondVar { waiters } => {
                waiters.push_back((shred, mutex));
                self.contention_events += 1;
                Ok(SyncOutcome {
                    block: true,
                    wake: release.wake,
                })
            }
            _ => Err(MispError::SynchronizationMisuse(format!(
                "{cond} is not a condition variable"
            ))),
        }
    }

    /// Wakes one waiter of condition variable `cond`.  The woken shred
    /// re-acquires its mutex before becoming ready; if the mutex is held it
    /// joins that mutex's wait queue instead.
    ///
    /// # Errors
    ///
    /// Returns [`MispError::SynchronizationMisuse`] if `cond` is not a
    /// condition variable.
    pub fn cond_signal(&mut self, cond: LockId) -> Result<SyncOutcome> {
        self.cond_wake(cond, false)
    }

    /// Wakes all waiters of condition variable `cond`.
    ///
    /// # Errors
    ///
    /// Returns [`MispError::SynchronizationMisuse`] if `cond` is not a
    /// condition variable.
    pub fn cond_broadcast(&mut self, cond: LockId) -> Result<SyncOutcome> {
        self.cond_wake(cond, true)
    }

    fn cond_wake(&mut self, cond: LockId, all: bool) -> Result<SyncOutcome> {
        let woken: Vec<(ShredId, LockId)> = match self.objects.get_mut(cond) {
            Some(SyncObject::CondVar { waiters }) => {
                if all {
                    waiters.drain(..).collect()
                } else {
                    waiters.pop_front().into_iter().collect()
                }
            }
            None => Vec::new(), // signaling a never-waited condvar is a no-op
            Some(_) => {
                return Err(MispError::SynchronizationMisuse(format!(
                    "{cond} is not a condition variable"
                )))
            }
        };
        let mut ready = Vec::new();
        for (shred, mutex) in woken {
            match self.mutex_entry(mutex) {
                SyncObject::Mutex { holder, waiters } => match holder {
                    None => {
                        *holder = Some(shred);
                        ready.push(shred);
                    }
                    Some(_) => waiters.push_back(shred),
                },
                _ => {
                    return Err(MispError::SynchronizationMisuse(format!(
                        "{mutex} is not a mutex"
                    )))
                }
            }
        }
        Ok(SyncOutcome::waking(ready))
    }

    /// Arrives at barrier `id`.  The last arriving shred releases everyone.
    ///
    /// # Errors
    ///
    /// Returns [`MispError::SynchronizationMisuse`] if the barrier was not
    /// created with [`SyncTable::create_barrier`] or `id` is not a barrier.
    pub fn barrier_wait(&mut self, id: LockId, shred: ShredId) -> Result<SyncOutcome> {
        match self.objects.get_mut(id) {
            Some(SyncObject::Barrier {
                parties,
                arrived,
                generations,
            }) => {
                if arrived.len() + 1 == *parties {
                    let wake = std::mem::take(arrived);
                    *generations += 1;
                    Ok(SyncOutcome::waking(wake))
                } else {
                    arrived.push(shred);
                    self.contention_events += 1;
                    Ok(SyncOutcome::blocked())
                }
            }
            Some(_) => Err(MispError::SynchronizationMisuse(format!(
                "{id} is not a barrier"
            ))),
            None => Err(MispError::SynchronizationMisuse(format!(
                "barrier {id} was never created"
            ))),
        }
    }

    /// Waits for event `id` to become signaled.
    ///
    /// # Errors
    ///
    /// Returns [`MispError::SynchronizationMisuse`] if `id` is not an event.
    pub fn event_wait(&mut self, id: LockId, shred: ShredId) -> Result<SyncOutcome> {
        let entry = self.objects.get_or_insert_with(id, || SyncObject::Event {
            signaled: false,
            waiters: VecDeque::new(),
        });
        match entry {
            SyncObject::Event { signaled, waiters } => {
                if *signaled {
                    Ok(SyncOutcome::proceed())
                } else {
                    waiters.push_back(shred);
                    self.contention_events += 1;
                    Ok(SyncOutcome::blocked())
                }
            }
            _ => Err(MispError::SynchronizationMisuse(format!(
                "{id} is not an event"
            ))),
        }
    }

    /// Signals event `id`, waking every waiter.
    ///
    /// # Errors
    ///
    /// Returns [`MispError::SynchronizationMisuse`] if `id` is not an event.
    pub fn event_set(&mut self, id: LockId) -> Result<SyncOutcome> {
        let entry = self.objects.get_or_insert_with(id, || SyncObject::Event {
            signaled: false,
            waiters: VecDeque::new(),
        });
        match entry {
            SyncObject::Event { signaled, waiters } => {
                *signaled = true;
                Ok(SyncOutcome::waking(waiters.drain(..).collect()))
            }
            _ => Err(MispError::SynchronizationMisuse(format!(
                "{id} is not an event"
            ))),
        }
    }

    /// Resets event `id` to the non-signaled state.
    ///
    /// # Errors
    ///
    /// Returns [`MispError::SynchronizationMisuse`] if `id` is not an event.
    pub fn event_reset(&mut self, id: LockId) -> Result<SyncOutcome> {
        match self.objects.get_mut(id) {
            Some(SyncObject::Event { signaled, .. }) => {
                *signaled = false;
                Ok(SyncOutcome::proceed())
            }
            None => Ok(SyncOutcome::proceed()),
            Some(_) => Err(MispError::SynchronizationMisuse(format!(
                "{id} is not an event"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LockId {
        LockId::new(i)
    }
    fn s(i: u32) -> ShredId {
        ShredId::new(i)
    }

    #[test]
    fn uncontended_mutex_proceeds() {
        let mut t = SyncTable::new();
        let out = t.mutex_lock(l(0), s(0)).unwrap();
        assert!(!out.block);
        let out = t.mutex_unlock(l(0), s(0)).unwrap();
        assert!(out.wake.is_empty());
        assert_eq!(t.contention_events(), 0);
    }

    #[test]
    fn contended_mutex_blocks_and_transfers_ownership() {
        let mut t = SyncTable::new();
        assert!(!t.mutex_lock(l(0), s(0)).unwrap().block);
        assert!(t.mutex_lock(l(0), s(1)).unwrap().block);
        assert!(t.mutex_lock(l(0), s(2)).unwrap().block);
        // Unlock hands the mutex to the first waiter.
        let out = t.mutex_unlock(l(0), s(0)).unwrap();
        assert_eq!(out.wake, vec![s(1)]);
        // s1 now holds it; s1 unlocking wakes s2.
        let out = t.mutex_unlock(l(0), s(1)).unwrap();
        assert_eq!(out.wake, vec![s(2)]);
        assert_eq!(t.contention_events(), 2);
    }

    #[test]
    fn mutex_misuse_is_detected() {
        let mut t = SyncTable::new();
        t.mutex_lock(l(0), s(0)).unwrap();
        assert!(t.mutex_lock(l(0), s(0)).is_err(), "recursive lock");
        assert!(t.mutex_unlock(l(0), s(1)).is_err(), "unlock by non-holder");
        t.create_semaphore(l(1), 0);
        assert!(t.mutex_lock(l(1), s(0)).is_err(), "type confusion");
    }

    #[test]
    fn semaphore_counts_and_wakes() {
        let mut t = SyncTable::new();
        t.create_semaphore(l(0), 1);
        assert!(!t.sem_wait(l(0), s(0)).unwrap().block);
        assert!(t.sem_wait(l(0), s(1)).unwrap().block);
        let out = t.sem_post(l(0)).unwrap();
        assert_eq!(out.wake, vec![s(1)]);
        // Post with no waiters increments the count.
        t.sem_post(l(0)).unwrap();
        assert!(!t.sem_wait(l(0), s(2)).unwrap().block);
    }

    #[test]
    fn condvar_wait_releases_mutex_and_signal_reacquires() {
        let mut t = SyncTable::new();
        let m = l(0);
        let c = l(1);
        t.mutex_lock(m, s(0)).unwrap();
        t.mutex_lock(m, s(1)).unwrap(); // s1 waits for the mutex
        let out = t.cond_wait(c, m, s(0)).unwrap();
        assert!(out.block);
        assert_eq!(out.wake, vec![s(1)], "releasing the mutex wakes its waiter");
        // Signal: s0 must re-acquire the mutex, which s1 still holds, so no
        // one becomes ready yet.
        let out = t.cond_signal(c).unwrap();
        assert!(out.wake.is_empty());
        // When s1 unlocks, s0 gets the mutex and becomes ready.
        let out = t.mutex_unlock(m, s(1)).unwrap();
        assert_eq!(out.wake, vec![s(0)]);
    }

    #[test]
    fn cond_broadcast_wakes_all_eventually() {
        let mut t = SyncTable::new();
        let m = l(0);
        let c = l(1);
        for i in 0..3 {
            t.mutex_lock(m, s(i)).unwrap();
            if i == 0 {
                t.cond_wait(c, m, s(0)).unwrap();
            }
        }
        // s0 waits on c; s1 holds the mutex; s2 waits for the mutex.
        t.cond_wait(c, m, s(1)).unwrap(); // s1 releases, s2 acquires
        let out = t.cond_broadcast(c).unwrap();
        // Mutex is held by s2, so the broadcast readies no one immediately.
        assert!(out.wake.is_empty());
        let out = t.mutex_unlock(m, s(2)).unwrap();
        assert_eq!(out.wake.len(), 1);
        // Signaling an unknown condvar is a harmless no-op.
        assert!(t.cond_signal(l(9)).unwrap().wake.is_empty());
    }

    #[test]
    fn barrier_releases_when_full() {
        let mut t = SyncTable::new();
        t.create_barrier(l(0), 3);
        assert!(t.barrier_wait(l(0), s(0)).unwrap().block);
        assert!(t.barrier_wait(l(0), s(1)).unwrap().block);
        let out = t.barrier_wait(l(0), s(2)).unwrap();
        assert!(!out.block, "last arrival proceeds");
        assert_eq!(out.wake, vec![s(0), s(1)]);
        // The barrier resets for the next generation.
        assert!(t.barrier_wait(l(0), s(0)).unwrap().block);
    }

    #[test]
    fn barrier_must_be_created() {
        let mut t = SyncTable::new();
        assert!(t.barrier_wait(l(5), s(0)).is_err());
    }

    #[test]
    fn events_are_manual_reset() {
        let mut t = SyncTable::new();
        assert!(t.event_wait(l(0), s(0)).unwrap().block);
        assert!(t.event_wait(l(0), s(1)).unwrap().block);
        let out = t.event_set(l(0)).unwrap();
        assert_eq!(out.wake, vec![s(0), s(1)]);
        // Once signaled, waits pass through.
        assert!(!t.event_wait(l(0), s(2)).unwrap().block);
        t.event_reset(l(0)).unwrap();
        assert!(t.event_wait(l(0), s(3)).unwrap().block);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_party_barrier_panics() {
        let mut t = SyncTable::new();
        t.create_barrier(l(0), 0);
    }
}
