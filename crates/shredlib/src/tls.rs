//! Shred-local storage.
//!
//! The paper highlights that ShredLib supports Thread Local Storage for shreds
//! without recompilation (Section 4.2).  In the simulator, shred-local storage
//! is a small key/value service the runtime exposes so ported applications can
//! keep per-shred state; the workload models use it to verify that the
//! thread-to-shred mapping preserves TLS semantics.

use misp_types::{FxHashMap, ShredId};

/// A shred-local storage arena: per-shred values indexed by small integer
/// keys, mirroring `TlsAlloc`/`TlsSetValue` and `pthread_key_create`.
///
/// # Examples
///
/// ```
/// use shredlib::ShredLocalStorage;
/// use misp_types::ShredId;
///
/// let mut tls = ShredLocalStorage::new();
/// let key = tls.allocate_key();
/// tls.set(ShredId::new(0), key, 42);
/// tls.set(ShredId::new(1), key, 7);
/// assert_eq!(tls.get(ShredId::new(0), key), Some(42));
/// assert_eq!(tls.get(ShredId::new(1), key), Some(7));
/// ```
#[derive(Debug, Default, Clone)]
pub struct ShredLocalStorage {
    next_key: u32,
    freed: Vec<u32>,
    values: FxHashMap<(ShredId, u32), u64>,
}

impl ShredLocalStorage {
    /// Creates an empty storage arena.
    #[must_use]
    pub fn new() -> Self {
        ShredLocalStorage::default()
    }

    /// Allocates a new key, reusing freed keys when available.
    pub fn allocate_key(&mut self) -> u32 {
        if let Some(k) = self.freed.pop() {
            k
        } else {
            let k = self.next_key;
            self.next_key += 1;
            k
        }
    }

    /// Frees a key, removing every shred's value stored under it.
    pub fn free_key(&mut self, key: u32) {
        // lint: unordered-ok(pure key filter; visit order cannot be observed)
        self.values.retain(|(_, k), _| *k != key);
        self.freed.push(key);
    }

    /// Stores `value` for `shred` under `key`.
    pub fn set(&mut self, shred: ShredId, key: u32, value: u64) {
        self.values.insert((shred, key), value);
    }

    /// Reads the value `shred` stored under `key`.
    #[must_use]
    pub fn get(&self, shred: ShredId, key: u32) -> Option<u64> {
        self.values.get(&(shred, key)).copied()
    }

    /// Removes all values belonging to `shred` (called when a shred exits).
    pub fn clear_shred(&mut self, shred: ShredId) {
        // lint: unordered-ok(pure shred filter; visit order cannot be observed)
        self.values.retain(|(s, _), _| *s != shred);
    }

    /// Number of live (shred, key) entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when no values are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_shred_isolation() {
        let mut tls = ShredLocalStorage::new();
        let key = tls.allocate_key();
        tls.set(ShredId::new(0), key, 1);
        tls.set(ShredId::new(1), key, 2);
        assert_eq!(tls.get(ShredId::new(0), key), Some(1));
        assert_eq!(tls.get(ShredId::new(1), key), Some(2));
        assert_eq!(tls.get(ShredId::new(2), key), None);
    }

    #[test]
    fn key_allocation_and_reuse() {
        let mut tls = ShredLocalStorage::new();
        let a = tls.allocate_key();
        let b = tls.allocate_key();
        assert_ne!(a, b);
        tls.set(ShredId::new(0), a, 10);
        tls.free_key(a);
        assert_eq!(tls.get(ShredId::new(0), a), None);
        let c = tls.allocate_key();
        assert_eq!(c, a, "freed keys are reused");
    }

    #[test]
    fn clear_shred_removes_only_that_shred() {
        let mut tls = ShredLocalStorage::new();
        let key = tls.allocate_key();
        tls.set(ShredId::new(0), key, 1);
        tls.set(ShredId::new(1), key, 2);
        tls.clear_shred(ShredId::new(0));
        assert!(tls.get(ShredId::new(0), key).is_none());
        assert_eq!(tls.get(ShredId::new(1), key), Some(2));
        assert_eq!(tls.len(), 1);
        assert!(!tls.is_empty());
    }
}
