//! Simulation configuration.

use misp_cache::CacheConfig;
use misp_os::TimerConfig;
use misp_trace::TraceConfig;
use misp_types::{CostModel, Cycles};
use serde::{Deserialize, Serialize};

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The architectural cost model (signal latency, OS service times, …).
    pub costs: CostModel,
    /// Timer-interrupt configuration for OS-visible CPUs.
    pub timer: TimerConfig,
    /// Per-sequencer TLB capacity, in entries.
    pub tlb_capacity: usize,
    /// The cache-hierarchy model.  Disabled by default, reproducing the
    /// paper's flat memory cost; platforms impose their L2 clustering on it
    /// at engine initialization.
    pub cache: CacheConfig,
    /// Base cost of a memory access that hits the TLB.
    pub access_cost: Cycles,
    /// Hard limit on simulated time; exceeding it aborts the run with
    /// [`misp_types::MispError::CycleBudgetExhausted`].
    pub cycle_budget: Cycles,
    /// Whether to retain fine-grained event-log records.
    pub fine_log: bool,
    /// Enable the macro-step fast path: the engine executes an uninterrupted
    /// run of local operations inline, advancing per-operation time, instead
    /// of round-tripping through the event queue after every operation.
    /// Results are byte-identical either way (statistics, completion times
    /// and event-log digests); disabling it merely forces the slower
    /// event-per-operation loop, which the determinism property tests use as
    /// the reference.  On by default.
    pub batch: bool,
    /// Observability configuration: the structured trace ring and the
    /// interval metrics sampler.  Fully off by default; when off the engine
    /// performs no tracing work beyond a single branch per coarse-log record
    /// and results are byte-identical to a build without the trace layer.
    pub trace: TraceConfig,
}

impl SimConfig {
    /// Returns a configuration identical to `self` but with a different cost
    /// model — convenient for signal-cost sweeps (Figure 5).
    #[must_use]
    pub fn with_costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Returns a configuration identical to `self` but with a different timer.
    #[must_use]
    pub fn with_timer(mut self, timer: TimerConfig) -> Self {
        self.timer = timer;
        self
    }

    /// Returns a configuration identical to `self` but with a different cache
    /// model — convenient for cache-sensitivity sweeps.
    #[must_use]
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// Returns a configuration identical to `self` but with a different
    /// observability configuration (trace ring and metrics sampler).
    #[must_use]
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            costs: CostModel::default(),
            timer: TimerConfig::default(),
            tlb_capacity: 64,
            cache: CacheConfig::disabled(),
            access_cost: Cycles::new(2),
            cycle_budget: Cycles::new(50_000_000_000),
            fine_log: false,
            batch: true,
            trace: TraceConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use misp_types::SignalCost;

    #[test]
    fn default_is_reasonable() {
        let c = SimConfig::default();
        assert!(c.tlb_capacity > 0);
        assert!(!c.access_cost.is_zero());
        assert!(c.cycle_budget > Cycles::new(1_000_000));
        assert!(!c.fine_log);
        assert!(!c.cache.enabled, "the cache model is opt-in");
    }

    #[test]
    fn with_cache_replaces_only_the_cache_model() {
        let base = SimConfig::default();
        let modified = base.with_cache(CacheConfig::enabled_default());
        assert!(modified.cache.enabled);
        assert_eq!(modified.costs, base.costs);
        assert_eq!(modified.tlb_capacity, base.tlb_capacity);
    }

    #[test]
    fn with_costs_replaces_only_costs() {
        let base = SimConfig::default();
        let new_costs = CostModel::builder().signal(SignalCost::Ideal).build();
        let modified = base.with_costs(new_costs);
        assert_eq!(modified.costs.signal, SignalCost::Ideal);
        assert_eq!(modified.tlb_capacity, base.tlb_capacity);
        assert_eq!(modified.timer, base.timer);
    }

    #[test]
    fn trace_is_off_by_default_and_with_trace_replaces_only_it() {
        let base = SimConfig::default();
        assert!(base.trace.is_off(), "observability is opt-in");
        let on = base.with_trace(TraceConfig {
            enabled: true,
            metrics_interval: 1_000,
            ..TraceConfig::default()
        });
        assert!(on.trace.enabled);
        assert_eq!(on.trace.metrics_interval, 1_000);
        assert_eq!(on.costs, base.costs);
        assert_eq!(on.batch, base.batch);
    }

    #[test]
    fn with_timer_replaces_timer() {
        let base = SimConfig::default();
        let t = TimerConfig::new(Cycles::new(10), 2);
        assert_eq!(base.with_timer(t).timer, t);
    }
}
