//! The engine core: all mutable simulation state shared with platforms and
//! runtimes.

use crate::{
    Event, EventLog, EventQueue, LogKind, SequencerTable, ShredExecState, ShredPool, SimConfig,
    SimStats,
};
use misp_isa::{ProgramLibrary, ProgramRef};
use misp_mem::MemorySystem;
use misp_os::Kernel;
use misp_types::{CostModel, Cycles, OsThreadId, ProcessId, SequencerId, ShredId};
use std::sync::Arc;

/// The execution context of an OS thread saved across a context switch: which
/// shred it was running on the CPU and how much of that shred's in-flight
/// operation remained.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SavedContext {
    /// The shred that was installed on the CPU, if any.
    pub current_shred: Option<ShredId>,
    /// Remaining cycles of the interrupted operation.
    pub remaining: Cycles,
}

/// All simulation state except the platform and the runtimes.
///
/// Platforms and runtimes receive `&mut EngineCore` so they can inspect and
/// manipulate sequencers, shreds, memory, the kernel, statistics and the event
/// queue without borrowing conflicts against themselves.
#[derive(Debug)]
pub struct EngineCore {
    config: SimConfig,
    now: Cycles,
    queue: EventQueue,
    sequencers: SequencerTable,
    shreds: ShredPool,
    memory: MemorySystem,
    kernel: Kernel,
    stats: SimStats,
    log: EventLog,
    programs: Vec<Arc<misp_isa::ShredProgram>>,
}

impl EngineCore {
    /// Creates the core for a machine with `sequencer_count` sequencers.
    #[must_use]
    pub fn new(config: SimConfig, sequencer_count: usize, library: ProgramLibrary) -> Self {
        let mut log = EventLog::new(config.fine_log);
        log.set_cap(EventLog::DEFAULT_CAP);
        if config.trace.enabled {
            // The whole ring is allocated here, before the run starts, so an
            // enabled trace preserves the zero-alloc steady state.
            log.enable_trace(config.trace.capacity);
        }
        // The cache hierarchy is deliberately NOT built here: its clustering
        // (which sequencers share an L2) is the platform's knowledge, so
        // every platform's `init` must call `MemorySystem::configure_caches`
        // — `Engine::run` asserts it happened when the config enables the
        // cache model.
        EngineCore {
            config,
            now: Cycles::ZERO,
            queue: EventQueue::new(),
            sequencers: SequencerTable::new(sequencer_count),
            shreds: ShredPool::new(),
            memory: MemorySystem::new(sequencer_count, config.tlb_capacity),
            kernel: Kernel::new(config.costs),
            stats: SimStats::new(sequencer_count),
            log,
            programs: library.iter().map(|(_, p)| Arc::new(p.clone())).collect(),
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The simulation configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The architectural cost model.
    #[must_use]
    pub fn costs(&self) -> &CostModel {
        &self.config.costs
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> Cycles {
        self.now
    }

    pub(crate) fn set_now(&mut self, now: Cycles) {
        self.now = now;
    }

    /// Number of sequencers in the machine.
    #[must_use]
    pub fn sequencer_count(&self) -> usize {
        self.sequencers.len()
    }

    /// The per-sequencer state table (struct-of-arrays, keyed by
    /// [`SequencerId`]).
    #[must_use]
    pub fn sequencers(&self) -> &SequencerTable {
        &self.sequencers
    }

    /// Mutable access to the per-sequencer state table.
    pub fn sequencers_mut(&mut self) -> &mut SequencerTable {
        &mut self.sequencers
    }

    /// The shred pool.
    #[must_use]
    pub fn shreds(&self) -> &ShredPool {
        &self.shreds
    }

    /// A shred by identifier.
    #[must_use]
    pub fn shred(&self, id: ShredId) -> Option<&ShredExecState> {
        self.shreds.get(id)
    }

    /// Mutable access to a shred.
    pub fn shred_mut(&mut self, id: ShredId) -> Option<&mut ShredExecState> {
        self.shreds.get_mut(id)
    }

    /// The memory system.
    #[must_use]
    pub fn memory(&self) -> &MemorySystem {
        &self.memory
    }

    /// Mutable access to the memory system.
    pub fn memory_mut(&mut self) -> &mut MemorySystem {
        &mut self.memory
    }

    /// The OS kernel model.
    #[must_use]
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Mutable access to the OS kernel model.
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// Simulation statistics.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Mutable access to the statistics.
    pub fn stats_mut(&mut self) -> &mut SimStats {
        &mut self.stats
    }

    /// The event log.
    #[must_use]
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Records an event in the log.
    pub fn log_event(&mut self, seq: SequencerId, kind: LogKind, detail: impl Into<String>) {
        let now = self.now;
        self.log.record(now, seq, kind, detail);
    }

    /// Records an event in the log, building the detail text lazily (only
    /// when fine-grained logging will retain it).  Prefer this on hot paths
    /// whose detail requires formatting.
    pub fn log_event_with<F: FnOnce() -> String>(&mut self, seq: SequencerId, kind: LogKind, f: F) {
        let now = self.now;
        self.log.record_with(now, seq, kind, f);
    }

    /// The program referenced by `r`, if it exists in the library.
    #[must_use]
    pub fn program(&self, r: ProgramRef) -> Option<&Arc<misp_isa::ShredProgram>> {
        self.programs.get(r.as_usize())
    }

    /// Number of programs in the library.
    #[must_use]
    pub fn program_count(&self) -> usize {
        self.programs.len()
    }

    // ------------------------------------------------------------------
    // Shred management
    // ------------------------------------------------------------------

    /// Creates a new shred for `process`, owned by `thread`, running the
    /// program referenced by `program`.
    ///
    /// # Panics
    ///
    /// Panics if `program` is not in the library.
    pub fn create_shred(
        &mut self,
        process: ProcessId,
        thread: OsThreadId,
        program: ProgramRef,
        now: Cycles,
    ) -> ShredId {
        let prog = Arc::clone(
            self.programs
                .get(program.as_usize())
                .expect("program reference must be valid"),
        );
        let id = self.shreds.create(process, thread, prog, now);
        self.log
            .record_with(now, SequencerId::new(0), LogKind::ShredStart, || {
                format!("created {id}")
            });
        id
    }

    // ------------------------------------------------------------------
    // Event scheduling
    // ------------------------------------------------------------------

    #[cfg(test)]
    pub(crate) fn queue_mut(&mut self) -> &mut EventQueue {
        &mut self.queue
    }

    pub(crate) fn pop_event(&mut self) -> Option<crate::ScheduledEvent> {
        self.queue.pop()
    }

    /// Current event-queue occupancy (the sampler's queue-depth gauge).
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The event queue's self-profiling counters accumulated so far.
    #[must_use]
    pub fn queue_profile(&self) -> misp_trace::QueueProfile {
        self.queue.profile()
    }

    /// Schedules the interval metrics sampler to fire at `at`.  Sampler
    /// events have no supersede slot and draw their `seqno` from the shared
    /// counter like every other event.
    pub(crate) fn schedule_sample(&mut self, at: Cycles) {
        self.queue.push(at, Event::Sample);
    }

    /// Records a trace-only instant (TLB/cache miss) at the current
    /// simulation time.  A no-op while tracing is off.
    pub(crate) fn trace_instant(&mut self, seq: SequencerId, kind: misp_trace::TraceKind) {
        let now = self.now;
        self.log.trace_instant(now, seq, kind);
    }

    /// Removes and returns the trace ring for end-of-run reporting.
    pub(crate) fn take_trace(&mut self) -> Option<Box<misp_trace::TraceBuffer>> {
        self.log.take_trace()
    }

    /// The time of the earliest pending event, if any.  This is the engine's
    /// macro-step *batch horizon*: operations whose completion lands strictly
    /// before it can be executed inline, because no queued event can observe
    /// or perturb the executing sequencer in the meantime.
    #[must_use]
    pub fn next_event_time(&self) -> Option<Cycles> {
        self.queue.peek().map(|e| e.time)
    }

    /// Schedules the next `SeqReady` for `seq` at absolute time `at`,
    /// invalidating any previously scheduled event for that sequencer.
    pub fn schedule_ready(&mut self, seq: SequencerId, at: Cycles) {
        let generation = self.sequencers.bump_generation(seq);
        self.sequencers.set_pending(seq, Some(at));
        self.queue.push(at, Event::SeqReady { seq, generation });
    }

    /// Schedules a timer tick for the OS-visible CPU `cpu` at `at`.
    pub fn schedule_timer(&mut self, cpu: SequencerId, at: Cycles, tick: u64) {
        self.queue.push(at, Event::TimerTick { cpu, tick });
    }

    /// Injects an externally-produced event (a cross-machine mailbox
    /// delivery) into the queue at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies before an already-popped event time: external
    /// deliveries must respect the shard's monotone clock, which the fleet's
    /// conservative synchronizer guarantees.
    pub fn post_event(&mut self, at: Cycles, event: Event) {
        self.queue.push(at, event);
    }

    /// Wakes `seq` at time `now` if it is idle (no shred installed, not
    /// suspended): the sequencer will ask its runtime for work.
    pub fn wake(&mut self, seq: SequencerId, now: Cycles) {
        if self.sequencers.is_idle(seq) {
            self.schedule_ready(seq, now);
        }
    }

    /// Wakes every idle sequencer currently bound to `thread`.
    pub fn wake_thread_sequencers(&mut self, thread: OsThreadId, now: Cycles) {
        for id in self.sequencers.ids() {
            if self.sequencers.bound_thread(id) == Some(thread) && self.sequencers.is_idle(id) {
                self.schedule_ready(id, now);
            }
        }
    }

    // ------------------------------------------------------------------
    // Suspension / stall primitives used by platforms
    // ------------------------------------------------------------------

    /// Suspends `seq` indefinitely at `now`, capturing the remainder of its
    /// in-flight operation.  A later call to [`EngineCore::resume`] restarts
    /// it.  Any timed stall window currently open on the sequencer is
    /// subsumed: pending stall-end events will be ignored.
    pub fn suspend(&mut self, seq: SequencerId, now: Cycles) {
        if !self.sequencers.is_suspended(seq) {
            self.sequencers.suspend(seq, now);
            self.log.record(now, seq, LogKind::Suspend, "");
        }
        self.sequencers.set_stall_end(seq, None);
    }

    /// Resumes a suspended sequencer at time `at`, scheduling the completion
    /// of its interrupted operation (if any) or a work request.
    pub fn resume(&mut self, seq: SequencerId, at: Cycles) {
        if let Some(remaining) = self.sequencers.clear_suspension(seq) {
            let resume_at = at + remaining;
            self.log.record(at, seq, LogKind::Resume, "");
            self.schedule_ready(seq, resume_at);
        }
    }

    /// Stalls `seq` over the window `[now, until]`: the sequencer performs no
    /// work during the window and its in-flight operation is pushed out by the
    /// window's length.  Overlapping stall windows are merged: issuing a stall
    /// that ends later than the current one extends it, and the lost cycles
    /// are accounted only once.  A stall issued while the sequencer is
    /// indefinitely suspended is ignored (the indefinite suspension already
    /// covers it).
    pub fn stall(&mut self, seq: SequencerId, now: Cycles, until: Cycles) {
        if until <= now {
            return;
        }
        if self.sequencers.is_suspended(seq) {
            self.merge_stall_window(seq, until);
            return;
        }

        // Macro-step fast path for single-sequencer machines: with only one
        // simulated actor plus its timer, nothing can observe or extend the
        // window [now, until] before it elapses — the only mid-window pops
        // are stale `SeqReady`/leftover `StallEnd` no-ops, and every timer
        // tick lies on the configured grid, so `until` strictly before the
        // next grid point guarantees no tick lands inside the window.  The
        // stall, its `StallEnd` event and the resume can then be collapsed
        // into the resume's `SeqReady` alone, with identical accounting and
        // identical (adjacent) Suspend/Resume log records.  The second guard
        // excludes the one seqno tie that could reorder equal-time pops: the
        // eagerly scheduled resume must not collide with the next tick,
        // which the event-per-operation loop would have pushed first.
        if self.config.batch && self.sequencers.len() == 1 {
            let rem = self
                .sequencers
                .pending_at(seq)
                .map_or(Cycles::ZERO, |at| at.saturating_sub(now));
            let next_tick = self.config.timer.next_tick_after(now);
            if until < next_tick && until + rem != next_tick {
                self.open_stall_window(seq, now, until);
                let captured = self
                    .sequencers
                    .clear_suspension(seq)
                    .expect("just suspended");
                debug_assert_eq!(captured, rem);
                self.log.record(until, seq, LogKind::Resume, "");
                self.schedule_ready(seq, until + captured);
                return;
            }
        }

        self.open_stall_window(seq, now, until);
        self.queue.push(until, Event::StallEnd { seq });
    }

    /// Opens a fresh stall window on a non-suspended sequencer: suspends it
    /// (capturing its in-flight work), accounts the lost cycles once, and
    /// records the Suspend log entry.  Scheduling the window's end event is
    /// the caller's business ([`EngineCore::stall`] pushes a `StallEnd` or
    /// resumes eagerly; [`EngineCore::stall_many`] batches group events) —
    /// keeping the accounting in one place is what guarantees the paths stay
    /// byte-identical.
    fn open_stall_window(&mut self, seq: SequencerId, now: Cycles, until: Cycles) {
        self.sequencers.suspend(seq, now);
        self.sequencers.set_stall_end(seq, Some(until));
        let lost = until - now;
        self.sequencers.add_stalled(seq, lost);
        self.stats.suspension_cycles += lost;
        self.log.record(now, seq, LogKind::Suspend, "timed stall");
    }

    /// Merges a stall request into an already-suspended sequencer's state:
    /// extends a timed window that ends earlier (accounting only the extra
    /// cycles and scheduling the new end), and leaves indefinite or covering
    /// suspensions alone.
    fn merge_stall_window(&mut self, seq: SequencerId, until: Cycles) {
        match self.sequencers.stall_end(seq) {
            // Indefinitely suspended: the owner resumes it explicitly.
            None => {}
            Some(end) if until > end => {
                let extra = until - end;
                self.sequencers.add_stalled(seq, extra);
                self.sequencers.set_stall_end(seq, Some(until));
                self.stats.suspension_cycles += extra;
                self.queue.push(until, Event::StallEnd { seq });
            }
            Some(_) => {} // fully covered by the existing window
        }
    }

    /// Stalls every sequencer in `seqs` (in order) over the shared window
    /// `[now, until]`, with exactly the per-sequencer semantics of
    /// [`EngineCore::stall`] — merged overlapping windows, single-counted
    /// lost cycles, indefinite suspensions left alone.
    ///
    /// With [`SimConfig::batch`] enabled, runs of sequencers opening a
    /// *fresh* window are covered by a single [`Event::StallEndGroup`] queue
    /// entry instead of one `StallEnd` each; window extensions keep their
    /// own `StallEnd` events, pushed in the same relative order as the
    /// per-sequencer loop would have pushed them, so resume processing is
    /// byte-identical either way.
    pub fn stall_many(&mut self, seqs: &[SequencerId], now: Cycles, until: Cycles) {
        if until <= now {
            return;
        }
        if !self.config.batch {
            for &seq in seqs {
                self.stall(seq, now, until);
            }
            return;
        }
        // A segment is a run of consecutive fresh windows whose events can
        // share one queue entry.  An extension event breaks the segment so
        // the queue's equal-time pop order (push order) matches the
        // per-sequencer loop exactly.
        let mut seg: Option<(u32, u32)> = None; // (base sequencer index, mask)
        for &seq in seqs {
            if self.sequencers.is_suspended(seq) {
                // An extension pushes its own StallEnd; flush the current
                // segment first so equal-time pop order matches the
                // per-sequencer loop's push order.
                let extends = matches!(self.sequencers.stall_end(seq), Some(end) if until > end);
                if extends {
                    if let Some((base, mask)) = seg.take() {
                        self.push_stall_group(base, mask, until);
                    }
                }
                self.merge_stall_window(seq, until);
                continue;
            }
            self.open_stall_window(seq, now, until);
            let idx = seq.index();
            seg = match seg {
                None => Some((idx, 1)),
                Some((base, mask)) if idx > base && idx - base < 32 => {
                    Some((base, mask | (1 << (idx - base))))
                }
                Some((base, mask)) => {
                    self.push_stall_group(base, mask, until);
                    Some((idx, 1))
                }
            };
        }
        if let Some((base, mask)) = seg {
            self.push_stall_group(base, mask, until);
        }
    }

    /// Pushes the queue entry for one stall segment: a plain `StallEnd` for a
    /// single sequencer, a `StallEndGroup` for several.
    fn push_stall_group(&mut self, base: u32, mask: u32, until: Cycles) {
        if mask == 1 {
            self.queue.push(
                until,
                Event::StallEnd {
                    seq: SequencerId::new(base),
                },
            );
        } else {
            self.queue.push(until, Event::StallEndGroup { base, mask });
        }
    }

    /// Handles the end of a timed stall window (called by the engine loop).
    /// Returns `true` if the sequencer was actually resumed.
    pub(crate) fn handle_stall_end(&mut self, seq: SequencerId, now: Cycles) -> bool {
        match (
            self.sequencers.is_suspended(seq),
            self.sequencers.stall_end(seq),
        ) {
            (true, Some(end)) if end <= now => {
                self.resume(seq, now);
                true
            }
            _ => false,
        }
    }

    /// Captures and clears the execution context of the OS thread currently
    /// installed on `seq` (used by platforms when the OS preempts a thread).
    ///
    /// If the sequencer is suspended at the time of the save, the remaining
    /// work captured at suspension is transferred into the saved context and
    /// the suspension is cleared (the context now owns that state).
    pub fn save_context(&mut self, seq: SequencerId, now: Cycles) -> SavedContext {
        let remaining = if self.sequencers.is_suspended(seq) {
            self.sequencers
                .clear_suspension(seq)
                .unwrap_or(Cycles::ZERO)
        } else {
            match self.sequencers.pending_at(seq) {
                Some(at) => at.saturating_sub(now),
                None => Cycles::ZERO,
            }
        };
        let ctx = SavedContext {
            current_shred: self.sequencers.current_shred(seq),
            remaining,
        };
        self.sequencers.set_current_shred(seq, None);
        self.sequencers.set_pending(seq, None);
        self.sequencers.bump_generation(seq);
        ctx
    }

    /// Installs a previously saved execution context on `seq`, scheduling its
    /// continuation at `at` (plus any remaining in-flight work).
    pub fn restore_context(&mut self, seq: SequencerId, ctx: SavedContext, at: Cycles) {
        self.sequencers.set_current_shred(seq, ctx.current_shred);
        let resume_at = at + ctx.remaining;
        self.schedule_ready(seq, resume_at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use misp_isa::ProgramBuilder;

    fn core_with(programs: usize, sequencers: usize) -> EngineCore {
        let mut lib = ProgramLibrary::new();
        for i in 0..programs {
            lib.insert(
                ProgramBuilder::new(format!("p{i}"))
                    .compute(Cycles::new(100))
                    .build(),
            );
        }
        EngineCore::new(SimConfig::default(), sequencers, lib)
    }

    #[test]
    fn construction_sizes() {
        let core = core_with(2, 4);
        assert_eq!(core.sequencer_count(), 4);
        assert_eq!(core.program_count(), 2);
        assert_eq!(core.memory().sequencer_count(), 4);
        assert!(core.shreds().is_empty());
        assert_eq!(core.now(), Cycles::ZERO);
    }

    #[test]
    fn create_shred_resolves_program() {
        let mut core = core_with(1, 1);
        let pid = core.kernel_mut().spawn_process("p");
        let tid = core.kernel_mut().spawn_thread(pid);
        let id = core.create_shred(pid, tid, ProgramRef::new(0), Cycles::ZERO);
        assert_eq!(core.shred(id).unwrap().program_name(), "p0");
        assert_eq!(core.shred(id).unwrap().process(), pid);
    }

    #[test]
    #[should_panic(expected = "program reference must be valid")]
    fn create_shred_with_bad_ref_panics() {
        let mut core = core_with(1, 1);
        let pid = core.kernel_mut().spawn_process("p");
        let tid = core.kernel_mut().spawn_thread(pid);
        let _ = core.create_shred(pid, tid, ProgramRef::new(7), Cycles::ZERO);
    }

    #[test]
    fn schedule_ready_invalidates_older_events() {
        let mut core = core_with(1, 1);
        let seq = SequencerId::new(0);
        core.schedule_ready(seq, Cycles::new(10));
        let gen1 = core.sequencers().generation(seq);
        core.schedule_ready(seq, Cycles::new(20));
        let gen2 = core.sequencers().generation(seq);
        assert!(gen2 > gen1);
        // The superseded event was replaced in place: one live event remains,
        // carrying the latest generation and the latest time.
        assert_eq!(core.queue_mut().len(), 1);
        let only = core.pop_event().unwrap();
        assert_eq!(only.time, Cycles::new(20));
        match only.event {
            Event::SeqReady { generation, .. } => assert_eq!(generation, gen2),
            other => panic!("unexpected event {other:?}"),
        }
        assert!(core.pop_event().is_none());
    }

    #[test]
    fn wake_only_affects_idle_sequencers() {
        let mut core = core_with(1, 2);
        let s0 = SequencerId::new(0);
        let s1 = SequencerId::new(1);
        // Give s1 a shred so it is not idle.
        let pid = core.kernel_mut().spawn_process("p");
        let tid = core.kernel_mut().spawn_thread(pid);
        let shred = core.create_shred(pid, tid, ProgramRef::new(0), Cycles::ZERO);
        core.sequencers_mut().set_current_shred(s1, Some(shred));
        core.wake(s0, Cycles::new(5));
        core.wake(s1, Cycles::new(5));
        assert_eq!(
            core.queue_mut().len(),
            1,
            "only the idle sequencer is woken"
        );
    }

    #[test]
    fn wake_thread_sequencers_filters_by_binding() {
        let mut core = core_with(1, 3);
        let t = OsThreadId::new(0);
        core.sequencers_mut()
            .set_bound_thread(SequencerId::new(0), Some(t));
        core.sequencers_mut()
            .set_bound_thread(SequencerId::new(1), Some(OsThreadId::new(1)));
        core.wake_thread_sequencers(t, Cycles::ZERO);
        assert_eq!(core.queue_mut().len(), 1);
    }

    /// A single-sequencer core with the macro-step fast paths disabled, for
    /// tests that pin the event-per-operation stall mechanism.
    fn queued_core() -> EngineCore {
        let mut lib = ProgramLibrary::new();
        lib.insert(ProgramBuilder::new("p0").compute(Cycles::new(100)).build());
        let config = SimConfig {
            batch: false,
            ..SimConfig::default()
        };
        EngineCore::new(config, 1, lib)
    }

    #[test]
    fn stall_accumulates_statistics_and_reschedules() {
        let mut core = queued_core();
        let seq = SequencerId::new(0);
        // Pretend an op completes at t=100.
        core.schedule_ready(seq, Cycles::new(100));
        core.stall(seq, Cycles::new(40), Cycles::new(90));
        assert_eq!(core.sequencers().stalled(seq), Cycles::new(50));
        assert_eq!(core.stats().suspension_cycles, Cycles::new(50));
        assert!(core.sequencers().is_suspended(seq));
        assert_eq!(core.sequencers().stall_end(seq), Some(Cycles::new(90)));
        // Processing the stall end resumes the sequencer and re-schedules the
        // interrupted completion at 90 + (100 - 40) = 150.
        assert!(core.handle_stall_end(seq, Cycles::new(90)));
        assert!(!core.sequencers().is_suspended(seq));
        assert_eq!(core.sequencers().pending_at(seq), Some(Cycles::new(150)));
    }

    #[test]
    fn overlapping_stalls_extend_without_double_counting() {
        let mut core = queued_core();
        let seq = SequencerId::new(0);
        core.schedule_ready(seq, Cycles::new(1_000));
        core.stall(seq, Cycles::new(100), Cycles::new(200));
        // A longer overlapping window extends the stall by only the extra part.
        core.stall(seq, Cycles::new(150), Cycles::new(300));
        // A shorter overlapping window changes nothing.
        core.stall(seq, Cycles::new(160), Cycles::new(250));
        assert_eq!(core.sequencers().stalled(seq), Cycles::new(200));
        assert_eq!(core.sequencers().stall_end(seq), Some(Cycles::new(300)));
        // The first stall-end event (at 200) must not resume the sequencer.
        assert!(!core.handle_stall_end(seq, Cycles::new(200)));
        assert!(core.sequencers().is_suspended(seq));
        assert!(core.handle_stall_end(seq, Cycles::new(300)));
        // Remaining work was captured at the first suspension (1000 - 100).
        assert_eq!(core.sequencers().pending_at(seq), Some(Cycles::new(1_200)));
    }

    #[test]
    fn single_sequencer_stall_resumes_eagerly_with_identical_accounting() {
        // With batching on and one sequencer, stall() collapses the
        // StallEnd/resume round trip: the sequencer is left running with its
        // continuation scheduled at the same time, the same lost cycles and
        // the same Suspend/Resume log counts as the queued path produces.
        let mut core = core_with(1, 1);
        let seq = SequencerId::new(0);
        core.schedule_ready(seq, Cycles::new(100));
        core.stall(seq, Cycles::new(40), Cycles::new(90));
        assert!(
            !core.sequencers().is_suspended(seq),
            "eager path resumes immediately"
        );
        assert_eq!(core.sequencers().stalled(seq), Cycles::new(50));
        assert_eq!(core.stats().suspension_cycles, Cycles::new(50));
        // 90 (window end) + 60 (remaining work) — exactly where the queued
        // path's StallEnd-then-resume would land.
        assert_eq!(core.sequencers().pending_at(seq), Some(Cycles::new(150)));
        assert_eq!(core.log().count(LogKind::Suspend), 1);
        assert_eq!(core.log().count(LogKind::Resume), 1);
        // Only the rescheduled SeqReady is queued; no StallEnd round trip.
        let only = core.pop_event().unwrap();
        assert_eq!(only.time, Cycles::new(150));
        assert!(matches!(only.event, Event::SeqReady { .. }));
        assert!(core.pop_event().is_none());
    }

    #[test]
    fn stall_with_zero_window_is_noop() {
        let mut core = core_with(1, 1);
        let seq = SequencerId::new(0);
        core.stall(seq, Cycles::new(10), Cycles::new(10));
        assert_eq!(core.sequencers().stalled(seq), Cycles::ZERO);
        assert!(!core.sequencers().is_suspended(seq));
    }

    #[test]
    fn nested_stall_keeps_first_suspension() {
        let mut core = core_with(1, 1);
        let seq = SequencerId::new(0);
        core.suspend(seq, Cycles::new(10));
        // A stall while already suspended must not resume the sequencer.
        core.stall(seq, Cycles::new(20), Cycles::new(30));
        assert!(core.sequencers().is_suspended(seq));
    }

    #[test]
    fn save_and_restore_context_round_trips() {
        let mut core = core_with(1, 1);
        let seq = SequencerId::new(0);
        let pid = core.kernel_mut().spawn_process("p");
        let tid = core.kernel_mut().spawn_thread(pid);
        let shred = core.create_shred(pid, tid, ProgramRef::new(0), Cycles::ZERO);
        core.sequencers_mut().set_current_shred(seq, Some(shred));
        core.schedule_ready(seq, Cycles::new(100));
        let ctx = core.save_context(seq, Cycles::new(30));
        assert_eq!(ctx.current_shred, Some(shred));
        assert_eq!(ctx.remaining, Cycles::new(70));
        assert_eq!(core.sequencers().current_shred(seq), None);
        core.restore_context(seq, ctx, Cycles::new(500));
        assert_eq!(core.sequencers().current_shred(seq), Some(shred));
        assert_eq!(core.sequencers().pending_at(seq), Some(Cycles::new(570)));
    }

    #[test]
    fn log_event_records_with_current_time() {
        let mut core = core_with(1, 1);
        core.set_now(Cycles::new(77));
        core.log_event(SequencerId::new(0), LogKind::RingEnter, "syscall");
        assert_eq!(core.log().count(LogKind::RingEnter), 1);
    }
}
