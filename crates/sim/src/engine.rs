//! The single-machine simulation engine: a fleet-of-one facade.
//!
//! [`Engine`] wraps a [`FleetEngine`] holding exactly one [`Machine`], so
//! every single-machine simulation exercises the same start/advance/finish
//! path as a fleet shard.  With no neighbours the conservative synchronizer
//! has no lookahead bound and the shard runs to completion in one window —
//! byte-identical to the historical single-queue engine, which is what keeps
//! every golden, bench and zero-allocation proof unchanged.

use crate::fleet::FleetEngine;
use crate::machine::{Machine, SimReport};
use crate::{Platform, Runtime, SimConfig};
use misp_isa::ProgramLibrary;
use misp_types::{Cycles, MachineId, ProcessId, Result};

/// The discrete-event simulation engine for one machine.
///
/// An engine combines an [`crate::EngineCore`] (all machine state), a
/// [`Platform`] (the architecture: MISP or SMP) and one [`Runtime`] per
/// simulated process (the user-level scheduler).  See the crate-level
/// documentation for an end-to-end example.  Internally this is a fleet of
/// one: [`Engine::into_machine`] surrenders the machine so it can join a
/// larger [`FleetEngine`].
#[derive(Debug)]
pub struct Engine<P: Platform> {
    fleet: FleetEngine<P>,
    id: MachineId,
}

impl<P: Platform> Engine<P> {
    /// Creates an engine for a machine with `sequencer_count` sequencers.
    #[must_use]
    pub fn new(
        config: SimConfig,
        sequencer_count: usize,
        library: ProgramLibrary,
        platform: P,
    ) -> Self {
        let mut fleet = FleetEngine::new(Cycles::new(1));
        let id = fleet.add_machine(Machine::new(config, sequencer_count, library, platform));
        Engine { fleet, id }
    }

    fn machine(&self) -> &Machine<P> {
        self.fleet.machine(self.id).expect("fleet of one")
    }

    fn machine_mut(&mut self) -> &mut Machine<P> {
        self.fleet.machine_mut(self.id).expect("fleet of one")
    }

    /// The engine core (machine state).
    #[must_use]
    pub fn core(&self) -> &crate::EngineCore {
        self.machine().core()
    }

    /// Mutable access to the engine core, used while assembling a machine
    /// (spawning processes, registering address spaces, …).
    pub fn core_mut(&mut self) -> &mut crate::EngineCore {
        self.machine_mut().core_mut()
    }

    /// The platform.
    #[must_use]
    pub fn platform(&self) -> &P {
        self.machine().platform()
    }

    /// Mutable access to the platform.
    pub fn platform_mut(&mut self) -> &mut P {
        self.machine_mut().platform_mut()
    }

    /// Attaches the user-level runtime serving `process`.
    pub fn add_runtime(&mut self, process: ProcessId, runtime: Box<dyn Runtime>) {
        self.machine_mut().add_runtime(process, runtime);
    }

    /// Restricts the completion criterion to the given processes.  By default
    /// every process with a runtime is measured and the run ends when all of
    /// them finish.
    pub fn set_measured(&mut self, processes: Vec<ProcessId>) {
        self.machine_mut().set_measured(processes);
    }

    /// Surrenders the assembled [`Machine`] so it can be added to a
    /// multi-machine [`FleetEngine`].
    #[must_use]
    pub fn into_machine(self) -> Machine<P> {
        self.fleet
            .drain()
            .map(|(_, m)| m)
            .next()
            .expect("fleet of one")
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// * [`misp_types::MispError::CycleBudgetExhausted`] if the configured
    ///   budget elapses before every measured process finishes.
    /// * [`misp_types::MispError::Deadlock`] if the event queue drains while
    ///   measured work remains.
    /// * [`misp_types::MispError::InvalidConfiguration`] if no runtime was
    ///   attached.
    pub fn run(&mut self) -> Result<SimReport> {
        let mut reports = self.fleet.run()?;
        Ok(reports.pop().expect("fleet of one"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::EngineCore;
    use crate::{LocalPlatform, Platform, SingleShredRuntime};
    use misp_isa::{ProgramBuilder, SyscallKind};
    use misp_os::{OsEventKind, TimerConfig};
    use misp_types::SequencerId;

    /// Wraps [`LocalPlatform`] and, on the first syscall, opens three
    /// overlapping stall windows on sequencer 1: a short one, a longer one
    /// that extends it, and a superseded shorter one that must change
    /// nothing.  The stale-window regression below pins the resume time.
    #[derive(Debug)]
    struct OverlappingStallPlatform {
        inner: LocalPlatform,
        stalled_once: bool,
    }

    impl Platform for OverlappingStallPlatform {
        fn init(&mut self, core: &mut EngineCore) {
            self.inner.init(core);
        }

        fn on_priv_event(
            &mut self,
            core: &mut EngineCore,
            seq: SequencerId,
            kind: OsEventKind,
            now: Cycles,
        ) -> Cycles {
            if kind == OsEventKind::Syscall && !self.stalled_once {
                self.stalled_once = true;
                let victim = SequencerId::new(1);
                core.stall(victim, now, now + Cycles::new(500));
                // A longer overlapping window extends the stall...
                core.stall(victim, now, now + Cycles::new(2_000));
                // ...and a superseded shorter window must not resume early,
                // no matter how stall-end events are scheduled or batched.
                core.stall(victim, now, now + Cycles::new(1_000));
            }
            self.inner.on_priv_event(core, seq, kind, now)
        }

        fn on_timer_tick(
            &mut self,
            core: &mut EngineCore,
            cpu: SequencerId,
            tick: u64,
            now: Cycles,
        ) {
            self.inner.on_timer_tick(core, cpu, tick, now);
        }
    }

    fn run_overlapping_stall(batch: bool) -> SimReport {
        let config = SimConfig {
            timer: TimerConfig::disabled(),
            batch,
            ..SimConfig::default()
        };
        let mut library = ProgramLibrary::new();
        let staller = library.insert(
            ProgramBuilder::new("staller")
                .compute(Cycles::new(100))
                .syscall(SyscallKind::Io)
                .build(),
        );
        let victim = library.insert(
            ProgramBuilder::new("victim")
                .compute(Cycles::new(10_000))
                .build(),
        );
        let mut inner = LocalPlatform::new(2);
        inner.disable_timer();
        let platform = OverlappingStallPlatform {
            inner,
            stalled_once: false,
        };
        let mut engine = Engine::new(config, 2, library, platform);
        let p0 = engine.core_mut().kernel_mut().spawn_process("staller");
        let t0 = engine.core_mut().kernel_mut().spawn_thread(p0);
        let p1 = engine.core_mut().kernel_mut().spawn_process("victim");
        let t1 = engine.core_mut().kernel_mut().spawn_thread(p1);
        engine.add_runtime(p0, Box::new(SingleShredRuntime::new(staller)));
        engine.add_runtime(p1, Box::new(SingleShredRuntime::new(victim)));
        engine.platform_mut().inner.pin_thread(t0, 0);
        engine.platform_mut().inner.pin_thread(t1, 1);
        engine.run().unwrap()
    }

    /// Regression test for stale stall-end handling: after a window is
    /// extended, the superseded shorter window's end must not resume the
    /// sequencer early — with the macro-step fast paths on or off, the
    /// victim resumes exactly when the longest window closes.
    #[test]
    fn superseded_stall_window_does_not_resume_early() {
        let switch = SimConfig::default().costs.shred_context_switch;
        // The victim installs (shred_context_switch) and computes 10k cycles;
        // the staller's syscall at `switch + 100` opens windows ending 500,
        // 2000 and (superseded) 1000 cycles later.  The victim's in-flight
        // compute has `switch + 10_000 - (switch + 100) = 9_900` cycles left,
        // so it completes at `switch + 100 + 2_000 + 9_900 = switch+12_000`.
        let expected = switch + Cycles::new(12_000);
        for batch in [true, false] {
            let report = run_overlapping_stall(batch);
            assert_eq!(
                report.completion_of(misp_types::ProcessId::new(1)),
                Some(expected),
                "victim resume time (batch = {batch})"
            );
            assert_eq!(
                report.stats.per_sequencer[1].stalled,
                Cycles::new(2_000),
                "only the merged window is charged (batch = {batch})"
            );
        }
        // And the two modes agree on everything else, down to the log digest.
        let on = run_overlapping_stall(true);
        let off = run_overlapping_stall(false);
        assert_eq!(on.total_cycles, off.total_cycles);
        assert_eq!(on.completions, off.completions);
        assert_eq!(on.log_digest, off.log_digest);
    }
}
