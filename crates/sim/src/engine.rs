//! The simulation engine and its main loop.

use crate::core::EngineCore;
use crate::{Event, LogKind, Platform, Runtime, RuntimeOutcome, ShredStatus, SimConfig, SimStats};
use misp_isa::{Op, ProgramLibrary};
use misp_os::OsEventKind;
use misp_types::{Cycles, MispError, OsThreadId, ProcessId, Result, SequencerId};
use std::collections::{BTreeMap, BTreeSet};

/// The outcome of a completed simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The time at which the last measured process completed.
    pub total_cycles: Cycles,
    /// Completion time of each measured process (also available inside
    /// `stats`).
    pub completions: BTreeMap<u32, Cycles>,
    /// Full statistics for the run.
    pub stats: SimStats,
    /// Deterministic digest of the event log (see
    /// [`crate::EventLog::digest`]): two runs of the same configuration must
    /// produce equal digests, which the sweep harness and the determinism
    /// tests rely on.
    pub log_digest: u64,
}

impl SimReport {
    /// Completion time of `process`, if it was measured.
    #[must_use]
    pub fn completion_of(&self, process: ProcessId) -> Option<Cycles> {
        self.completions.get(&process.index()).copied()
    }
}

/// The discrete-event simulation engine.
///
/// An engine combines an [`EngineCore`] (all machine state), a [`Platform`]
/// (the architecture: MISP or SMP) and one [`Runtime`] per simulated process
/// (the user-level scheduler).  See the crate-level documentation for an
/// end-to-end example.
#[derive(Debug)]
pub struct Engine<P: Platform> {
    core: EngineCore,
    platform: P,
    runtimes: BTreeMap<u32, Box<dyn Runtime>>,
    measured: Vec<ProcessId>,
}

impl<P: Platform> Engine<P> {
    /// Creates an engine for a machine with `sequencer_count` sequencers.
    #[must_use]
    pub fn new(
        config: SimConfig,
        sequencer_count: usize,
        library: ProgramLibrary,
        platform: P,
    ) -> Self {
        Engine {
            core: EngineCore::new(config, sequencer_count, library),
            platform,
            runtimes: BTreeMap::new(),
            measured: Vec::new(),
        }
    }

    /// The engine core (machine state).
    #[must_use]
    pub fn core(&self) -> &EngineCore {
        &self.core
    }

    /// Mutable access to the engine core, used while assembling a machine
    /// (spawning processes, registering address spaces, …).
    pub fn core_mut(&mut self) -> &mut EngineCore {
        &mut self.core
    }

    /// The platform.
    #[must_use]
    pub fn platform(&self) -> &P {
        &self.platform
    }

    /// Mutable access to the platform.
    pub fn platform_mut(&mut self) -> &mut P {
        &mut self.platform
    }

    /// Attaches the user-level runtime serving `process`.
    pub fn add_runtime(&mut self, process: ProcessId, runtime: Box<dyn Runtime>) {
        self.runtimes.insert(process.index(), runtime);
    }

    /// Restricts the completion criterion to the given processes.  By default
    /// every process with a runtime is measured and the run ends when all of
    /// them finish.
    pub fn set_measured(&mut self, processes: Vec<ProcessId>) {
        self.measured = processes;
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// * [`MispError::CycleBudgetExhausted`] if the configured budget elapses
    ///   before every measured process finishes.
    /// * [`MispError::Deadlock`] if the event queue drains while measured
    ///   work remains.
    /// * [`MispError::InvalidConfiguration`] if no runtime was attached.
    pub fn run(&mut self) -> Result<SimReport> {
        if self.runtimes.is_empty() {
            return Err(MispError::InvalidConfiguration(
                "no runtime attached to the engine".to_string(),
            ));
        }
        self.platform.init(&mut self.core);
        assert_eq!(
            self.core.config().cache.enabled,
            self.core.memory().cache_enabled(),
            "the platform's init() must call MemorySystem::configure_caches \
             with its L2 clustering when the config enables the cache model"
        );

        // Start every OS thread of every process that has a runtime, in
        // process/thread creation order for determinism.
        let mut startups: Vec<(u32, OsThreadId)> = Vec::new();
        for &pid_idx in self.runtimes.keys() {
            let pid = ProcessId::new(pid_idx);
            if let Some(process) = self.core.kernel().process(pid) {
                for &tid in process.threads() {
                    startups.push((pid_idx, tid));
                }
            }
        }
        for (pid_idx, tid) in startups {
            if let Some(rt) = self.runtimes.get_mut(&pid_idx) {
                rt.on_thread_start(&mut self.core, tid, Cycles::ZERO);
            }
        }

        let measured: Vec<ProcessId> = if self.measured.is_empty() {
            self.runtimes.keys().map(|&i| ProcessId::new(i)).collect()
        } else {
            self.measured.clone()
        };
        let mut remaining: BTreeSet<u32> = measured.iter().map(|p| p.index()).collect();

        // A process whose work is already complete at startup (e.g. an empty
        // workload) must not hang the loop.
        remaining.retain(|&pid_idx| {
            let rt = &self.runtimes[&pid_idx];
            if rt.is_finished(&self.core) {
                self.core
                    .stats_mut()
                    .record_completion(ProcessId::new(pid_idx), Cycles::ZERO);
                false
            } else {
                true
            }
        });

        let budget = self.core.config().cycle_budget;
        while let Some(ev) = self.core.pop_event() {
            if ev.time > budget {
                return Err(MispError::CycleBudgetExhausted {
                    budget: budget.as_u64(),
                });
            }
            self.core.set_now(ev.time);
            let mut check_completion = false;
            match ev.event {
                Event::SeqReady { seq, generation } => {
                    if generation != self.core.sequencer(seq).generation() {
                        continue; // stale event
                    }
                    self.core.sequencer_mut(seq).set_pending(None);
                    if self.core.sequencer(seq).is_suspended() {
                        continue; // will be resumed explicitly by the platform
                    }
                    check_completion = self.step_sequencer(seq, ev.time)?;
                }
                Event::TimerTick { cpu, tick } => {
                    self.platform
                        .on_timer_tick(&mut self.core, cpu, tick, ev.time);
                }
                Event::StallEnd { seq } => {
                    self.core.handle_stall_end(seq, ev.time);
                }
            }

            if check_completion && !remaining.is_empty() {
                let finished: Vec<u32> = remaining
                    .iter()
                    .copied()
                    .filter(|pid_idx| self.runtimes[pid_idx].is_finished(&self.core))
                    .collect();
                for pid_idx in finished {
                    self.core
                        .stats_mut()
                        .record_completion(ProcessId::new(pid_idx), ev.time);
                    remaining.remove(&pid_idx);
                }
                if remaining.is_empty() {
                    return Ok(self.report(&measured));
                }
            }

            if remaining.is_empty() {
                return Ok(self.report(&measured));
            }
        }

        if remaining.is_empty() {
            Ok(self.report(&measured))
        } else {
            Err(MispError::Deadlock {
                detail: format!(
                    "event queue drained with {} measured process(es) incomplete",
                    remaining.len()
                ),
            })
        }
    }

    fn report(&mut self, measured: &[ProcessId]) -> SimReport {
        // Fold per-sequencer counters into the statistics snapshot.
        for i in 0..self.core.sequencer_count() {
            let seq = self.core.sequencer(SequencerId::new(i as u32));
            let util = crate::SeqUtilization {
                busy: seq.busy(),
                stalled: seq.stalled(),
                ops: seq.ops_executed(),
            };
            self.core.stats_mut().per_sequencer[i] = util;
        }
        let tlb: Vec<misp_mem::TlbStats> = (0..self.core.sequencer_count())
            .map(|i| {
                self.core
                    .memory()
                    .tlb_stats(SequencerId::new(i as u32))
                    .unwrap_or_default()
            })
            .collect();
        self.core.stats_mut().fold_tlb(tlb);
        if self.core.memory().cache_enabled() {
            let cache: Vec<misp_cache::CacheStats> = (0..self.core.sequencer_count())
                .map(|i| {
                    self.core
                        .memory()
                        .cache_stats(SequencerId::new(i as u32))
                        .unwrap_or_default()
                })
                .collect();
            self.core.stats_mut().fold_cache(cache);
        }
        let stats = self.core.stats().clone();
        let completions: BTreeMap<u32, Cycles> = measured
            .iter()
            .filter_map(|p| stats.completion_of(*p).map(|c| (p.index(), c)))
            .collect();
        let total_cycles = completions.values().copied().max().unwrap_or(Cycles::ZERO);
        SimReport {
            total_cycles,
            completions,
            stats,
            log_digest: self.core.log().digest(),
        }
    }

    /// Executes the next step for `seq`.  Returns `true` if a shred finished
    /// (so the caller should re-check process completion).
    fn step_sequencer(&mut self, seq: SequencerId, now: Cycles) -> Result<bool> {
        let Some(thread) = self.core.sequencer(seq).bound_thread() else {
            return Ok(false); // unbound sequencer: nothing to do
        };
        let Some(pid) = self.core.kernel().thread(thread).map(|t| t.process()) else {
            return Ok(false);
        };
        let costs = *self.core.costs();
        let access_cost = self.core.config().access_cost;

        // Install a shred if none is running.
        let mut install_cost = Cycles::ZERO;
        if self.core.sequencer(seq).current_shred().is_none() {
            let Some(runtime) = self.runtimes.get_mut(&pid.index()) else {
                return Ok(false);
            };
            match runtime.next_shred(&mut self.core, seq, thread, now) {
                Some(shred) => {
                    self.core.sequencer_mut(seq).set_current_shred(Some(shred));
                    if let Some(s) = self.core.shred_mut(shred) {
                        s.set_status(ShredStatus::Running);
                    }
                    self.core
                        .log_event(seq, LogKind::ShredStart, format!("{shred} installed"));
                    install_cost = costs.shred_context_switch;
                }
                None => return Ok(false), // stays idle; a wake will retry
            }
        }
        let shred_id = self
            .core
            .sequencer(seq)
            .current_shred()
            .expect("just installed");

        let op = self
            .core
            .shred_mut(shred_id)
            .expect("installed shred exists")
            .cursor_mut()
            .next_op();
        self.core.sequencer_mut(seq).count_op();

        let mut shred_finished = false;
        match op {
            Op::Compute(c) => {
                self.core.sequencer_mut(seq).add_busy(c);
                self.core.schedule_ready(seq, now + install_cost + c);
            }
            Op::Touch { addr, kind } => {
                let store = kind == misp_isa::AccessKind::Store;
                let outcome = self.core.memory_mut().access(seq, addr, store);
                // The cache model *refines* the flat access cost into
                // per-level latencies, so its latency replaces `access_cost`
                // rather than stacking on it (an all-L1-hit run with the
                // default costs matches the flat model).
                let mut cost = match outcome.cache {
                    Some(cache) => cache.latency,
                    None => access_cost,
                };
                if !outcome.tlb_hit {
                    cost += costs.tlb_walk;
                }
                self.core.sequencer_mut(seq).add_busy(cost);
                let ready_at = if outcome.page_fault {
                    let resume = self.platform.on_priv_event(
                        &mut self.core,
                        seq,
                        OsEventKind::PageFault,
                        now,
                    );
                    resume + cost
                } else {
                    now + install_cost + cost
                };
                self.core.schedule_ready(seq, ready_at);
            }
            Op::Syscall(_) => {
                let resume =
                    self.platform
                        .on_priv_event(&mut self.core, seq, OsEventKind::Syscall, now);
                self.core.schedule_ready(seq, resume + install_cost);
            }
            Op::Signal {
                target,
                continuation,
            } => {
                self.core.stats_mut().signals_sent += 1;
                self.core
                    .log_event(seq, LogKind::SignalSent, format!("to {target}"));
                let resume =
                    self.platform
                        .on_signal(&mut self.core, seq, target, &continuation, now);
                self.core.schedule_ready(seq, resume + install_cost);
            }
            Op::RegisterHandler => {
                let resume = self.platform.on_register_handler(&mut self.core, seq, now);
                self.core.schedule_ready(seq, resume + install_cost);
            }
            Op::Runtime(rop) => {
                let runtime = self
                    .runtimes
                    .get_mut(&pid.index())
                    .expect("runtime exists for running shred");
                let outcome = runtime.on_runtime_op(&mut self.core, seq, shred_id, &rop, now);
                match outcome {
                    RuntimeOutcome::Continue { cost } => {
                        self.core.sequencer_mut(seq).add_busy(cost);
                        self.core.schedule_ready(seq, now + install_cost + cost);
                    }
                    RuntimeOutcome::Block { cost } => {
                        if let Some(s) = self.core.shred_mut(shred_id) {
                            if s.status() == ShredStatus::Running {
                                s.set_status(ShredStatus::Blocked);
                            }
                        }
                        self.core.sequencer_mut(seq).set_current_shred(None);
                        self.core.schedule_ready(
                            seq,
                            now + install_cost + cost + costs.shred_context_switch,
                        );
                    }
                    RuntimeOutcome::Yield { cost } => {
                        if let Some(s) = self.core.shred_mut(shred_id) {
                            if s.status() == ShredStatus::Running {
                                s.set_status(ShredStatus::Ready);
                            }
                        }
                        self.core.sequencer_mut(seq).set_current_shred(None);
                        self.core.schedule_ready(
                            seq,
                            now + install_cost + cost + costs.shred_context_switch,
                        );
                    }
                    RuntimeOutcome::Exit { cost } => {
                        if let Some(s) = self.core.shred_mut(shred_id) {
                            s.finish(now);
                        }
                        self.core
                            .log_event(seq, LogKind::ShredEnd, format!("{shred_id} exited"));
                        self.core.sequencer_mut(seq).set_current_shred(None);
                        self.core.schedule_ready(
                            seq,
                            now + install_cost + cost + costs.shred_context_switch,
                        );
                        shred_finished = true;
                    }
                }
            }
            Op::Halt => {
                let runtime = self
                    .runtimes
                    .get_mut(&pid.index())
                    .expect("runtime exists for running shred");
                runtime.on_shred_halt(&mut self.core, seq, shred_id, now);
                if let Some(s) = self.core.shred_mut(shred_id) {
                    s.finish(now);
                }
                self.core
                    .log_event(seq, LogKind::ShredEnd, format!("{shred_id} halted"));
                self.core.sequencer_mut(seq).set_current_shred(None);
                self.core
                    .schedule_ready(seq, now + costs.shred_context_switch);
                shred_finished = true;
            }
        }
        Ok(shred_finished)
    }
}
