//! The discrete-event queue.

use misp_trace::QueueProfile;
use misp_types::{Cycles, SequencerId};
use std::cmp::Ordering;

/// An event processed by the engine's main loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// The sequencer finished its current operation (or was woken) and is
    /// ready to proceed.  `generation` guards against stale events: the
    /// sequencer ignores events whose generation does not match its own.
    SeqReady {
        /// The sequencer concerned.
        seq: SequencerId,
        /// Generation counter captured when the event was scheduled.
        generation: u64,
    },
    /// A timer interrupt fires on the OS-visible CPU whose sequencer is
    /// `cpu`.  `tick` is the 1-based tick number on that CPU.
    TimerTick {
        /// The sequencer acting as the OS-visible CPU.
        cpu: SequencerId,
        /// The 1-based tick number.
        tick: u64,
    },
    /// The end of a timed stall window for `seq`.  The engine resumes the
    /// sequencer if (and only if) its stall window has actually elapsed; stale
    /// resume events from superseded, shorter windows are ignored.
    StallEnd {
        /// The stalled sequencer.
        seq: SequencerId,
    },
    /// The end of one shared stall window covering several sequencers (a
    /// serialization window suspending every AMS of a MISP processor at
    /// once).  Equivalent to consecutive [`Event::StallEnd`] events for
    /// `base + i` over the set bits of `mask` in ascending order, collapsed
    /// into one queue entry; like `StallEnd`, each covered sequencer is only
    /// resumed if its own window has actually elapsed.
    StallEndGroup {
        /// Sequencer index of bit 0 of `mask`.
        base: u32,
        /// Bit `i` covers sequencer `base + i`.
        mask: u32,
    },
    /// The interval metrics sampler fires: the engine records one
    /// [`misp_trace::IntervalSample`] and (conditionally) reschedules the
    /// next firing.  Scheduled only when `SimConfig::trace.metrics_interval`
    /// is non-zero, and drawing its `seqno` from the same shared counter as
    /// every other event, so samples land at deterministic points of the
    /// queue's total order.
    Sample,
}

/// An event tagged with its scheduled time and a monotonic tie-breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledEvent {
    /// Absolute simulation time at which the event fires.
    pub time: Cycles,
    /// Monotonic sequence number assigned at insertion; earlier insertions
    /// fire first among events with equal time, making the simulation
    /// deterministic.
    pub seqno: u64,
    /// The event payload.
    pub event: Event,
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so that BinaryHeap (a max-heap) pops the earliest event.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seqno.cmp(&self.seqno))
    }
}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Marks the absence of a queue position in the slot index.
const NO_POS: u64 = u64::MAX;
/// Marks an event kind that has no replacement slot.
const NO_SLOT: u32 = u32::MAX;
/// One bucket per possible length of the common bit-prefix with `last`
/// (64-bit keys ⇒ prefix lengths 0..=64 ⇒ 65 buckets).
const BUCKETS: usize = 65;

/// A deterministic time-ordered event queue.
///
/// # Total order
///
/// Events pop in ascending `(time, seqno)` order, nothing else.  Every event —
/// timer ticks included — draws its `seqno` from the single shared counter at
/// push time, so the pair is globally unique and the order is *total*: an
/// event's kind never participates in a tie-break, and two events at the same
/// time pop in the order they were pushed, whatever mix of kinds they are.
/// (Earlier revisions kept timer ticks in a side array scanned separately
/// from the heap, which left the tick-vs-heap tie at equal `(time, seqno)`
/// formally unspecified; merging both into one structure under one key makes
/// the order a definition rather than a coincidence of scan order.)
///
/// # Monotone radix heap
///
/// Simulation time never goes backwards: every push is at a time `>=` the
/// last popped event's time (asserted).  That monotonicity admits a *radix
/// heap* — cheaper than a comparison heap because entries are only examined
/// when time actually advances past them:
///
/// * `last` is the time of the most recently popped event; every queued
///   entry's time is `>= last`.
/// * Entry `t` lives in bucket `64 - leading_zeros(t XOR last)`: bucket 0
///   holds entries with `t == last` (due now), bucket `b >= 1` holds entries
///   whose highest bit of difference from `last` is bit `b - 1`.  Buckets are
///   ordered: every entry in a lower bucket precedes every entry in a higher
///   one, so the global minimum always lives in the first non-empty bucket.
/// * Push appends to the entry's bucket: O(1), no sifting.
/// * Pop removes the minimum from the first non-empty bucket `b`.  When
///   `b > 0`, time advances (`last` becomes the popped time) and the
///   remaining entries of bucket `b` are redistributed; each lands in a
///   strictly lower bucket (their prefix agreement with the new `last`
///   strictly grows), which is what bounds the total redistribution work —
///   each entry can only move down through the 65 buckets, giving O(64)
///   amortized moves per entry instead of O(log n) comparisons per
///   operation.  Entries in buckets other than `b` are untouched: `last`
///   only changes in bits below their differing bit, so their bucket index
///   is unchanged.
///
/// The earliest entry is cached, making `peek` (the macro-step batching
/// horizon) a field read.
///
/// # Supersede slot index
///
/// The queue is *indexed* for the two event kinds the engine supersedes:
/// each sequencer has at most one live `SeqReady` (a reschedule invalidates
/// the previous one) and at most one live stall window.  `pos` maps each
/// slot (`2 * sequencer + kind_bit`) to the bucket and in-bucket index of its
/// live entry.  Pushing a new event for an occupied slot removes the
/// superseded entry and inserts the successor under its own fresh
/// `(time, seqno)` key — exactly the key it would have had as a separate
/// push — so live events pop in the identical order while stale traffic
/// disappears.  Removal restores the slot to `NO_POS` before the successor
/// claims it (asserted), so a stale position can never alias a live entry.
#[derive(Debug)]
pub struct EventQueue {
    /// `buckets[b]` holds entries whose common bit-prefix with `last` is
    /// `64 - b` bits long; order within a bucket is arbitrary.
    buckets: Vec<Vec<ScheduledEvent>>,
    /// Bit `b` set iff `buckets[b]` is non-empty (`trailing_zeros` finds the
    /// first non-empty bucket in one instruction).
    occupied: u128,
    /// Queue position of each slot's live entry, packed as
    /// `(bucket << 32) | in-bucket index`, or `NO_POS` when absent; indexed
    /// by `2 * sequencer + kind_bit`, see [`EventQueue::slot_of`].
    pos: Vec<u64>,
    /// Cached copy of the earliest entry (the minimum `(time, seqno)`).
    min: Option<ScheduledEvent>,
    /// Time of the most recently popped event; the floor for every push.
    last: u64,
    /// Scratch space for bucket redistribution, retained across pops so the
    /// steady-state step path never allocates.
    scratch: Vec<ScheduledEvent>,
    /// Number of queued entries.
    len: usize,
    next_seqno: u64,
    /// Always-on self-profiling counters (plain integer adds on paths that
    /// already write adjacent fields); read out via [`EventQueue::profile`].
    profile: QueueProfile,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[inline]
fn pack(bucket: usize, idx: usize) -> u64 {
    ((bucket as u64) << 32) | idx as u64
}

#[inline]
fn unpack(p: u64) -> (usize, usize) {
    ((p >> 32) as usize, (p & u32::MAX as u64) as usize)
}

impl EventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..BUCKETS).map(|_| Vec::new()).collect(),
            occupied: 0,
            pos: Vec::new(),
            min: None,
            last: 0,
            scratch: Vec::new(),
            len: 0,
            next_seqno: 0,
            profile: QueueProfile::default(),
        }
    }

    #[inline]
    fn precedes(a: &ScheduledEvent, b: &ScheduledEvent) -> bool {
        (a.time, a.seqno) < (b.time, b.seqno)
    }

    /// The bucket `time` lives in, relative to the current `last`.
    #[inline]
    fn bucket_index(&self, time: Cycles) -> usize {
        (64 - (time.as_u64() ^ self.last).leading_zeros()) as usize
    }

    /// The replacement slot of an event: `SeqReady` and `StallEnd` events are
    /// per-sequencer singletons (a newer push supersedes the queued one);
    /// timer ticks and group stall-ends are never superseded.
    #[inline]
    fn slot_of(event: &Event) -> u32 {
        match event {
            Event::SeqReady { seq, .. } => seq.index() * 2,
            Event::StallEnd { seq } => seq.index() * 2 + 1,
            Event::TimerTick { .. } | Event::StallEndGroup { .. } | Event::Sample => NO_SLOT,
        }
    }

    /// Records `(bucket, idx)` as the position of `event`'s slot, if any.
    #[inline]
    fn note_pos(&mut self, event: &Event, bucket: usize, idx: usize) {
        let slot = Self::slot_of(event);
        if slot != NO_SLOT {
            self.pos[slot as usize] = pack(bucket, idx);
        }
    }

    /// Appends `ev` to its bucket, maintaining the slot index and occupancy
    /// mask.  Does not touch `len` or the cached minimum.
    #[inline]
    // lint: no-alloc
    fn place(&mut self, ev: ScheduledEvent) {
        let b = self.bucket_index(ev.time);
        let idx = self.buckets[b].len();
        self.buckets[b].push(ev);
        self.occupied |= 1 << b;
        self.note_pos(&ev.event, b, idx);
    }

    /// Removes and returns the entry at `(bucket, idx)`, fixing up the slot
    /// index for both the removed entry and the entry `swap_remove` moved
    /// into its place.
    // lint: no-alloc
    fn remove_at(&mut self, bucket: usize, idx: usize) -> ScheduledEvent {
        let removed = self.buckets[bucket].swap_remove(idx);
        let slot = Self::slot_of(&removed.event);
        if slot != NO_SLOT {
            self.pos[slot as usize] = NO_POS;
        }
        if idx < self.buckets[bucket].len() {
            let moved = self.buckets[bucket][idx];
            self.note_pos(&moved.event, bucket, idx);
        }
        if self.buckets[bucket].is_empty() {
            self.occupied &= !(1u128 << bucket);
        }
        self.len -= 1;
        removed
    }

    /// The minimum `(time, seqno)` entry, found by scanning the first
    /// non-empty bucket (buckets are ordered by time, so the minimum cannot
    /// live anywhere else).
    // lint: no-alloc
    fn scan_min(&self) -> Option<ScheduledEvent> {
        if self.occupied == 0 {
            return None;
        }
        let b = self.occupied.trailing_zeros() as usize;
        let mut best = self.buckets[b][0];
        for e in &self.buckets[b][1..] {
            if Self::precedes(e, &best) {
                best = *e;
            }
        }
        Some(best)
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the most recently popped event's time: the
    /// radix layout relies on simulation time being monotone non-decreasing.
    // lint: no-alloc
    pub fn push(&mut self, time: Cycles, event: Event) {
        assert!(
            time.as_u64() >= self.last,
            "event at {time} scheduled before already-popped time {}",
            self.last
        );
        let seqno = self.next_seqno;
        self.next_seqno += 1;
        let slot = Self::slot_of(&event);
        let mut lost_min = false;
        if slot != NO_SLOT {
            if slot as usize >= self.pos.len() {
                self.pos.resize(slot as usize + 1, NO_POS);
            }
            let p = self.pos[slot as usize];
            if p != NO_POS {
                self.profile.supersessions += 1;
                // Supersede: drop the queued entry for this slot (it can
                // never fire — the engine would discard it on pop) and let
                // the successor claim the slot under its own fresh key.
                let (b, i) = unpack(p);
                let removed = self.remove_at(b, i);
                debug_assert_eq!(Self::slot_of(&removed.event), slot);
                assert_eq!(
                    self.pos[slot as usize], NO_POS,
                    "superseded slot must be cleared before its successor lands"
                );
                if self.min == Some(removed) {
                    lost_min = true;
                }
            }
        }
        let ev = ScheduledEvent { time, seqno, event };
        self.place(ev);
        self.len += 1;
        self.profile.pushes += 1;
        self.profile.max_len = self.profile.max_len.max(self.len as u64);
        if lost_min {
            // The superseded entry was the cached minimum; recompute from
            // the (possibly different) first non-empty bucket.
            self.min = self.scan_min();
        } else if self.min.is_none_or(|m| Self::precedes(&ev, &m)) {
            self.min = Some(ev);
        }
    }

    /// Removes and returns the earliest event (minimum `(time, seqno)`).
    // lint: no-alloc
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        let m = self.min?;
        let b = self.bucket_index(m.time);
        // Locate the minimum inside its bucket: O(1) via the slot index for
        // superseded kinds, a scan for unique seqno otherwise.
        let slot = Self::slot_of(&m.event);
        let idx = if slot != NO_SLOT {
            unpack(self.pos[slot as usize]).1
        } else {
            self.buckets[b]
                .iter()
                .position(|e| e.seqno == m.seqno)
                .expect("cached minimum must be queued")
        };
        let popped = self.remove_at(b, idx);
        debug_assert_eq!(popped, m);
        self.profile.pops += 1;
        if b != 0 {
            // Time advances: re-anchor the radix layout on the popped time
            // and redistribute the minimum's former bucket.  Each remaining
            // entry agrees with the new `last` on strictly more leading bits
            // than it did with the old one (both share the old prefix up to
            // bit b-1, and the entry agrees with the popped minimum at bit
            // b-1 too), so each lands in a strictly lower bucket.  All other
            // buckets are unaffected.
            self.last = m.time.as_u64();
            if !self.buckets[b].is_empty() {
                std::mem::swap(&mut self.buckets[b], &mut self.scratch);
                self.occupied &= !(1u128 << b);
                self.profile.redistributions += self.scratch.len() as u64;
                for i in 0..self.scratch.len() {
                    let ev = self.scratch[i];
                    debug_assert!(self.bucket_index(ev.time) < b);
                    self.place(ev);
                }
                self.scratch.clear();
            }
        }
        self.min = self.scan_min();
        Some(popped)
    }

    /// Peeks at the earliest event without removing it.
    #[must_use]
    pub fn peek(&self) -> Option<&ScheduledEvent> {
        self.min.as_ref()
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Self-profiling counters accumulated so far: pushes, pops, high-water
    /// occupancy, redistribution moves and superseded-slot replacements.
    ///
    /// These describe the *simulator's* data structure, not the simulation:
    /// they are deterministic for a fixed configuration but differ between
    /// the macro-step and event-per-operation engines, so they are surfaced
    /// via `sweep --profile` and the engine bench rather than the results
    /// schema.
    #[must_use]
    pub fn profile(&self) -> QueueProfile {
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ready(seq: u32) -> Event {
        Event::SeqReady {
            seq: SequencerId::new(seq),
            generation: 0,
        }
    }

    fn tick(cpu: u32, n: u64) -> Event {
        Event::TimerTick {
            cpu: SequencerId::new(cpu),
            tick: n,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Cycles::new(30), ready(3));
        q.push(Cycles::new(10), ready(1));
        q.push(Cycles::new(20), ready(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.time.as_u64())).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.push(Cycles::new(100), ready(i));
        }
        let order: Vec<Event> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(
            order,
            (0..5).map(ready).collect::<Vec<Event>>(),
            "equal-time events must pop in insertion order"
        );
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Cycles::new(5), ready(0));
        q.push(Cycles::new(1), ready(1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek().unwrap().time, Cycles::new(1));
        assert_eq!(q.len(), 2, "peek does not remove");
        q.pop();
        q.pop();
        assert!(q.pop().is_none());
    }

    #[test]
    fn timer_and_ready_interleave_correctly() {
        let mut q = EventQueue::new();
        q.push(Cycles::new(50), tick(0, 1));
        q.push(Cycles::new(25), ready(2));
        assert!(matches!(q.pop().unwrap().event, Event::SeqReady { .. }));
        assert!(matches!(q.pop().unwrap().event, Event::TimerTick { .. }));
    }

    #[test]
    fn equal_time_tick_and_ready_pop_in_push_order_both_ways() {
        // The tie-break satellite: a timer tick and a heap event at the same
        // time must have one pinned total order — `(time, seqno)`, i.e. push
        // order — regardless of which kind was pushed first.
        let mut q = EventQueue::new();
        q.push(Cycles::new(100), tick(0, 1));
        q.push(Cycles::new(100), ready(1));
        assert!(matches!(q.pop().unwrap().event, Event::TimerTick { .. }));
        assert!(matches!(q.pop().unwrap().event, Event::SeqReady { .. }));
        assert!(q.is_empty());

        let mut q = EventQueue::new();
        q.push(Cycles::new(100), ready(1));
        q.push(Cycles::new(100), tick(0, 1));
        assert!(matches!(q.pop().unwrap().event, Event::SeqReady { .. }));
        assert!(matches!(q.pop().unwrap().event, Event::TimerTick { .. }));
        assert!(q.is_empty());
    }

    #[test]
    fn supersede_replaces_queued_entry_with_fresh_key() {
        let mut q = EventQueue::new();
        q.push(Cycles::new(10), ready(0));
        q.push(Cycles::new(30), ready(1));
        // Supersede sequencer 0's ready: the old t=10 entry must vanish.
        q.push(Cycles::new(20), ready(0));
        assert_eq!(q.len(), 2);
        let a = q.pop().unwrap();
        assert_eq!(a.time, Cycles::new(20));
        assert!(matches!(a.event, Event::SeqReady { seq, .. } if seq.index() == 0));
        let b = q.pop().unwrap();
        assert_eq!(b.time, Cycles::new(30));
        assert!(q.pop().is_none());
    }

    #[test]
    fn supersede_keeps_slot_index_coherent_under_churn() {
        // Regression for slot-index staleness: supersede entries repeatedly,
        // interleaved with unrelated traffic that forces bucket compaction
        // (swap_remove) and redistribution, then verify the queue still pops
        // exactly the live set in `(time, seqno)` order.
        let mut q = EventQueue::new();
        let mut now = 0u64;
        let mut expected: Vec<u64> = Vec::new();
        for round in 0..50u64 {
            let t = now + 1 + (round * 7919) % 97;
            q.push(Cycles::new(t), ready((round % 4) as u32));
            q.push(Cycles::new(t + 3), tick(0, round + 1));
            // Supersede the same sequencer immediately: only the second
            // event survives.
            q.push(Cycles::new(t + 1), ready((round % 4) as u32));
            expected.push(t + 1);
            expected.push(t + 3);
            // Drain both live events, advancing time.
            let a = q.pop().unwrap();
            let b = q.pop().unwrap();
            now = b.time.as_u64();
            assert!(a.time <= b.time);
            assert!(q.is_empty(), "stale superseded entries must not linger");
        }
        assert_eq!(expected.len(), 100);
    }

    #[test]
    fn stall_end_and_seq_ready_slots_are_independent() {
        let mut q = EventQueue::new();
        let seq = SequencerId::new(3);
        q.push(Cycles::new(10), Event::SeqReady { seq, generation: 1 });
        q.push(Cycles::new(20), Event::StallEnd { seq });
        // Superseding the stall window must not disturb the SeqReady entry.
        q.push(Cycles::new(15), Event::StallEnd { seq });
        assert_eq!(q.len(), 2);
        assert!(matches!(q.pop().unwrap().event, Event::SeqReady { .. }));
        let e = q.pop().unwrap();
        assert_eq!(e.time, Cycles::new(15));
        assert!(matches!(e.event, Event::StallEnd { .. }));
    }

    #[test]
    fn monotone_pop_across_wide_time_range() {
        // Exercise refills across many radix buckets: times spanning from
        // single cycles up past 2^40.
        let mut q = EventQueue::new();
        let mut times: Vec<u64> = (0..60).map(|i| 1u64 << i).collect();
        times.extend([3, 5, 1000, 999_999, (1 << 40) + 12345]);
        for (i, &t) in times.iter().enumerate() {
            q.push(Cycles::new(t), tick((i % 3) as u32, i as u64 + 1));
        }
        times.sort_unstable();
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.time.as_u64())).collect();
        assert_eq!(popped, times);
    }

    #[test]
    fn profile_counts_pushes_pops_supersessions_and_high_water() {
        let mut q = EventQueue::new();
        q.push(Cycles::new(10), ready(0));
        q.push(Cycles::new(30), ready(1));
        // Supersede sequencer 0's entry: counted, and len stays at 2.
        q.push(Cycles::new(20), ready(0));
        while q.pop().is_some() {}
        let p = q.profile();
        assert_eq!(p.pushes, 3);
        assert_eq!(p.pops, 2, "the superseded entry is never popped");
        assert_eq!(p.supersessions, 1);
        assert_eq!(p.max_len, 2);
    }

    #[test]
    fn profile_counts_redistribution_moves() {
        // Two entries far from `last` share a high bucket; popping the first
        // advances time and must redistribute the second downward.
        let mut q = EventQueue::new();
        q.push(Cycles::new(1 << 20), tick(0, 1));
        q.push(Cycles::new((1 << 20) + 1), tick(0, 2));
        q.pop();
        assert_eq!(q.profile().redistributions, 1);
        q.pop();
        assert_eq!(q.profile().pops, 2);
    }

    #[test]
    fn sample_events_have_no_slot_and_pop_in_push_order() {
        let mut q = EventQueue::new();
        q.push(Cycles::new(100), Event::Sample);
        q.push(Cycles::new(100), Event::Sample);
        q.push(Cycles::new(100), ready(0));
        assert_eq!(q.len(), 3, "samples are never superseded");
        assert!(matches!(q.pop().unwrap().event, Event::Sample));
        assert!(matches!(q.pop().unwrap().event, Event::Sample));
        assert!(matches!(q.pop().unwrap().event, Event::SeqReady { .. }));
    }

    #[test]
    #[should_panic(expected = "scheduled before")]
    fn pushing_into_the_past_is_rejected() {
        let mut q = EventQueue::new();
        q.push(Cycles::new(100), ready(0));
        q.pop();
        q.push(Cycles::new(99), ready(0));
    }
}
