//! The discrete-event queue.

use misp_types::{Cycles, SequencerId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event processed by the engine's main loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// The sequencer finished its current operation (or was woken) and is
    /// ready to proceed.  `generation` guards against stale events: the
    /// sequencer ignores events whose generation does not match its own.
    SeqReady {
        /// The sequencer concerned.
        seq: SequencerId,
        /// Generation counter captured when the event was scheduled.
        generation: u64,
    },
    /// A timer interrupt fires on the OS-visible CPU whose sequencer is
    /// `cpu`.  `tick` is the 1-based tick number on that CPU.
    TimerTick {
        /// The sequencer acting as the OS-visible CPU.
        cpu: SequencerId,
        /// The 1-based tick number.
        tick: u64,
    },
    /// The end of a timed stall window for `seq`.  The engine resumes the
    /// sequencer if (and only if) its stall window has actually elapsed; stale
    /// resume events from superseded, shorter windows are ignored.
    StallEnd {
        /// The stalled sequencer.
        seq: SequencerId,
    },
}

/// An event tagged with its scheduled time and a monotonic tie-breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledEvent {
    /// Absolute simulation time at which the event fires.
    pub time: Cycles,
    /// Monotonic sequence number assigned at insertion; earlier insertions
    /// fire first among events with equal time, making the simulation
    /// deterministic.
    pub seqno: u64,
    /// The event payload.
    pub event: Event,
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so that BinaryHeap (a max-heap) pops the earliest event.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seqno.cmp(&self.seqno))
    }
}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic time-ordered event queue.
///
/// Ties in time are broken by insertion order, so runs are reproducible
/// regardless of heap internals.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    next_seqno: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: Cycles, event: Event) {
        let seqno = self.next_seqno;
        self.next_seqno += 1;
        self.heap.push(ScheduledEvent { time, seqno, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        self.heap.pop()
    }

    /// Peeks at the earliest event without removing it.
    #[must_use]
    pub fn peek(&self) -> Option<&ScheduledEvent> {
        self.heap.peek()
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ready(seq: u32) -> Event {
        Event::SeqReady {
            seq: SequencerId::new(seq),
            generation: 0,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Cycles::new(30), ready(3));
        q.push(Cycles::new(10), ready(1));
        q.push(Cycles::new(20), ready(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.time.as_u64())).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.push(Cycles::new(100), ready(i));
        }
        let order: Vec<Event> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(
            order,
            (0..5).map(ready).collect::<Vec<Event>>(),
            "equal-time events must pop in insertion order"
        );
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Cycles::new(5), ready(0));
        q.push(Cycles::new(1), ready(1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek().unwrap().time, Cycles::new(1));
        assert_eq!(q.len(), 2, "peek does not remove");
        q.pop();
        q.pop();
        assert!(q.pop().is_none());
    }

    #[test]
    fn timer_and_ready_interleave_correctly() {
        let mut q = EventQueue::new();
        q.push(
            Cycles::new(50),
            Event::TimerTick {
                cpu: SequencerId::new(0),
                tick: 1,
            },
        );
        q.push(Cycles::new(25), ready(2));
        assert!(matches!(q.pop().unwrap().event, Event::SeqReady { .. }));
        assert!(matches!(q.pop().unwrap().event, Event::TimerTick { .. }));
    }
}
