//! The discrete-event queue.

use misp_types::{Cycles, SequencerId};
use std::cmp::Ordering;

/// An event processed by the engine's main loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// The sequencer finished its current operation (or was woken) and is
    /// ready to proceed.  `generation` guards against stale events: the
    /// sequencer ignores events whose generation does not match its own.
    SeqReady {
        /// The sequencer concerned.
        seq: SequencerId,
        /// Generation counter captured when the event was scheduled.
        generation: u64,
    },
    /// A timer interrupt fires on the OS-visible CPU whose sequencer is
    /// `cpu`.  `tick` is the 1-based tick number on that CPU.
    TimerTick {
        /// The sequencer acting as the OS-visible CPU.
        cpu: SequencerId,
        /// The 1-based tick number.
        tick: u64,
    },
    /// The end of a timed stall window for `seq`.  The engine resumes the
    /// sequencer if (and only if) its stall window has actually elapsed; stale
    /// resume events from superseded, shorter windows are ignored.
    StallEnd {
        /// The stalled sequencer.
        seq: SequencerId,
    },
    /// The end of one shared stall window covering several sequencers (a
    /// serialization window suspending every AMS of a MISP processor at
    /// once).  Equivalent to consecutive [`Event::StallEnd`] events for
    /// `base + i` over the set bits of `mask` in ascending order, collapsed
    /// into one queue entry; like `StallEnd`, each covered sequencer is only
    /// resumed if its own window has actually elapsed.
    StallEndGroup {
        /// Sequencer index of bit 0 of `mask`.
        base: u32,
        /// Bit `i` covers sequencer `base + i`.
        mask: u32,
    },
}

/// An event tagged with its scheduled time and a monotonic tie-breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledEvent {
    /// Absolute simulation time at which the event fires.
    pub time: Cycles,
    /// Monotonic sequence number assigned at insertion; earlier insertions
    /// fire first among events with equal time, making the simulation
    /// deterministic.
    pub seqno: u64,
    /// The event payload.
    pub event: Event,
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so that BinaryHeap (a max-heap) pops the earliest event.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seqno.cmp(&self.seqno))
    }
}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Marks the absence of a heap position in the slot index.
const NO_POS: u32 = u32::MAX;
/// Marks an event kind that has no replacement slot.
const NO_SLOT: u32 = u32::MAX;

/// A deterministic time-ordered event queue.
///
/// Ties in time are broken by insertion order, so runs are reproducible
/// regardless of heap internals.  Implemented as a hand-rolled 4-ary min-heap
/// keyed on `(time, seqno)`: the engine pushes and pops an event for nearly
/// every simulated operation, and the flatter tree roughly halves the sift
/// depth of a binary heap on the small queues (tens of entries) a machine
/// produces.  Every key is unique (seqnos are), so any correct heap pops the
/// exact same sequence — the layout is unobservable.
///
/// The heap is *indexed* for the two event kinds the engine supersedes:
/// each sequencer has at most one live `SeqReady` (a reschedule invalidates
/// the previous one) and at most one live stall window.  Pushing a new event
/// for an occupied slot replaces the superseded entry in place — with the
/// new event's own `(time, seqno)` key, exactly the key it would have had as
/// a separate push — instead of leaving a stale entry to pop and discard
/// later.  Live events therefore pop in the identical order, while stale
/// traffic and heap depth shrink.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: Vec<ScheduledEvent>,
    /// Heap position of each slot's live entry (`NO_POS` when absent),
    /// indexed by `2 * sequencer + kind_bit`; see [`EventQueue::slot_of`].
    pos: Vec<u32>,
    /// Pending timer ticks, kept out of the heap: each OS-visible CPU has at
    /// most one outstanding tick, so this stays a handful of entries and a
    /// linear scan beats heap maintenance for a third of all event traffic.
    /// Entries carry ordinary seqnos from the shared counter, and `pop`
    /// compares `(time, seqno)` across both stores, so the global pop order
    /// is exactly that of a single heap.
    ticks: Vec<ScheduledEvent>,
    /// Cached index of the earliest entry in `ticks` (`peek` runs on the
    /// macro-step hot path).
    tick_min: Option<usize>,
    next_seqno: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue::default()
    }

    #[inline]
    fn precedes(a: &ScheduledEvent, b: &ScheduledEvent) -> bool {
        (a.time, a.seqno) < (b.time, b.seqno)
    }

    /// The replacement slot of an event: `SeqReady` and `StallEnd` events are
    /// per-sequencer singletons (a newer push supersedes the queued one);
    /// timer ticks and group stall-ends are never superseded.
    #[inline]
    fn slot_of(event: &Event) -> u32 {
        match event {
            Event::SeqReady { seq, .. } => seq.index() * 2,
            Event::StallEnd { seq } => seq.index() * 2 + 1,
            Event::TimerTick { .. } | Event::StallEndGroup { .. } => NO_SLOT,
        }
    }

    /// Records `i` as the heap position of the slot of `heap[i]`, if any.
    #[inline]
    fn note_pos(&mut self, i: usize) {
        let slot = Self::slot_of(&self.heap[i].event);
        if slot != NO_SLOT {
            self.pos[slot as usize] = i as u32;
        }
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: Cycles, event: Event) {
        let seqno = self.next_seqno;
        self.next_seqno += 1;
        let slot = Self::slot_of(&event);
        let ev = ScheduledEvent { time, seqno, event };
        if matches!(event, Event::TimerTick { .. }) {
            let i = self.ticks.len();
            self.ticks.push(ev);
            match self.tick_min {
                Some(m) if !Self::precedes(&ev, &self.ticks[m]) => {}
                _ => self.tick_min = Some(i),
            }
            return;
        }
        if slot != NO_SLOT {
            if slot as usize >= self.pos.len() {
                self.pos.resize(slot as usize + 1, NO_POS);
            }
            let p = self.pos[slot as usize];
            if p != NO_POS {
                // Replace the superseded entry in place: a queued event for
                // this slot can never fire (the engine discards it on pop),
                // so swapping in the successor — under the successor's own
                // key — preserves the live-event pop order exactly.
                let p = p as usize;
                self.heap[p] = ev;
                if self.sift_up(p) == p {
                    self.sift_down(p);
                }
                return;
            }
        }
        let i = self.heap.len();
        self.heap.push(ev);
        if slot != NO_SLOT {
            self.pos[slot as usize] = i as u32;
        }
        self.sift_up(i);
    }

    /// Moves `heap[i]` toward the root until its parent precedes it; returns
    /// the final position.  Hole-based: the sifted element is held in a local
    /// and displaced parents move down, one write per level.
    fn sift_up(&mut self, mut i: usize) -> usize {
        let ev = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 4;
            if Self::precedes(&ev, &self.heap[parent]) {
                self.heap[i] = self.heap[parent];
                self.note_pos(i);
                i = parent;
            } else {
                break;
            }
        }
        self.heap[i] = ev;
        self.note_pos(i);
        i
    }

    /// Moves `heap[i]` toward the leaves until it precedes all its children;
    /// returns the final position.  Hole-based, like [`EventQueue::sift_up`].
    fn sift_down(&mut self, mut i: usize) -> usize {
        let ev = self.heap[i];
        let len = self.heap.len();
        loop {
            let first_child = 4 * i + 1;
            if first_child >= len {
                break;
            }
            let mut min = first_child;
            let last_child = (first_child + 3).min(len - 1);
            for c in (first_child + 1)..=last_child {
                if Self::precedes(&self.heap[c], &self.heap[min]) {
                    min = c;
                }
            }
            if Self::precedes(&self.heap[min], &ev) {
                self.heap[i] = self.heap[min];
                self.note_pos(i);
                i = min;
            } else {
                break;
            }
        }
        self.heap[i] = ev;
        self.note_pos(i);
        i
    }

    /// Recomputes the cached index of the earliest pending tick.
    fn refresh_min_tick(&mut self) {
        let mut best: Option<usize> = None;
        for (i, t) in self.ticks.iter().enumerate() {
            if best.is_none_or(|b| Self::precedes(t, &self.ticks[b])) {
                best = Some(i);
            }
        }
        self.tick_min = best;
    }

    /// Index of the earliest pending tick, by `(time, seqno)`.
    #[inline]
    fn min_tick(&self) -> Option<usize> {
        self.tick_min
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        let tick = self.min_tick();
        let take_tick = match (tick, self.heap.first()) {
            (Some(t), Some(root)) => Self::precedes(&self.ticks[t], root),
            (Some(_), None) => true,
            (None, _) => false,
        };
        if take_tick {
            let popped = self.ticks.swap_remove(tick.expect("checked above"));
            self.refresh_min_tick();
            return Some(popped);
        }
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap.swap_remove(0);
        let slot = Self::slot_of(&top.event);
        if slot != NO_SLOT {
            self.pos[slot as usize] = NO_POS;
        }
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Some(top)
    }

    /// Peeks at the earliest event without removing it.
    #[must_use]
    pub fn peek(&self) -> Option<&ScheduledEvent> {
        match (self.min_tick(), self.heap.first()) {
            (Some(t), Some(root)) => {
                if Self::precedes(&self.ticks[t], root) {
                    self.ticks.get(t)
                } else {
                    self.heap.first()
                }
            }
            (Some(t), None) => self.ticks.get(t),
            (None, _) => self.heap.first(),
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len() + self.ticks.len()
    }

    /// Returns `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.ticks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ready(seq: u32) -> Event {
        Event::SeqReady {
            seq: SequencerId::new(seq),
            generation: 0,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Cycles::new(30), ready(3));
        q.push(Cycles::new(10), ready(1));
        q.push(Cycles::new(20), ready(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.time.as_u64())).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.push(Cycles::new(100), ready(i));
        }
        let order: Vec<Event> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(
            order,
            (0..5).map(ready).collect::<Vec<Event>>(),
            "equal-time events must pop in insertion order"
        );
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Cycles::new(5), ready(0));
        q.push(Cycles::new(1), ready(1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek().unwrap().time, Cycles::new(1));
        assert_eq!(q.len(), 2, "peek does not remove");
        q.pop();
        q.pop();
        assert!(q.pop().is_none());
    }

    #[test]
    fn timer_and_ready_interleave_correctly() {
        let mut q = EventQueue::new();
        q.push(
            Cycles::new(50),
            Event::TimerTick {
                cpu: SequencerId::new(0),
                tick: 1,
            },
        );
        q.push(Cycles::new(25), ready(2));
        assert!(matches!(q.pop().unwrap().event, Event::SeqReady { .. }));
        assert!(matches!(q.pop().unwrap().event, Event::TimerTick { .. }));
    }
}
