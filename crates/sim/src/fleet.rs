//! Conservatively-synchronized fleet simulation.
//!
//! A [`FleetEngine`] owns an arena of [`Machine`]s (one event-queue shard,
//! clock, sequencer table, memory system and kernel each), a deterministic
//! cross-machine [`Mailbox`], and a conservative synchronizer in the
//! classical lookahead style: between barriers, each shard advances
//! independently up to `min(neighbour clocks) + network_latency`, because no
//! neighbour can deliver a message earlier than its own next event plus the
//! network latency.  Shards advance in ascending [`MachineId`] order inside
//! each window, so a fleet run is a pure function of its inputs — the same
//! machines, workloads and mailbox traffic replay byte-identically at any
//! harness thread count, exactly like the single-machine engine.
//!
//! A fleet of one degenerates to the historical engine loop: with no
//! neighbours there is no lookahead bound, so the single shard runs to
//! completion in one window.  [`crate::Engine`] is exactly that facade.

use crate::machine::{Machine, MachineStatus, SimReport};
use crate::stats::ServiceStats;
use crate::{Event, Platform};
use misp_types::{Arena, Cycles, Fnv64, MachineId, Result};

/// One cross-machine message: an [`Event`] delivered into the target shard's
/// queue at `deliver_at` (send time plus network latency).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetMessage {
    /// The sending machine.
    pub from: MachineId,
    /// The receiving machine.
    pub to: MachineId,
    /// Delivery time on the receiver's clock.
    pub deliver_at: Cycles,
    /// Fleet-wide send order, used to break delivery ties deterministically.
    pub seqno: u64,
    /// The event injected into the receiver's queue shard.
    pub event: Event,
}

/// The deterministic cross-machine mailbox.
///
/// Messages are stamped with a fleet-wide sequence number at post time;
/// deliveries to a machine happen in `(deliver_at, seqno)` order, so the
/// observable delivery sequence is independent of how the synchronizer
/// interleaves shard execution.  The backing storage is preallocated —
/// posting within [`Mailbox::capacity`] never allocates, which the
/// zero-allocation audit relies on.
#[derive(Debug)]
pub struct Mailbox {
    messages: Vec<FleetMessage>,
    next_seqno: u64,
}

impl Mailbox {
    /// Creates a mailbox with room for `capacity` undelivered messages.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Mailbox {
            messages: Vec::with_capacity(capacity),
            next_seqno: 0,
        }
    }

    /// Number of undelivered messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Whether no message is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Remaining preallocated room.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.messages.capacity()
    }

    /// Posts a message for delivery at `deliver_at`, returning its
    /// fleet-wide sequence number.
    // lint: no-alloc
    pub fn post(
        &mut self,
        from: MachineId,
        to: MachineId,
        deliver_at: Cycles,
        event: Event,
    ) -> u64 {
        let seqno = self.next_seqno;
        self.next_seqno += 1;
        self.messages.push(FleetMessage {
            from,
            to,
            deliver_at,
            seqno,
            event,
        });
        seqno
    }

    /// Earliest pending delivery time across all destinations.
    #[must_use]
    pub fn earliest(&self) -> Option<Cycles> {
        self.messages.iter().map(|m| m.deliver_at).min()
    }

    /// Moves every message for `to` due strictly before `horizon` (all of
    /// them when `None`) into `out`, sorted by `(deliver_at, seqno)`.  `out`
    /// is cleared first and never shrunk, so a caller-reused buffer keeps
    /// the steady state allocation-free.
    // lint: no-alloc
    pub fn take_due(
        &mut self,
        to: MachineId,
        horizon: Option<Cycles>,
        out: &mut Vec<FleetMessage>,
    ) {
        out.clear();
        let mut i = 0;
        while i < self.messages.len() {
            let m = &self.messages[i];
            if m.to == to && horizon.is_none_or(|h| m.deliver_at < h) {
                out.push(self.messages.swap_remove(i));
            } else {
                i += 1;
            }
        }
        out.sort_unstable_by_key(|m| (m.deliver_at, m.seqno));
    }
}

/// Aggregated outcome of a fleet run: one [`SimReport`] per machine in
/// [`MachineId`] order, plus a fleet-wide digest.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-machine reports, indexed by machine.
    pub reports: Vec<SimReport>,
    /// Deterministic digest over every machine's event-log digest in machine
    /// order: equal fleets produce equal digests, and any machine diverging
    /// changes it.
    pub fleet_digest: u64,
}

impl FleetReport {
    /// Wraps per-machine reports, computing the fleet digest.
    #[must_use]
    pub fn new(reports: Vec<SimReport>) -> Self {
        let mut h = Fnv64::new();
        for (i, r) in reports.iter().enumerate() {
            h.write_u64(i as u64);
            h.write_u64(r.log_digest);
        }
        FleetReport {
            fleet_digest: h.finish(),
            reports,
        }
    }

    /// The latest completion time across the fleet.
    #[must_use]
    pub fn total_cycles(&self) -> Cycles {
        self.reports
            .iter()
            .map(|r| r.total_cycles)
            .max()
            .unwrap_or(Cycles::ZERO)
    }

    /// Request-serving statistics merged across every machine, in machine
    /// order (histogram merging is order-independent, so this equals any
    /// other fold order).
    #[must_use]
    pub fn aggregate_service(&self) -> Option<ServiceStats> {
        let mut merged: Option<ServiceStats> = None;
        for r in &self.reports {
            if let Some(s) = &r.stats.service {
                merged.get_or_insert_with(Default::default).merge(s);
            }
        }
        merged
    }
}

/// The shared fleet state: a [`MachineId`] arena of shards, the mailbox and
/// the conservative synchronizer.
#[derive(Debug)]
pub struct FleetEngine<P: Platform> {
    machines: Arena<MachineId, Machine<P>>,
    mailbox: Mailbox,
    network_latency: Cycles,
    /// Reused per-window delivery buffer (see [`Mailbox::take_due`]).
    due: Vec<FleetMessage>,
}

impl<P: Platform> FleetEngine<P> {
    /// Creates an empty fleet.  `network_latency` is the fixed inter-machine
    /// delivery delay; it is clamped to at least one cycle because the
    /// conservative window `min(neighbour clocks) + latency` needs positive
    /// lookahead to make progress.
    #[must_use]
    pub fn new(network_latency: Cycles) -> Self {
        FleetEngine {
            machines: Arena::new(),
            mailbox: Mailbox::with_capacity(64),
            network_latency: network_latency.max(Cycles::new(1)),
            due: Vec::with_capacity(64),
        }
    }

    /// The configured inter-machine network latency.
    #[must_use]
    pub fn network_latency(&self) -> Cycles {
        self.network_latency
    }

    /// Adds a fully-assembled machine to the fleet, returning its id.
    pub fn add_machine(&mut self, machine: Machine<P>) -> MachineId {
        self.machines.alloc(machine)
    }

    /// Number of machines in the fleet.
    #[must_use]
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// The machine ids in order.
    pub fn machine_ids(&self) -> impl Iterator<Item = MachineId> + '_ {
        self.machines.ids()
    }

    /// The machine `id`, if allocated.
    #[must_use]
    pub fn machine(&self, id: MachineId) -> Option<&Machine<P>> {
        self.machines.get(id)
    }

    /// Mutable access to machine `id`, used while assembling the fleet.
    pub fn machine_mut(&mut self, id: MachineId) -> Option<&mut Machine<P>> {
        self.machines.get_mut(id)
    }

    /// Consumes the fleet, yielding its machines in [`MachineId`] order.
    pub fn drain(self) -> impl Iterator<Item = (MachineId, Machine<P>)> {
        self.machines
            .into_items()
            .into_iter()
            .enumerate()
            .map(|(i, m)| (MachineId::new(i as u32), m))
    }

    /// Posts a cross-machine message sent at `send_time`: it is delivered
    /// into `to`'s queue shard at `send_time + network_latency`.
    // lint: no-alloc
    pub fn post(&mut self, from: MachineId, to: MachineId, send_time: Cycles, event: Event) {
        self.mailbox
            .post(from, to, send_time + self.network_latency, event);
    }

    /// Runs every machine to completion under conservative synchronization,
    /// returning one report per machine in [`MachineId`] order.
    ///
    /// Each window, every unfinished shard receives its due mail and then
    /// advances up to `min(neighbour next-event times) + network_latency`,
    /// exclusive — any message generated inside the window delivers at or
    /// beyond that horizon, so no shard can observe an event out of order.
    /// Shards step in ascending machine order, making the whole run a pure
    /// function of its inputs regardless of surrounding parallelism.
    ///
    /// # Errors
    ///
    /// * [`misp_types::MispError::InvalidConfiguration`] if the fleet is
    ///   empty or a machine has no runtime attached.
    /// * [`misp_types::MispError::CycleBudgetExhausted`] if any machine's
    ///   budget elapses first.
    /// * [`misp_types::MispError::Deadlock`] once every shard drained its
    ///   queue with measured work remaining and no mail pending.
    pub fn run(&mut self) -> Result<Vec<SimReport>> {
        if self.machines.is_empty() {
            return Err(misp_types::MispError::InvalidConfiguration(
                "fleet has no machines".to_string(),
            ));
        }
        for (_, machine) in self.machines.iter_mut() {
            machine.start()?;
        }
        loop {
            let mut all_finished = true;
            let mut all_idle = true;
            for id in 0..self.machines.len() {
                let id = MachineId::new(id as u32);
                if self.machines[id].is_finished() {
                    continue;
                }
                all_finished = false;
                // Conservative lookahead: the earliest instant any *other*
                // unfinished shard could still send from.  `None` means no
                // neighbour can ever send again — run unbounded.
                let neighbour_bound = self
                    .machines
                    .iter()
                    .filter(|(other, m)| *other != id && !m.is_finished())
                    .filter_map(|(_, m)| m.next_event_time())
                    .min();
                let horizon = neighbour_bound.map(|b| b + self.network_latency);
                // Deliver due mail before stepping: everything strictly
                // before the horizon is safe (the shard's clock cannot pass
                // an undelivered message).
                let mut due = std::mem::take(&mut self.due);
                self.mailbox.take_due(id, horizon, &mut due);
                let machine = &mut self.machines[id];
                for message in &due {
                    machine.post_event(message.deliver_at, message.event);
                }
                self.due = due;
                match machine.advance(horizon)? {
                    MachineStatus::Finished | MachineStatus::Paused => all_idle = false,
                    MachineStatus::Idle => {}
                }
            }
            if all_finished {
                break;
            }
            if all_idle && self.mailbox.is_empty() {
                // No shard can make progress and no mail is in flight: the
                // first stuck machine names the deadlock.
                let stuck = self
                    .machines
                    .iter()
                    .find(|(_, m)| !m.is_finished())
                    .expect("an unfinished machine exists");
                return Err(stuck.1.deadlock_error());
            }
        }
        let reports = self
            .machines
            .iter_mut()
            .map(|(_, m)| m.finish_report())
            .collect();
        Ok(reports)
    }

    /// Runs the fleet and wraps the per-machine reports into a
    /// [`FleetReport`] with the fleet-wide digest.
    ///
    /// # Errors
    ///
    /// Propagates every error [`FleetEngine::run`] can produce.
    pub fn run_fleet(&mut self) -> Result<FleetReport> {
        Ok(FleetReport::new(self.run()?))
    }
}
