//! Deterministic cycle-approximate discrete-event engine for the MISP
//! reproduction.
//!
//! The engine executes abstract instruction streams ([`misp_isa`]) on a set of
//! simulated sequencers, charging costs from a [`misp_types::CostModel`],
//! tracking virtual memory through [`misp_mem`], and delegating all
//! architecture-specific behaviour to two extension traits:
//!
//! * [`Platform`] — decides what happens on privileged events (system calls,
//!   page faults, timer interrupts) and on the MISP-specific operations
//!   (`SIGNAL`, handler registration).  The MISP machine in `misp-core` and
//!   the SMP baseline in `misp-smp` are both `Platform` implementations.
//! * [`Runtime`] — the user-level scheduling layer that decides which shred an
//!   idle sequencer runs next and interprets ShredLib runtime operations
//!   (mutexes, barriers, shred creation, …).  The ShredLib gang scheduler in
//!   the `shredlib` crate is the principal implementation.
//!
//! The engine is strictly deterministic: given the same configuration,
//! workload and platform, two runs produce identical cycle counts, statistics
//! and event logs.
//!
//! # Examples
//!
//! A minimal single-sequencer simulation using the built-in
//! [`SingleShredRuntime`] and a trivial platform that services every
//! privileged event locally:
//!
//! ```
//! use misp_isa::{ProgramBuilder, ProgramLibrary};
//! use misp_sim::{Engine, LocalPlatform, SimConfig, SingleShredRuntime};
//! use misp_types::Cycles;
//!
//! let mut library = ProgramLibrary::new();
//! let main = library.insert(
//!     ProgramBuilder::new("main").compute(Cycles::new(10_000)).build(),
//! );
//!
//! let config = SimConfig::default();
//! let mut engine = Engine::new(config, 1, library, LocalPlatform::new(1));
//! let pid = engine.core_mut().kernel_mut().spawn_process("demo");
//! let tid = engine.core_mut().kernel_mut().spawn_thread(pid);
//! engine.core_mut().memory_mut().register_process(pid);
//! engine.add_runtime(pid, Box::new(SingleShredRuntime::new(main)));
//! engine.platform_mut().pin_thread(tid, 0);
//! let report = engine.run().unwrap();
//! assert!(report.total_cycles >= Cycles::new(10_000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod core;
mod engine;
mod event;
mod fleet;
mod local;
mod log;
mod machine;
mod platform;
mod runtime;
mod sequencer;
mod shred;
mod stats;

pub use config::SimConfig;
pub use core::{EngineCore, SavedContext};
pub use engine::Engine;
pub use event::{Event, EventQueue, ScheduledEvent};
pub use fleet::{FleetEngine, FleetMessage, FleetReport, Mailbox};
pub use local::LocalPlatform;
pub use log::{EventLog, LogKind, LogRecord};
pub use machine::{Machine, MachineStatus, SimReport};
pub use platform::Platform;
pub use runtime::{Runtime, RuntimeOutcome, SingleShredRuntime};
pub use sequencer::SequencerTable;
pub use shred::{ShredExecState, ShredPool, ShredStatus};
pub use stats::{SeqUtilization, ServiceStats, SimStats};

// Observability vocabulary re-exported from `misp-trace`, so engine users can
// configure tracing and consume reports without a separate dependency.
pub use misp_trace::{
    chrome_trace_json, IntervalSample, MetricsReport, QueueProfile, TraceConfig, TraceEvent,
    TraceKind, TraceReport,
};
