//! A minimal "local servicing" platform.
//!
//! [`LocalPlatform`] services every privileged event on the sequencer that
//! raised it, with no cross-sequencer effects.  It models an idealized SMP
//! node without multi-programming and is used by unit tests, examples and as a
//! baseline inside the full SMP machine in `misp-smp`.

use crate::{EngineCore, LogKind, Platform};
use misp_os::OsEventKind;
use misp_types::{Cycles, OsThreadId, SequencerId};

/// A platform where every sequencer is an independent, OS-visible CPU and all
/// privileged events are serviced locally.
#[derive(Debug)]
pub struct LocalPlatform {
    sequencer_count: usize,
    /// Explicit thread→sequencer pinning established before `init`.
    pinned: Vec<(OsThreadId, usize)>,
    timer_enabled: bool,
}

impl LocalPlatform {
    /// Creates a platform for `sequencer_count` sequencers with timer
    /// interrupts enabled.
    #[must_use]
    pub fn new(sequencer_count: usize) -> Self {
        LocalPlatform {
            sequencer_count,
            pinned: Vec::new(),
            timer_enabled: true,
        }
    }

    /// Disables timer interrupts (useful for tests that want only
    /// program-driven events).
    pub fn disable_timer(&mut self) {
        self.timer_enabled = false;
    }

    /// Pins `thread` to the sequencer with index `seq_index`.  Each sequencer
    /// should receive at most one thread; `LocalPlatform` does not time-share.
    ///
    /// # Panics
    ///
    /// Panics if `seq_index` is out of range.
    pub fn pin_thread(&mut self, thread: OsThreadId, seq_index: usize) {
        assert!(
            seq_index < self.sequencer_count,
            "sequencer index out of range"
        );
        self.pinned.push((thread, seq_index));
    }
}

impl Platform for LocalPlatform {
    fn init(&mut self, core: &mut EngineCore) {
        // Every sequencer is an independent CPU with its own L2, exactly as
        // in the full SMP machine.  (configure_caches is a no-op for a
        // disabled cache config.)
        let cache_config = core.config().cache;
        let clusters: Vec<usize> = (0..core.sequencer_count()).collect();
        core.memory_mut().configure_caches(cache_config, &clusters);

        for &(thread, seq_index) in &self.pinned {
            let seq = SequencerId::new(seq_index as u32);
            let pid = core
                .kernel()
                .thread(thread)
                .expect("pinned thread must be spawned before init")
                .process();
            core.memory_mut().register_process(pid);
            core.memory_mut()
                .bind_sequencer(seq, pid)
                .expect("binding a registered process cannot fail");
            core.sequencers_mut().set_bound_thread(seq, Some(thread));
            if self.timer_enabled {
                let first = core.config().timer.next_tick_after(Cycles::ZERO);
                core.schedule_timer(seq, first, 1);
            }
        }
    }

    fn on_priv_event(
        &mut self,
        core: &mut EngineCore,
        seq: SequencerId,
        kind: OsEventKind,
        now: Cycles,
    ) -> Cycles {
        core.stats_mut().record_event(seq, kind, true);
        core.kernel_mut().record_event(kind);
        core.log_event_with(seq, LogKind::RingEnter, || kind.to_string());
        let service = core.kernel().service_cost(kind);
        core.log_event_with(seq, LogKind::RingExit, || kind.to_string());
        now + service
    }

    fn on_timer_tick(&mut self, core: &mut EngineCore, cpu: SequencerId, tick: u64, now: Cycles) {
        core.log_event_with(cpu, LogKind::TimerTick, || format!("tick {tick}"));
        core.stats_mut().record_event(cpu, OsEventKind::Timer, true);
        core.kernel_mut().record_event(OsEventKind::Timer);
        let mut service = core.kernel().service_cost(OsEventKind::Timer);
        if core.config().timer.is_other_interrupt_tick(tick) {
            core.stats_mut()
                .record_event(cpu, OsEventKind::OtherInterrupt, true);
            core.kernel_mut().record_event(OsEventKind::OtherInterrupt);
            service += core.kernel().service_cost(OsEventKind::OtherInterrupt);
        }
        // The interrupted CPU loses the service time.
        core.stall(cpu, now, now + service);
        let next = core.config().timer.next_tick_after(now);
        if next != Cycles::MAX {
            core.schedule_timer(cpu, next, tick + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, SimConfig, SingleShredRuntime};
    use misp_isa::{ProgramBuilder, ProgramLibrary, SyscallKind};
    use misp_os::TimerConfig;
    use misp_types::{CostModel, VirtAddr};

    fn library_with(programs: Vec<misp_isa::ShredProgram>) -> ProgramLibrary {
        programs.into_iter().collect()
    }

    #[test]
    fn single_compute_program_takes_expected_time() {
        let lib = library_with(vec![ProgramBuilder::new("main")
            .compute(Cycles::new(10_000))
            .build()]);
        let config = SimConfig {
            timer: TimerConfig::disabled(),
            ..SimConfig::default()
        };
        let mut engine = Engine::new(config, 1, lib, LocalPlatform::new(1));
        let pid = engine.core_mut().kernel_mut().spawn_process("p");
        let tid = engine.core_mut().kernel_mut().spawn_thread(pid);
        engine.add_runtime(
            pid,
            Box::new(SingleShredRuntime::new(misp_isa::ProgramRef::new(0))),
        );
        engine.platform_mut().pin_thread(tid, 0);
        let report = engine.run().unwrap();
        // 10k compute plus small scheduling overheads.
        assert!(report.total_cycles >= Cycles::new(10_000));
        assert!(report.total_cycles < Cycles::new(12_000));
        assert_eq!(report.stats.per_sequencer[0].ops, 2, "compute + halt");
    }

    #[test]
    fn syscall_and_page_fault_are_counted_and_charged() {
        let costs = CostModel::default();
        let lib = library_with(vec![ProgramBuilder::new("main")
            .compute(Cycles::new(100))
            .syscall(SyscallKind::Io)
            .load(VirtAddr::new(0x10_0000))
            .load(VirtAddr::new(0x10_0000))
            .build()]);
        let config = SimConfig {
            timer: TimerConfig::disabled(),
            ..SimConfig::default()
        };
        let mut engine = Engine::new(config, 1, lib, LocalPlatform::new(1));
        let pid = engine.core_mut().kernel_mut().spawn_process("p");
        let tid = engine.core_mut().kernel_mut().spawn_thread(pid);
        engine.add_runtime(
            pid,
            Box::new(SingleShredRuntime::new(misp_isa::ProgramRef::new(0))),
        );
        engine.platform_mut().pin_thread(tid, 0);
        let report = engine.run().unwrap();
        assert_eq!(report.stats.oms_events.syscalls, 1);
        assert_eq!(
            report.stats.oms_events.page_faults, 1,
            "only the first touch faults"
        );
        let min_expected = 100 + costs.syscall_service.as_u64() + costs.page_fault_service.as_u64();
        assert!(report.total_cycles.as_u64() >= min_expected);
    }

    #[test]
    fn timer_ticks_accumulate_on_long_runs() {
        let lib = library_with(vec![ProgramBuilder::new("main")
            .repeat(100, |b| b.compute(Cycles::new(100_000)))
            .build()]);
        let config = SimConfig {
            timer: TimerConfig::new(Cycles::new(1_000_000), 10),
            ..SimConfig::default()
        };
        let mut engine = Engine::new(config, 1, lib, LocalPlatform::new(1));
        let pid = engine.core_mut().kernel_mut().spawn_process("p");
        let tid = engine.core_mut().kernel_mut().spawn_thread(pid);
        engine.add_runtime(
            pid,
            Box::new(SingleShredRuntime::new(misp_isa::ProgramRef::new(0))),
        );
        engine.platform_mut().pin_thread(tid, 0);
        let report = engine.run().unwrap();
        // 10M cycles of compute at one tick per 1M cycles: roughly 10 ticks.
        assert!(report.stats.oms_events.timer >= 9);
        assert!(report.stats.oms_events.other_interrupts >= 1);
    }

    #[test]
    fn two_pinned_threads_run_in_parallel() {
        let lib = library_with(vec![ProgramBuilder::new("worker")
            .compute(Cycles::new(50_000))
            .build()]);
        let config = SimConfig {
            timer: TimerConfig::disabled(),
            ..SimConfig::default()
        };
        let mut engine = Engine::new(config, 2, lib, LocalPlatform::new(2));
        let pid = engine.core_mut().kernel_mut().spawn_process("p");
        let t0 = engine.core_mut().kernel_mut().spawn_thread(pid);
        let t1 = engine.core_mut().kernel_mut().spawn_thread(pid);
        engine.add_runtime(
            pid,
            Box::new(SingleShredRuntime::new(misp_isa::ProgramRef::new(0))),
        );
        engine.platform_mut().pin_thread(t0, 0);
        engine.platform_mut().pin_thread(t1, 1);
        let report = engine.run().unwrap();
        // Both threads run the 50k program concurrently: completion well under 2x.
        assert!(report.total_cycles < Cycles::new(80_000));
        assert!(report.stats.per_sequencer[0].busy >= Cycles::new(50_000));
        assert!(report.stats.per_sequencer[1].busy >= Cycles::new(50_000));
    }

    #[test]
    fn determinism_same_config_same_result() {
        let run = || {
            let lib = library_with(vec![ProgramBuilder::new("main")
                .repeat(20, |b| {
                    b.compute(Cycles::new(1_000))
                        .load(VirtAddr::new(0x20_0000))
                        .syscall(SyscallKind::Time)
                })
                .build()]);
            let config = SimConfig::default();
            let mut engine = Engine::new(config, 1, lib, LocalPlatform::new(1));
            let pid = engine.core_mut().kernel_mut().spawn_process("p");
            let tid = engine.core_mut().kernel_mut().spawn_thread(pid);
            engine.add_runtime(
                pid,
                Box::new(SingleShredRuntime::new(misp_isa::ProgramRef::new(0))),
            );
            engine.platform_mut().pin_thread(tid, 0);
            engine.run().unwrap().total_cycles
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn missing_runtime_is_an_error() {
        let lib = ProgramLibrary::new();
        let mut engine = Engine::new(SimConfig::default(), 1, lib, LocalPlatform::new(1));
        let err = engine.run().unwrap_err();
        assert!(matches!(
            err,
            misp_types::MispError::InvalidConfiguration(_)
        ));
    }
}
