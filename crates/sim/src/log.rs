//! Coarse- and fine-grained event logging.
//!
//! The paper's prototype firmware provides two logging levels (Section 4.1):
//! coarse-grained total counts of ring transitions per sequencer, and
//! fine-grained time-stamped records of individual events.  [`EventLog`]
//! reproduces both so that experiments and tests can introspect exactly what
//! the simulated platform did.

use core::fmt;
use misp_trace::{TraceBuffer, TraceEvent, TraceKind};
use misp_types::{Cycles, SequencerId};
use serde::Serialize;

/// The kind of a logged event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
#[non_exhaustive]
pub enum LogKind {
    /// A sequencer entered Ring 0.
    RingEnter,
    /// A sequencer returned to Ring 3.
    RingExit,
    /// An AMS issued a proxy-execution request.
    ProxyRequest,
    /// An OMS began servicing a proxy request.
    ProxyStart,
    /// An OMS finished servicing a proxy request.
    ProxyDone,
    /// A sequencer was suspended by the platform.
    Suspend,
    /// A sequencer resumed execution.
    Resume,
    /// A shred started running on a sequencer.
    ShredStart,
    /// A shred finished.
    ShredEnd,
    /// The OS switched threads on an OS-visible CPU.
    ContextSwitch,
    /// A user-level `SIGNAL` was sent.
    SignalSent,
    /// A timer interrupt fired.
    TimerTick,
}

impl LogKind {
    /// Every log kind, in a fixed canonical order.  [`EventLog::digest`] folds
    /// counts in this order so the digest is independent of hash-map iteration
    /// order.  Keep in sync with [`LogKind::canonical_index`], whose
    /// exhaustive match turns a forgotten new variant into a compile error;
    /// the `canonical_order_is_exhaustive` test ties the two together.
    pub const ALL: [LogKind; 12] = [
        LogKind::RingEnter,
        LogKind::RingExit,
        LogKind::ProxyRequest,
        LogKind::ProxyStart,
        LogKind::ProxyDone,
        LogKind::Suspend,
        LogKind::Resume,
        LogKind::ShredStart,
        LogKind::ShredEnd,
        LogKind::ContextSwitch,
        LogKind::SignalSent,
        LogKind::TimerTick,
    ];

    /// The kind's position in the canonical [`LogKind::ALL`] order.
    ///
    /// The match is exhaustive on purpose: adding a `LogKind` variant fails
    /// compilation here until the new kind is given an index — and therefore
    /// a slot in `ALL` — so the digest can never silently skip it.
    #[must_use]
    pub const fn canonical_index(self) -> usize {
        match self {
            LogKind::RingEnter => 0,
            LogKind::RingExit => 1,
            LogKind::ProxyRequest => 2,
            LogKind::ProxyStart => 3,
            LogKind::ProxyDone => 4,
            LogKind::Suspend => 5,
            LogKind::Resume => 6,
            LogKind::ShredStart => 7,
            LogKind::ShredEnd => 8,
            LogKind::ContextSwitch => 9,
            LogKind::SignalSent => 10,
            LogKind::TimerTick => 11,
        }
    }

    /// The structured-trace kind mirroring this log kind.
    ///
    /// The first twelve [`TraceKind`] variants are defined in the same
    /// canonical order as [`LogKind::ALL`], so every coarse-log emission site
    /// doubles as a trace emission site with no per-kind mapping table; the
    /// `trace_kinds_mirror_log_kinds` test pins the correspondence.
    #[must_use]
    pub const fn trace_kind(self) -> TraceKind {
        match self {
            LogKind::RingEnter => TraceKind::RingEnter,
            LogKind::RingExit => TraceKind::RingExit,
            LogKind::ProxyRequest => TraceKind::ProxyRequest,
            LogKind::ProxyStart => TraceKind::ProxyStart,
            LogKind::ProxyDone => TraceKind::ProxyDone,
            LogKind::Suspend => TraceKind::Suspend,
            LogKind::Resume => TraceKind::Resume,
            LogKind::ShredStart => TraceKind::ShredStart,
            LogKind::ShredEnd => TraceKind::ShredEnd,
            LogKind::ContextSwitch => TraceKind::ContextSwitch,
            LogKind::SignalSent => TraceKind::SignalSent,
            LogKind::TimerTick => TraceKind::TimerTick,
        }
    }
}

/// One fine-grained log record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct LogRecord {
    /// Simulation time of the event.
    pub time: Cycles,
    /// The sequencer concerned.
    pub seq: SequencerId,
    /// The event kind.
    pub kind: LogKind,
    /// Free-form detail.
    pub detail: String,
}

impl fmt::Display for LogRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}] {} {:?} {}",
            self.time.as_u64(),
            self.seq,
            self.kind,
            self.detail
        )
    }
}

/// The simulation event log.
///
/// Coarse counts are always collected; fine-grained records are only kept when
/// enabled (they can grow large) and are capped to protect memory.
#[derive(Debug, Clone)]
pub struct EventLog {
    fine_enabled: bool,
    cap: usize,
    records: Vec<LogRecord>,
    dropped: u64,
    /// Coarse per-kind counts, indexed by [`LogKind::canonical_index`].  A
    /// plain array keeps the hot `record` path free of hashing.
    counts: [u64; LogKind::ALL.len()],
    /// Structured trace ring, present only when tracing is enabled.  Hosted
    /// here so every coarse-log emission site feeds the trace automatically;
    /// `None` (the default) costs one discriminant test per record.  The
    /// trace never contributes to [`EventLog::digest`] or the coarse counts.
    trace: Option<Box<TraceBuffer>>,
}

impl EventLog {
    /// Default cap on the number of fine-grained records retained.
    pub const DEFAULT_CAP: usize = 100_000;

    /// Creates a log.  `fine_enabled` controls whether individual records are
    /// retained.
    #[must_use]
    pub fn new(fine_enabled: bool) -> Self {
        EventLog {
            fine_enabled,
            cap: Self::DEFAULT_CAP,
            records: Vec::new(),
            dropped: 0,
            counts: [0; LogKind::ALL.len()],
            trace: None,
        }
    }

    /// Overrides the fine-grained record cap.
    pub fn set_cap(&mut self, cap: usize) {
        self.cap = cap;
    }

    /// Turns on the structured trace ring with the given capacity.  The full
    /// ring is allocated here, so enabling tracing before the measured run
    /// preserves the engine's zero-alloc steady state.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Box::new(TraceBuffer::new(capacity)));
    }

    /// Returns `true` when the structured trace ring is collecting.
    #[must_use]
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Records a trace-only instant (e.g. a TLB or cache miss) that has no
    /// coarse-log counterpart: the coarse counts, fine records and
    /// [`EventLog::digest`] are untouched.  A no-op while tracing is off.
    pub fn trace_instant(&mut self, time: Cycles, seq: SequencerId, kind: TraceKind) {
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent {
                time: time.as_u64(),
                seq: seq.index(),
                kind,
            });
        }
    }

    /// Removes and returns the trace ring (for end-of-run reporting).
    pub fn take_trace(&mut self) -> Option<Box<TraceBuffer>> {
        self.trace.take()
    }

    /// Records an event.
    pub fn record(
        &mut self,
        time: Cycles,
        seq: SequencerId,
        kind: LogKind,
        detail: impl Into<String>,
    ) {
        self.record_with(time, seq, kind, || detail.into());
    }

    /// Records an event, building the detail text only if it will actually be
    /// retained (fine-grained logging enabled and the cap not reached).  Hot
    /// paths use this to keep the coarse-count-only mode allocation-free.
    pub fn record_with<F: FnOnce() -> String>(
        &mut self,
        time: Cycles,
        seq: SequencerId,
        kind: LogKind,
        detail: F,
    ) {
        self.counts[kind.canonical_index()] += 1;
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent {
                time: time.as_u64(),
                seq: seq.index(),
                kind: kind.trace_kind(),
            });
        }
        if self.fine_enabled {
            if self.records.len() < self.cap {
                self.records.push(LogRecord {
                    time,
                    seq,
                    kind,
                    detail: detail(),
                });
            } else {
                self.dropped += 1;
            }
        }
    }

    /// The coarse count for `kind`.
    #[must_use]
    pub fn count(&self, kind: LogKind) -> u64 {
        self.counts[kind.canonical_index()]
    }

    /// The retained fine-grained records, in insertion (time) order.
    #[must_use]
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Number of fine-grained records dropped because the cap was reached.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Returns `true` when fine-grained recording is enabled.
    #[must_use]
    pub fn fine_enabled(&self) -> bool {
        self.fine_enabled
    }

    /// A deterministic 64-bit FNV-1a digest of the log.
    ///
    /// The digest folds the coarse counts in the canonical [`LogKind::ALL`]
    /// order, followed by every retained fine-grained record (time,
    /// sequencer, kind and detail text) and the dropped count.  Two
    /// identical runs always digest equal; runs that differ in any logged
    /// quantity digest differently, up to the usual 64-bit collision odds —
    /// and, with fine logging disabled, up to the coarse counts' resolution
    /// (per-kind totals rather than individual records).
    #[must_use]
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        fn fold_bytes(hash: &mut u64, bytes: &[u8]) {
            for &byte in bytes {
                *hash ^= u64::from(byte);
                *hash = hash.wrapping_mul(FNV_PRIME);
            }
        }
        fn fold(hash: &mut u64, value: u64) {
            fold_bytes(hash, &value.to_le_bytes());
        }

        let mut hash = FNV_OFFSET;
        for (i, kind) in LogKind::ALL.iter().enumerate() {
            fold(&mut hash, i as u64);
            fold(&mut hash, self.count(*kind));
        }
        for record in &self.records {
            fold(&mut hash, record.time.as_u64());
            fold(&mut hash, record.seq.as_usize() as u64);
            fold(&mut hash, record.kind.canonical_index() as u64);
            fold(&mut hash, record.detail.len() as u64);
            fold_bytes(&mut hash, record.detail.as_bytes());
        }
        fold(&mut hash, self.dropped);
        hash
    }
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_counts_always_collected() {
        let mut log = EventLog::new(false);
        log.record(Cycles::new(1), SequencerId::new(0), LogKind::RingEnter, "");
        log.record(Cycles::new(2), SequencerId::new(0), LogKind::RingEnter, "");
        log.record(
            Cycles::new(3),
            SequencerId::new(1),
            LogKind::ProxyRequest,
            "pf",
        );
        assert_eq!(log.count(LogKind::RingEnter), 2);
        assert_eq!(log.count(LogKind::ProxyRequest), 1);
        assert_eq!(log.count(LogKind::Resume), 0);
        assert!(log.records().is_empty(), "fine disabled keeps no records");
    }

    #[test]
    fn fine_records_retained_when_enabled() {
        let mut log = EventLog::new(true);
        log.record(
            Cycles::new(5),
            SequencerId::new(2),
            LogKind::Suspend,
            "by OMS",
        );
        assert_eq!(log.records().len(), 1);
        let r = &log.records()[0];
        assert_eq!(r.time, Cycles::new(5));
        assert_eq!(r.kind, LogKind::Suspend);
        assert!(r.to_string().contains("SEQ2"));
        assert!(log.fine_enabled());
    }

    #[test]
    fn cap_limits_fine_records() {
        let mut log = EventLog::new(true);
        log.set_cap(3);
        for i in 0..5 {
            log.record(Cycles::new(i), SequencerId::new(0), LogKind::TimerTick, "");
        }
        assert_eq!(log.records().len(), 3);
        assert_eq!(log.dropped(), 2);
        assert_eq!(
            log.count(LogKind::TimerTick),
            5,
            "coarse counts unaffected by cap"
        );
    }

    #[test]
    fn canonical_order_is_exhaustive() {
        // Every kind appears in ALL exactly at its canonical index; together
        // with the exhaustive match in canonical_index this guarantees a new
        // variant cannot be left out of the digest.
        for (i, kind) in LogKind::ALL.iter().enumerate() {
            assert_eq!(kind.canonical_index(), i, "{kind:?} out of order");
        }
    }

    #[test]
    fn trace_kinds_mirror_log_kinds() {
        // The first twelve TraceKind variants share the canonical LogKind
        // order, which is what lets record_with map kinds with a plain match.
        for kind in LogKind::ALL {
            assert_eq!(
                kind.trace_kind().canonical_index(),
                kind.canonical_index(),
                "{kind:?} maps to a different canonical index"
            );
        }
        assert_eq!(TraceKind::ALL.len(), LogKind::ALL.len() + 2);
    }

    #[test]
    fn trace_ring_collects_log_records_without_touching_the_digest() {
        let mut plain = EventLog::new(false);
        let mut traced = EventLog::new(false);
        traced.enable_trace(16);
        assert!(traced.trace_enabled());
        for log in [&mut plain, &mut traced] {
            log.record(Cycles::new(3), SequencerId::new(1), LogKind::ShredStart, "");
        }
        // Trace-only instants bypass counts and digest entirely.
        traced.trace_instant(Cycles::new(5), SequencerId::new(1), TraceKind::TlbMiss);
        for log in [&mut plain, &mut traced] {
            log.record(Cycles::new(9), SequencerId::new(1), LogKind::ShredEnd, "");
        }
        assert_eq!(plain.digest(), traced.digest());
        assert_eq!(plain.count(LogKind::ShredStart), 1);

        let trace = traced.take_trace().expect("ring present");
        let events = trace.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, TraceKind::ShredStart);
        assert_eq!(events[1].kind, TraceKind::TlbMiss);
        assert_eq!(events[2].kind, TraceKind::ShredEnd);
        assert_eq!(events[2].time, 9);
        assert_eq!(events[2].seq, 1);
        assert!(!traced.trace_enabled(), "take_trace disables the ring");
    }

    #[test]
    fn digest_is_deterministic_and_sensitive() {
        let mut a = EventLog::new(false);
        let mut b = EventLog::new(false);
        assert_eq!(a.digest(), b.digest(), "empty logs digest equal");
        a.record(Cycles::new(1), SequencerId::new(0), LogKind::RingEnter, "");
        b.record(Cycles::new(1), SequencerId::new(0), LogKind::RingEnter, "");
        assert_eq!(a.digest(), b.digest(), "identical logs digest equal");
        b.record(Cycles::new(2), SequencerId::new(0), LogKind::RingExit, "");
        assert_ne!(a.digest(), b.digest(), "extra event changes the digest");

        // Distinct kinds with equal counts must not collide.
        let mut c = EventLog::new(false);
        c.record(Cycles::new(1), SequencerId::new(0), LogKind::RingExit, "");
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn digest_covers_fine_records_when_enabled() {
        let mut a = EventLog::new(true);
        let mut b = EventLog::new(true);
        a.record(Cycles::new(5), SequencerId::new(1), LogKind::Suspend, "x");
        b.record(Cycles::new(6), SequencerId::new(1), LogKind::Suspend, "x");
        // Same coarse counts, different timestamps: fine digests differ.
        assert_ne!(a.digest(), b.digest());

        // Records differing only in detail text also digest differently.
        let mut c = EventLog::new(true);
        c.record(Cycles::new(5), SequencerId::new(1), LogKind::Suspend, "y");
        assert_ne!(a.digest(), c.digest());
    }
}
