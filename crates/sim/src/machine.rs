//! One machine of a simulated fleet: the per-shard simulation state and its
//! event loop.
//!
//! A [`Machine`] owns everything the pre-fleet engine owned — the clock and
//! radix-heap event-queue shard, the sequencer table, memory system, kernel
//! and trace ring (all inside [`EngineCore`]), plus the [`Platform`] and the
//! per-process [`Runtime`]s.  The run loop is split in three so a fleet
//! synchronizer can interleave shards:
//!
//! * [`Machine::start`] — validation, platform init, thread startup and the
//!   loop-invariant step parameters.
//! * [`Machine::advance`] — processes queued events strictly *before* an
//!   optional horizon (the conservative-synchronization window), returning
//!   whether the machine finished, paused at the horizon, or drained its
//!   queue.
//! * [`Machine::finish_report`] — folds the statistics into a [`SimReport`].
//!
//! Calling `start` followed by `advance(None)` is exactly the historical
//! single-machine run loop; [`crate::Engine`] packages that as a fleet of
//! one.

use crate::core::EngineCore;
use crate::{Event, LogKind, Platform, Runtime, RuntimeOutcome, ShredStatus, SimConfig, SimStats};
use misp_isa::{Op, ProgramLibrary};
use misp_os::OsEventKind;
use misp_trace::{CounterSnapshot, MetricsRecorder, MetricsReport, QueueProfile, TraceReport};
use misp_types::{ArenaMap, Cycles, MispError, OsThreadId, ProcessId, Result, SequencerId};
use std::collections::{BTreeMap, BTreeSet};

/// The outcome of a completed simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The time at which the last measured process completed.
    pub total_cycles: Cycles,
    /// Completion time of each measured process (also available inside
    /// `stats`).
    pub completions: BTreeMap<u32, Cycles>,
    /// Full statistics for the run.
    pub stats: SimStats,
    /// Deterministic digest of the event log (see
    /// [`crate::EventLog::digest`]): two runs of the same configuration must
    /// produce equal digests, which the sweep harness and the determinism
    /// tests rely on.
    pub log_digest: u64,
    /// Structured trace events, present iff `SimConfig::trace.enabled`.  The
    /// trace contents are deterministic for a fixed configuration — the same
    /// events, in the same order, with the same digest, on every execution.
    pub trace: Option<TraceReport>,
    /// Interval metrics samples, present iff
    /// `SimConfig::trace.metrics_interval` is non-zero.  Deterministic like
    /// the trace; note the `queue_len` gauge observes the *simulator's*
    /// queue, so samples differ between the macro-step and
    /// event-per-operation engines even though simulation results are
    /// byte-identical.
    pub metrics: Option<MetricsReport>,
    /// Event-queue self-profiling counters for the run (always collected;
    /// they cost integer adds on paths that already write adjacent fields).
    /// Simulator diagnostics, not simulation results — they differ between
    /// batch modes and are never folded into results JSON.
    pub queue: QueueProfile,
}

impl SimReport {
    /// Completion time of `process`, if it was measured.
    #[must_use]
    pub fn completion_of(&self, process: ProcessId) -> Option<Cycles> {
        self.completions.get(&process.index()).copied()
    }
}

/// Loop-invariant engine parameters passed into every sequencer step, read
/// once per run instead of once per operation.
#[derive(Debug, Clone, Copy)]
struct StepParams {
    access_cost: Cycles,
    budget: Cycles,
    batch: bool,
    shred_context_switch: Cycles,
    tlb_walk: Cycles,
    cache_on: bool,
    trace_on: bool,
}

/// What a call to [`Machine::advance`] achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineStatus {
    /// Every measured process completed; the machine will process no further
    /// events.
    Finished,
    /// The next queued event lies at or beyond the advance horizon; the
    /// machine paused with work pending.
    Paused,
    /// The event-queue shard drained while measured work remained.  In a
    /// fleet this is only a deadlock once no neighbour can deliver a
    /// cross-machine message; see [`Machine::deadlock_error`].
    Idle,
}

/// One simulated machine: per-shard state plus its platform and runtimes.
#[derive(Debug)]
pub struct Machine<P: Platform> {
    core: EngineCore,
    platform: P,
    /// One runtime per simulated process, keyed by [`ProcessId`]: process
    /// ids are small and dense, so the step path resolves a runtime with an
    /// index instead of a tree walk.
    runtimes: ArenaMap<ProcessId, Box<dyn Runtime>>,
    measured: Vec<ProcessId>,
    /// Interval metrics recorder, present iff
    /// `SimConfig::trace.metrics_interval` is non-zero.  Boxed so the
    /// common metrics-off engine carries one pointer of overhead.
    metrics: Option<Box<MetricsRecorder>>,
    /// Measured processes resolved at [`Machine::start`] (defaults to every
    /// process with a runtime).
    measured_list: Vec<ProcessId>,
    /// Indices of measured processes that have not yet completed.
    remaining: BTreeSet<u32>,
    /// Loop-invariant step parameters, hoisted at [`Machine::start`].
    params: Option<StepParams>,
    finished: bool,
}

impl<P: Platform> Machine<P> {
    /// Creates a machine with `sequencer_count` sequencers.
    #[must_use]
    pub fn new(
        config: SimConfig,
        sequencer_count: usize,
        library: ProgramLibrary,
        platform: P,
    ) -> Self {
        let metrics = (config.trace.metrics_interval > 0)
            .then(|| Box::new(MetricsRecorder::new(config.trace.metrics_interval)));
        Machine {
            core: EngineCore::new(config, sequencer_count, library),
            platform,
            runtimes: ArenaMap::new(),
            measured: Vec::new(),
            metrics,
            measured_list: Vec::new(),
            remaining: BTreeSet::new(),
            params: None,
            finished: false,
        }
    }

    /// The engine core (machine state).
    #[must_use]
    pub fn core(&self) -> &EngineCore {
        &self.core
    }

    /// Mutable access to the engine core, used while assembling a machine
    /// (spawning processes, registering address spaces, …).
    pub fn core_mut(&mut self) -> &mut EngineCore {
        &mut self.core
    }

    /// The platform.
    #[must_use]
    pub fn platform(&self) -> &P {
        &self.platform
    }

    /// Mutable access to the platform.
    pub fn platform_mut(&mut self) -> &mut P {
        &mut self.platform
    }

    /// Attaches the user-level runtime serving `process`.
    pub fn add_runtime(&mut self, process: ProcessId, runtime: Box<dyn Runtime>) {
        self.runtimes.insert(process, runtime);
    }

    /// Restricts the completion criterion to the given processes.  By default
    /// every process with a runtime is measured and the run ends when all of
    /// them finish.
    pub fn set_measured(&mut self, processes: Vec<ProcessId>) {
        self.measured = processes;
    }

    /// Whether every measured process has completed.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// The time of the earliest queued event, if any — the machine's lower
    /// bound on when it can next act (and therefore next *send*), which is
    /// what the fleet's conservative synchronizer folds into its lookahead.
    #[must_use]
    pub fn next_event_time(&self) -> Option<Cycles> {
        self.core.next_event_time()
    }

    /// Injects an externally-delivered event (a cross-machine message) into
    /// this machine's queue shard.
    ///
    /// # Panics
    ///
    /// Panics if `time` lies before an already-processed event — the
    /// conservative synchronizer guarantees deliveries land at or after the
    /// shard's clock, and the radix heap enforces it.
    pub fn post_event(&mut self, time: Cycles, event: Event) {
        self.core.post_event(time, event);
    }

    /// The deadlock error an [`MachineStatus::Idle`] machine reports once no
    /// neighbour can unblock it.
    #[must_use]
    pub fn deadlock_error(&self) -> MispError {
        MispError::Deadlock {
            detail: format!(
                "event queue drained with {} measured process(es) incomplete",
                self.remaining.len()
            ),
        }
    }

    /// Prepares the machine to run: validates configuration, initializes the
    /// platform, starts every OS thread and hoists the loop-invariant step
    /// parameters.
    ///
    /// # Errors
    ///
    /// [`MispError::InvalidConfiguration`] if no runtime was attached.
    pub fn start(&mut self) -> Result<()> {
        if self.runtimes.is_empty() {
            return Err(MispError::InvalidConfiguration(
                "no runtime attached to the engine".to_string(),
            ));
        }
        self.platform.init(&mut self.core);
        assert_eq!(
            self.core.config().cache.enabled,
            self.core.memory().cache_enabled(),
            "the platform's init() must call MemorySystem::configure_caches \
             with its L2 clustering when the config enables the cache model"
        );

        // Start every OS thread of every process that has a runtime, in
        // process/thread creation order for determinism.
        let mut startups: Vec<(ProcessId, OsThreadId)> = Vec::new();
        for (pid, _) in self.runtimes.iter() {
            if let Some(process) = self.core.kernel().process(pid) {
                for &tid in process.threads() {
                    startups.push((pid, tid));
                }
            }
        }
        for (pid, tid) in startups {
            if let Some(rt) = self.runtimes.get_mut(pid) {
                rt.on_thread_start(&mut self.core, tid, Cycles::ZERO);
            }
        }

        self.measured_list = if self.measured.is_empty() {
            self.runtimes.ids().collect()
        } else {
            self.measured.clone()
        };
        self.remaining = self.measured_list.iter().map(|p| p.index()).collect();

        // A process whose work is already complete at startup (e.g. an empty
        // workload) must not hang the loop.
        let runtimes = &self.runtimes;
        let core = &mut self.core;
        self.remaining.retain(|&pid_idx| {
            let rt = runtimes
                .get(ProcessId::new(pid_idx))
                .expect("measured process has a runtime");
            if rt.is_finished(core) {
                core.stats_mut()
                    .record_completion(ProcessId::new(pid_idx), Cycles::ZERO);
                false
            } else {
                true
            }
        });

        let budget = self.core.config().cycle_budget;
        // Per-step engine parameters, hoisted out of the hot loop (all are
        // invariant once the platform has initialized).
        self.params = Some(StepParams {
            access_cost: self.core.config().access_cost,
            budget,
            batch: self.core.config().batch,
            shred_context_switch: self.core.config().costs.shred_context_switch,
            tlb_walk: self.core.config().costs.tlb_walk,
            cache_on: self.core.memory().cache_enabled(),
            trace_on: self.core.log().trace_enabled(),
        });
        // Schedule the first interval sample inside the queue's total order.
        // Firings past the cycle budget are never scheduled: popping an event
        // beyond the budget aborts the run, and the sampler must not turn a
        // run that finishes within budget into a budget error.
        if self.metrics.is_some() {
            let interval = self.core.config().trace.metrics_interval;
            let first = Cycles::new(interval);
            if first <= budget {
                self.core.schedule_sample(first);
            }
        }
        Ok(())
    }

    /// Processes queued events strictly before `horizon` (all of them when
    /// `None`), stopping as soon as every measured process has completed.
    ///
    /// `Some(h)` is the conservative-synchronization window: no event at or
    /// beyond `h` is popped, so cross-machine messages delivered at `h` or
    /// later can still be posted afterwards without violating the shard's
    /// monotone clock.
    ///
    /// # Errors
    ///
    /// [`MispError::CycleBudgetExhausted`] if the configured budget elapses
    /// before every measured process finishes.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Machine::start`].
    pub fn advance(&mut self, horizon: Option<Cycles>) -> Result<MachineStatus> {
        let params = self.params.expect("Machine::start must run before advance");
        let budget = params.budget;
        if self.finished {
            return Ok(MachineStatus::Finished);
        }
        loop {
            let Some(next) = self.core.next_event_time() else {
                if self.remaining.is_empty() {
                    self.finished = true;
                    return Ok(MachineStatus::Finished);
                }
                return Ok(MachineStatus::Idle);
            };
            if horizon.is_some_and(|h| next >= h) {
                return Ok(MachineStatus::Paused);
            }
            let ev = self.core.pop_event().expect("peeked event exists");
            if ev.time > budget {
                return Err(MispError::CycleBudgetExhausted {
                    budget: budget.as_u64(),
                });
            }
            self.core.set_now(ev.time);
            let mut check_completion = false;
            match ev.event {
                Event::SeqReady { seq, generation } => {
                    if generation != self.core.sequencers().generation(seq) {
                        continue; // stale event
                    }
                    self.core.sequencers_mut().set_pending(seq, None);
                    if self.core.sequencers().is_suspended(seq) {
                        continue; // will be resumed explicitly by the platform
                    }
                    check_completion = self.step_sequencer(seq, ev.time, &params)?;
                }
                Event::TimerTick { cpu, tick } => {
                    self.platform
                        .on_timer_tick(&mut self.core, cpu, tick, ev.time);
                }
                Event::StallEnd { seq } => {
                    self.core.handle_stall_end(seq, ev.time);
                }
                Event::StallEndGroup { base, mask } => {
                    // Equivalent to consecutive StallEnd events for each set
                    // bit in ascending order (see stall_many).
                    let mut m = mask;
                    while m != 0 {
                        let i = m.trailing_zeros();
                        self.core
                            .handle_stall_end(SequencerId::new(base + i), ev.time);
                        m &= m - 1;
                    }
                }
                Event::Sample => {
                    // Read-only with respect to simulation state: the sample
                    // is recorded and the next firing scheduled, nothing
                    // else — so results and log digests are invariant under
                    // the sampler.  No reschedule once the queue is empty
                    // (the run is ending or deadlocked either way) or past
                    // the budget.
                    self.record_sample(ev.time);
                    if self.core.queue_len() > 0 {
                        let next = ev.time + Cycles::new(self.core.config().trace.metrics_interval);
                        if next <= budget {
                            self.core.schedule_sample(next);
                        }
                    }
                }
            }

            if check_completion && !self.remaining.is_empty() {
                let finished: Vec<u32> = self
                    .remaining
                    .iter()
                    .copied()
                    .filter(|&pid_idx| {
                        self.runtimes
                            .get(ProcessId::new(pid_idx))
                            .is_some_and(|rt| rt.is_finished(&self.core))
                    })
                    .collect();
                for pid_idx in finished {
                    self.core
                        .stats_mut()
                        .record_completion(ProcessId::new(pid_idx), ev.time);
                    self.remaining.remove(&pid_idx);
                }
            }

            if self.remaining.is_empty() {
                self.finished = true;
                return Ok(MachineStatus::Finished);
            }
        }
    }

    /// Records one interval metrics sample at `now`.
    ///
    /// Strictly read-only with respect to simulation state: it snapshots
    /// cumulative machine counters and instantaneous depth gauges.  Nothing
    /// here writes the event log, statistics or any sequencer, which is what
    /// keeps results and log digests invariant under the sampler.
    fn record_sample(&mut self, now: Cycles) {
        let Some(metrics) = self.metrics.as_deref_mut() else {
            return;
        };
        let core = &self.core;
        let mut snapshot = CounterSnapshot::default();
        let cache_on = core.memory().cache_enabled();
        for i in 0..core.sequencer_count() {
            let seq = SequencerId::new(i as u32);
            snapshot.busy += core.sequencers().busy(seq).as_u64();
            snapshot.stalled += core.sequencers().stalled(seq).as_u64();
            snapshot.ops += core.sequencers().ops_executed(seq);
            let tlb = core.memory().tlb_stats(seq).unwrap_or_default();
            snapshot.tlb_hits += tlb.hits;
            snapshot.tlb_misses += tlb.misses;
            if cache_on {
                snapshot.cache_misses += core
                    .memory()
                    .cache_stats(seq)
                    .unwrap_or_default()
                    .total_misses();
            }
        }
        let ready_shreds = core
            .shreds()
            .iter()
            .filter(|s| s.status() == ShredStatus::Ready)
            .count() as u64;
        let service_outstanding: u64 = self
            .runtimes
            .iter()
            .filter_map(|(_, rt)| rt.service_stats())
            .map(|s| {
                s.admitted
                    .saturating_sub(s.completed)
                    .saturating_sub(s.dropped)
            })
            .sum();
        metrics.record(
            now.as_u64(),
            snapshot,
            core.queue_len() as u64,
            ready_shreds,
            service_outstanding,
        );
    }

    /// Folds the per-sequencer counters and runtime statistics into the
    /// final [`SimReport`].
    pub fn finish_report(&mut self) -> SimReport {
        // Fold per-sequencer counters into the statistics snapshot.
        for i in 0..self.core.sequencer_count() {
            let seq = SequencerId::new(i as u32);
            let util = crate::SeqUtilization {
                busy: self.core.sequencers().busy(seq),
                stalled: self.core.sequencers().stalled(seq),
                ops: self.core.sequencers().ops_executed(seq),
            };
            self.core.stats_mut().per_sequencer[i] = util;
        }
        let tlb: Vec<misp_mem::TlbStats> = (0..self.core.sequencer_count())
            .map(|i| {
                self.core
                    .memory()
                    .tlb_stats(SequencerId::new(i as u32))
                    .unwrap_or_default()
            })
            .collect();
        self.core.stats_mut().fold_tlb(tlb);
        if self.core.memory().cache_enabled() {
            let cache: Vec<misp_cache::CacheStats> = (0..self.core.sequencer_count())
                .map(|i| {
                    self.core
                        .memory()
                        .cache_stats(SequencerId::new(i as u32))
                        .unwrap_or_default()
                })
                .collect();
            self.core.stats_mut().fold_cache(cache);
        }
        // Fold request-serving statistics from the measured runtimes, in
        // process-index order (the BTreeMap iteration order), so the merged
        // queue-depth series is deterministic.
        let mut service: Option<crate::ServiceStats> = None;
        for (pid, rt) in self.runtimes.iter() {
            if !self.measured_list.contains(&pid) {
                continue;
            }
            if let Some(s) = rt.service_stats() {
                service.get_or_insert_with(Default::default).merge(s);
            }
        }
        self.core.stats_mut().service = service;
        let stats = self.core.stats().clone();
        let completions: BTreeMap<u32, Cycles> = self
            .measured_list
            .iter()
            .filter_map(|p| stats.completion_of(*p).map(|c| (p.index(), c)))
            .collect();
        let total_cycles = completions.values().copied().max().unwrap_or(Cycles::ZERO);
        SimReport {
            total_cycles,
            completions,
            stats,
            log_digest: self.core.log().digest(),
            trace: self.core.take_trace().map(|t| t.into_report()),
            metrics: self.metrics.take().map(|m| m.into_report()),
            queue: self.core.queue_profile(),
        }
    }

    /// Executes the next step for `seq`.  Returns `true` if a shred finished
    /// (so the caller should re-check process completion).
    ///
    /// With [`SimConfig::batch`] enabled this is a *macro-step*: after a
    /// local operation (a compute, or a memory access under the flat memory
    /// model that does not fault) completes strictly before the batch
    /// horizon — the earliest pending event in the queue — the engine peeks
    /// at the next operation and, if that one is local too, executes it
    /// inline at its own start time instead of scheduling and re-popping a
    /// `SeqReady` event.  Every boundary operation (ring transitions,
    /// signals, runtime/sync calls, halts, faulting or cache-modeled
    /// accesses) still enters through an ordinary event pop, so platforms
    /// and runtimes observe exactly the state they would have observed in
    /// the event-per-operation loop, and all results are byte-identical.
    // lint: no-alloc
    fn step_sequencer(
        &mut self,
        seq: SequencerId,
        now: Cycles,
        params: &StepParams,
    ) -> Result<bool> {
        let Some(thread) = self.core.sequencers().bound_thread(seq) else {
            return Ok(false); // unbound sequencer: nothing to do
        };
        let Some(pid) = self.core.kernel().thread(thread).map(|t| t.process()) else {
            return Ok(false);
        };
        let &StepParams {
            access_cost,
            budget,
            batch,
            shred_context_switch,
            tlb_walk,
            cache_on,
            trace_on,
        } = params;

        // Install a shred if none is running.
        let mut install_cost = Cycles::ZERO;
        if self.core.sequencers().current_shred(seq).is_none() {
            let Some(runtime) = self.runtimes.get_mut(pid) else {
                return Ok(false);
            };
            match runtime.next_shred(&mut self.core, seq, thread, now) {
                Some(shred) => {
                    self.core
                        .sequencers_mut()
                        .set_current_shred(seq, Some(shred));
                    if let Some(s) = self.core.shred_mut(shred) {
                        s.set_status(ShredStatus::Running);
                    }
                    self.core
                        // lint: alloc-ok(lazy trace closure; runs only when tracing is on)
                        .log_event_with(seq, LogKind::ShredStart, || format!("{shred} installed"));
                    install_cost = shred_context_switch;
                }
                None => return Ok(false), // stays idle; a wake will retry
            }
        }
        let shred_id = self
            .core
            .sequencers()
            .current_shred(seq)
            .expect("just installed");

        // The macro-step loop.  `now` advances to each inline operation's
        // start time; boundary operations schedule a `SeqReady` (or finish
        // the shred) and return, exactly as the event-per-operation loop
        // did.
        let mut now = now;
        // The batch horizon — the earliest queued event — is invariant over
        // the whole macro-step: the inline path below never touches the
        // queue (every queue-mutating arm schedules and returns), so it is
        // read once here instead of once per inline operation.
        let horizon = if batch {
            self.core.next_event_time().unwrap_or(Cycles::MAX)
        } else {
            Cycles::MAX
        };
        loop {
            let op = self
                .core
                .shred_mut(shred_id)
                .expect("installed shred exists")
                .cursor_mut()
                .next_op();
            self.core.sequencers_mut().count_op(seq);

            // Local operations fall through with their completion time; every
            // other arm schedules and returns.
            let next_ready = match op {
                Op::Compute(c) => {
                    self.core.sequencers_mut().add_busy(seq, c);
                    now + install_cost + c
                }
                Op::Touch { addr, kind } => {
                    let store = kind == misp_isa::AccessKind::Store;
                    let outcome = self.core.memory_mut().access(seq, addr, store);
                    if trace_on {
                        // Trace-only instants: `core.now` equals this
                        // operation's start time even on the inline batched
                        // path (set_now runs before each inline iteration),
                        // so the timestamps are batch-mode invariant.
                        if !outcome.tlb_hit {
                            self.core.trace_instant(seq, misp_trace::TraceKind::TlbMiss);
                        }
                        if matches!(&outcome.cache, Some(c) if c.level == misp_cache::HitLevel::Memory)
                        {
                            self.core
                                .trace_instant(seq, misp_trace::TraceKind::CacheMiss);
                        }
                    }
                    // The cache model *refines* the flat access cost into
                    // per-level latencies, so its latency replaces
                    // `access_cost` rather than stacking on it (an all-L1-hit
                    // run with the default costs matches the flat model).
                    let mut cost = match outcome.cache {
                        Some(cache) => cache.latency,
                        None => access_cost,
                    };
                    if !outcome.tlb_hit {
                        cost += tlb_walk;
                    }
                    self.core.sequencers_mut().add_busy(seq, cost);
                    if outcome.page_fault {
                        let resume = self.platform.on_priv_event(
                            &mut self.core,
                            seq,
                            OsEventKind::PageFault,
                            now,
                        );
                        self.core.schedule_ready(seq, resume + cost);
                        return Ok(false);
                    }
                    now + install_cost + cost
                }
                Op::Syscall(_) => {
                    let resume =
                        self.platform
                            .on_priv_event(&mut self.core, seq, OsEventKind::Syscall, now);
                    self.core.schedule_ready(seq, resume + install_cost);
                    return Ok(false);
                }
                Op::Signal {
                    target,
                    continuation,
                } => {
                    self.core.stats_mut().signals_sent += 1;
                    self.core
                        // lint: alloc-ok(lazy trace closure; runs only when tracing is on)
                        .log_event_with(seq, LogKind::SignalSent, || format!("to {target}"));
                    let resume =
                        self.platform
                            .on_signal(&mut self.core, seq, target, &continuation, now);
                    self.core.schedule_ready(seq, resume + install_cost);
                    return Ok(false);
                }
                Op::RegisterHandler => {
                    let resume = self.platform.on_register_handler(&mut self.core, seq, now);
                    self.core.schedule_ready(seq, resume + install_cost);
                    return Ok(false);
                }
                Op::Runtime(rop) => {
                    let runtime = self
                        .runtimes
                        .get_mut(pid)
                        .expect("runtime exists for running shred");
                    let outcome = runtime.on_runtime_op(&mut self.core, seq, shred_id, &rop, now);
                    return Ok(match outcome {
                        RuntimeOutcome::Continue { cost } => {
                            self.core.sequencers_mut().add_busy(seq, cost);
                            self.core.schedule_ready(seq, now + install_cost + cost);
                            false
                        }
                        RuntimeOutcome::Block { cost } => {
                            if let Some(s) = self.core.shred_mut(shred_id) {
                                if s.status() == ShredStatus::Running {
                                    s.set_status(ShredStatus::Blocked);
                                }
                            }
                            self.core.sequencers_mut().set_current_shred(seq, None);
                            self.core.schedule_ready(
                                seq,
                                now + install_cost + cost + shred_context_switch,
                            );
                            false
                        }
                        RuntimeOutcome::Yield { cost } => {
                            if let Some(s) = self.core.shred_mut(shred_id) {
                                if s.status() == ShredStatus::Running {
                                    s.set_status(ShredStatus::Ready);
                                }
                            }
                            self.core.sequencers_mut().set_current_shred(seq, None);
                            self.core.schedule_ready(
                                seq,
                                now + install_cost + cost + shred_context_switch,
                            );
                            false
                        }
                        RuntimeOutcome::Exit { cost } => {
                            if let Some(s) = self.core.shred_mut(shred_id) {
                                s.finish(now);
                            }
                            self.core.log_event_with(seq, LogKind::ShredEnd, || {
                                // lint: alloc-ok(lazy trace closure; runs only when tracing is on)
                                format!("{shred_id} exited")
                            });
                            self.core.sequencers_mut().set_current_shred(seq, None);
                            self.core.schedule_ready(
                                seq,
                                now + install_cost + cost + shred_context_switch,
                            );
                            true
                        }
                    });
                }
                Op::Halt => {
                    let runtime = self
                        .runtimes
                        .get_mut(pid)
                        .expect("runtime exists for running shred");
                    runtime.on_shred_halt(&mut self.core, seq, shred_id, now);
                    if let Some(s) = self.core.shred_mut(shred_id) {
                        s.finish(now);
                    }
                    self.core
                        // lint: alloc-ok(lazy trace closure; runs only when tracing is on)
                        .log_event_with(seq, LogKind::ShredEnd, || format!("{shred_id} halted"));
                    self.core.sequencers_mut().set_current_shred(seq, None);
                    self.core.schedule_ready(seq, now + shred_context_switch);
                    return Ok(true);
                }
            };

            // A local operation completed at `next_ready`.  Macro-step to the
            // next operation when (a) batching is on, (b) the completion lands
            // strictly before the batch horizon (an equal-time queued event
            // was inserted earlier and would pop first), (c) the cycle budget
            // is not exhausted (the event loop would have errored when popping
            // the elided `SeqReady`), and (d) the peeked next operation is
            // itself executable inline.
            if batch && next_ready < horizon {
                if next_ready > budget {
                    return Err(MispError::CycleBudgetExhausted {
                        budget: budget.as_u64(),
                    });
                }
                let (class, peeked_addr) = {
                    let peeked = self
                        .core
                        .shred_mut(shred_id)
                        .expect("installed shred exists")
                        .cursor_mut()
                        .peek_op();
                    let addr = match peeked {
                        Op::Touch { addr, .. } => Some(*addr),
                        _ => None,
                    };
                    (peeked.classify(), addr)
                };
                let inline = match class {
                    misp_isa::OpClass::Local => true,
                    // A memory access is chargeable mid-batch only under
                    // the flat memory model and only when it will not
                    // page-fault; with the cache hierarchy modeled every
                    // access is a boundary (its outcome feeds coherence
                    // state other sequencers observe).
                    misp_isa::OpClass::Memory => {
                        !cache_on
                            && self.core.memory().bound_process(seq).is_some_and(|p| {
                                !self
                                    .core
                                    .memory()
                                    .would_fault(p, peeked_addr.expect("memory op has address"))
                            })
                    }
                    misp_isa::OpClass::Boundary => false,
                };
                if inline {
                    now = next_ready;
                    install_cost = Cycles::ZERO;
                    self.core.set_now(now);
                    continue;
                }
            }
            self.core.schedule_ready(seq, next_ready);
            return Ok(false);
        }
    }
}
