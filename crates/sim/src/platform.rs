//! The platform (machine architecture) extension trait.

use crate::core::EngineCore;
use misp_isa::Continuation;
use misp_os::OsEventKind;
use misp_types::{Cycles, SequencerId};

/// The architecture-specific half of the simulator.
///
/// A platform decides what a privileged event costs and which sequencers it
/// affects.  The MISP machine (in `misp-core`) implements the paper's
/// semantics — serialization of AMSs across OMS ring transitions and proxy
/// execution of AMS faults — while the SMP baseline (in `misp-smp`) services
/// every event locally on the faulting core.
pub trait Platform: std::fmt::Debug {
    /// One-time setup, called before any event is processed.  Platforms bind
    /// OS threads to sequencers, bind sequencers to processes in the memory
    /// system, and schedule the first timer tick for every OS-visible CPU.
    fn init(&mut self, core: &mut EngineCore);

    /// `seq` raised a synchronous privileged event (`Syscall` or `PageFault`)
    /// at `now`.  The platform applies any stalls to other sequencers and
    /// returns the absolute time at which `seq` itself may continue.
    fn on_priv_event(
        &mut self,
        core: &mut EngineCore,
        seq: SequencerId,
        kind: OsEventKind,
        now: Cycles,
    ) -> Cycles;

    /// A timer interrupt fired on the OS-visible CPU whose sequencer is
    /// `cpu`.  The platform handles the tick (serialization, scheduling,
    /// context switches) and schedules the next tick.
    fn on_timer_tick(&mut self, core: &mut EngineCore, cpu: SequencerId, tick: u64, now: Cycles);

    /// `from` executed the MISP `SIGNAL` instruction targeting `target` with
    /// the given continuation.  Returns the time at which `from` may continue.
    ///
    /// The default implementation ignores the signal (platforms without
    /// user-level signaling, such as the SMP baseline) and lets the sender
    /// continue immediately.
    fn on_signal(
        &mut self,
        core: &mut EngineCore,
        from: SequencerId,
        target: SequencerId,
        continuation: &Continuation,
        now: Cycles,
    ) -> Cycles {
        let _ = (core, target, continuation, from);
        now
    }

    /// `seq` registered an asynchronous handler via the YIELD-CONDITIONAL
    /// trigger/response mechanism.  Returns the time at which `seq` may
    /// continue.  The default charges nothing.
    fn on_register_handler(
        &mut self,
        core: &mut EngineCore,
        seq: SequencerId,
        now: Cycles,
    ) -> Cycles {
        let _ = (core, seq);
        now
    }
}
