//! The user-level runtime extension trait.

use crate::core::EngineCore;
use misp_isa::{ProgramRef, RuntimeOp};
use misp_types::{Cycles, OsThreadId, SequencerId, ShredId};

/// What the runtime decided about the shred that executed a runtime
/// operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeOutcome {
    /// The operation completed; the shred keeps the sequencer and continues
    /// after `cost` cycles of user-level runtime work.
    Continue {
        /// User-level cycles charged for the operation.
        cost: Cycles,
    },
    /// The shred blocked (the runtime has recorded it as a waiter); the
    /// sequencer is released after `cost` cycles and will ask for other work.
    Block {
        /// User-level cycles charged before blocking.
        cost: Cycles,
    },
    /// The shred voluntarily yielded; the runtime has already re-queued it and
    /// the sequencer will ask for the next shred after `cost` cycles.
    Yield {
        /// User-level cycles charged for the yield.
        cost: Cycles,
    },
    /// The shred exited; the sequencer will ask for other work after `cost`
    /// cycles.
    Exit {
        /// User-level cycles charged for the exit path.
        cost: Cycles,
    },
}

/// A user-level scheduling runtime (the role ShredLib plays in the paper).
///
/// One runtime instance serves one process.  The engine calls into the runtime
/// when a sequencer needs work, when a shred executes a
/// [`RuntimeOp`], and when a shred's program halts.  The runtime manipulates
/// engine state (creating shreds, waking sequencers) through the
/// [`EngineCore`] handle it is given.
pub trait Runtime: std::fmt::Debug {
    /// Called once at simulation start for every OS thread of the runtime's
    /// process, in thread-creation order.  Typical implementations create the
    /// thread's initial shred(s) here.
    fn on_thread_start(&mut self, core: &mut EngineCore, thread: OsThreadId, now: Cycles);

    /// The sequencer `seq`, currently serving OS thread `thread`, is idle and
    /// asks for the next shred to run.  Returning `None` leaves it idle.
    fn next_shred(
        &mut self,
        core: &mut EngineCore,
        seq: SequencerId,
        thread: OsThreadId,
        now: Cycles,
    ) -> Option<ShredId>;

    /// A shred executed a runtime operation.
    fn on_runtime_op(
        &mut self,
        core: &mut EngineCore,
        seq: SequencerId,
        shred: ShredId,
        op: &RuntimeOp,
        now: Cycles,
    ) -> RuntimeOutcome;

    /// A shred's program reached its end (implicit `Halt`).
    fn on_shred_halt(
        &mut self,
        core: &mut EngineCore,
        seq: SequencerId,
        shred: ShredId,
        now: Cycles,
    );

    /// Returns `true` when all work of this runtime's process is complete.
    fn is_finished(&self, core: &EngineCore) -> bool;

    /// Request-serving statistics, if this runtime drives a service model
    /// (open-loop scenarios).  The engine folds these into
    /// [`SimStats::service`](crate::SimStats) when the report is assembled.
    /// The default — for runtimes without a service model — is `None`.
    fn service_stats(&self) -> Option<&crate::ServiceStats> {
        None
    }
}

/// A minimal runtime that gives each OS thread exactly one shred running a
/// fixed program and performs no user-level scheduling.
///
/// It is used for the single-threaded "competing processes" of the Figure 7
/// multi-programming experiment and as a light-weight runtime for unit tests.
/// Runtime operations other than `ShredExit`/`ShredYield` are not supported
/// (programs for this runtime should not use synchronization).
#[derive(Debug)]
pub struct SingleShredRuntime {
    program: ProgramRef,
    created: Vec<ShredId>,
}

impl SingleShredRuntime {
    /// Creates a runtime whose threads each run `program` once.
    #[must_use]
    pub fn new(program: ProgramRef) -> Self {
        SingleShredRuntime {
            program,
            created: Vec::new(),
        }
    }

    /// The shreds created so far (one per started thread).
    #[must_use]
    pub fn shreds(&self) -> &[ShredId] {
        &self.created
    }
}

impl Runtime for SingleShredRuntime {
    fn on_thread_start(&mut self, core: &mut EngineCore, thread: OsThreadId, now: Cycles) {
        let process = core
            .kernel()
            .thread(thread)
            .expect("thread must exist")
            .process();
        let shred = core.create_shred(process, thread, self.program, now);
        self.created.push(shred);
        core.wake_thread_sequencers(thread, now);
    }

    fn next_shred(
        &mut self,
        core: &mut EngineCore,
        _seq: SequencerId,
        thread: OsThreadId,
        _now: Cycles,
    ) -> Option<ShredId> {
        // The only candidate is the thread's own shred, if it is still ready.
        self.created.iter().copied().find(|id| {
            core.shred(*id)
                .map(|s| s.thread() == thread && s.status() == crate::ShredStatus::Ready)
                .unwrap_or(false)
        })
    }

    fn on_runtime_op(
        &mut self,
        _core: &mut EngineCore,
        _seq: SequencerId,
        _shred: ShredId,
        op: &RuntimeOp,
        _now: Cycles,
    ) -> RuntimeOutcome {
        match op {
            RuntimeOp::ShredExit => RuntimeOutcome::Exit { cost: Cycles::ZERO },
            RuntimeOp::ShredYield => RuntimeOutcome::Continue { cost: Cycles::ZERO },
            other => panic!("SingleShredRuntime does not support runtime op `{other}`"),
        }
    }

    fn on_shred_halt(
        &mut self,
        _core: &mut EngineCore,
        _seq: SequencerId,
        _shred: ShredId,
        _now: Cycles,
    ) {
    }

    fn is_finished(&self, core: &EngineCore) -> bool {
        !self.created.is_empty()
            && self.created.iter().all(|id| {
                core.shred(*id)
                    .map(|s| s.status() == crate::ShredStatus::Done)
                    .unwrap_or(false)
            })
    }
}
